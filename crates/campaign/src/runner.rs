//! The campaign runner: the closed loop of publish → clear → settle →
//! observe → re-auction.
//!
//! A *campaign* is one quality target pursued across many auction
//! rounds. Each round the runner: (1) publishes the currently uncovered
//! tasks at their residual requirements, (2) collects bids from a
//! [`BidSource`] and screens them through the
//! [`PosCalibrator`](crate::calibrate::PosCalibrator), (3) runs one
//! engine round to clear and settle them, (4) feeds the settled
//! execution outcomes back into the
//! [`SuccessHistory`](crate::history::SuccessHistory) and the
//! [`ResidualTracker`](crate::residual::ResidualTracker), and (5) while
//! residual requirement remains and the budget allows, enqueues a
//! residual re-auction restricted to the uncovered tasks.
//!
//! ## Determinism contract
//!
//! Everything the loop consumes is deterministic: the bid source is
//! seeded, execution draws come from the engine's per-round RNG,
//! injected failures hash `(seed, round, user)`, and every store is a
//! `BTreeMap`. The campaign [`fingerprint`](CampaignReport::fingerprint)
//! is therefore bitwise-identical across worker and payment-thread
//! counts — the same contract the single-round engine upholds, extended
//! over the whole loop.
//!
//! The engine is rebuilt per round via
//! [`Engine::restore`](mcs_platform::prelude::Engine::restore), which
//! carries the ledger and round-id sequence forward while accepting the
//! shrunken residual task list — exactly the checkpoint/restore seam the
//! platform already exposes.

use std::collections::BTreeMap;
use std::sync::Arc;

use mcs_core::indexed::ContextPool;
use mcs_core::types::{Pos, Task, TaskId, UserId};
use mcs_obs::{EventKind, RawEvent};
use mcs_platform::prelude::{Engine, EngineCheckpoint, EngineConfig, FaultInjector};

use crate::calibrate::{CalibrationDecision, CalibratorConfig, PosCalibrator};
use crate::history::SuccessHistory;
use crate::inject::FailureInjector;
use crate::metrics::{CampaignMetrics, RoundEcon};
use crate::residual::ResidualTracker;
use crate::source::BidSource;

/// A whole campaign's knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Per-round engine configuration (seed, workers, payment threads,
    /// admission). The batch capacity is overridden per round to fit
    /// the submitted bids.
    pub engine: EngineConfig,
    /// The published tasks with their full quality requirements.
    pub tasks: Vec<Task>,
    /// Hard cap on rounds (initial + residual). Must be ≥ 1.
    pub max_rounds: u64,
    /// Optional slot deadline; each round consumes one slot, so a
    /// deadline below `max_rounds` binds first. `None` leaves
    /// `max_rounds` as the only budget.
    pub deadline: Option<u64>,
    /// Calibration knobs.
    pub calibration: CalibratorConfig,
    /// Injected execution-failure probability in `[0, 1]` (0 = off).
    pub failure_rate: f64,
    /// Seed of the failure-injection hash stream.
    pub failure_seed: u64,
    /// Per-user mobility evidence for [`CalibrationMode::Mobility`](crate::calibrate::CalibrationMode::Mobility):
    /// the predicted probability of visiting a task cell within the
    /// sensing window, e.g. from
    /// [`mcs_mobility::serve::VisitOracle`]. Ignored in other modes.
    pub mobility_visits: BTreeMap<UserId, f64>,
}

impl CampaignConfig {
    /// A campaign over `tasks` with default calibration, no injected
    /// failures, and a budget of `max_rounds`.
    pub fn new(engine: EngineConfig, tasks: Vec<Task>, max_rounds: u64) -> Self {
        CampaignConfig {
            engine,
            tasks,
            max_rounds,
            deadline: None,
            calibration: CalibratorConfig::default(),
            failure_rate: 0.0,
            failure_seed: 0,
            mobility_visits: BTreeMap::new(),
        }
    }

    /// The effective round budget: `max_rounds` clamped by the deadline.
    pub fn round_budget(&self) -> u64 {
        self.deadline.unwrap_or(u64::MAX).min(self.max_rounds)
    }
}

/// One campaign round, as the runner saw it end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRoundRecord {
    /// Campaign round index (0-based).
    pub index: u64,
    /// Engine round id this round ran under.
    pub engine_round: u64,
    /// Residual requirement per open task when the round was published.
    pub residual_before: BTreeMap<TaskId, f64>,
    /// Residual requirement per task after absorbing the round.
    pub residual_after: BTreeMap<TaskId, f64>,
    /// Bids the source offered (after restricting to open tasks).
    pub bids_offered: usize,
    /// Bids the calibrator gated out.
    pub bids_gated: usize,
    /// Bids submitted to the engine.
    pub bids_submitted: usize,
    /// Winners, in id order.
    pub winners: Vec<UserId>,
    /// Settled execution outcome per winner.
    pub outcomes: BTreeMap<UserId, bool>,
    /// Settled payout total.
    pub payout: f64,
    /// Social cost `Σ c_i` of the allocation.
    pub social_cost: f64,
    /// Whether the round was quarantined instead of cleared.
    pub quarantined: bool,
}

impl CampaignRoundRecord {
    /// Successful executions this round.
    pub fn successes(&self) -> usize {
        self.outcomes.values().filter(|&&ok| ok).count()
    }

    /// Total residual before the round.
    pub fn total_residual_before(&self) -> f64 {
        self.residual_before.values().sum()
    }

    /// Total residual after the round.
    pub fn total_residual_after(&self) -> f64 {
        self.residual_after.values().sum()
    }
}

/// The outcome of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every round, in order.
    pub rounds: Vec<CampaignRoundRecord>,
    /// Whether every task reached full coverage.
    pub covered: bool,
    /// Campaign-scoped payout total (scope accounting, so back-to-back
    /// campaigns on one ledger each report their own spend).
    pub total_paid: f64,
    /// Sum of allocation social costs over cleared rounds.
    pub total_social_cost: f64,
    /// Campaign-scoped per-user payouts.
    pub balances: BTreeMap<UserId, f64>,
    /// Final residual per task (all zero iff `covered`).
    pub residual_final: BTreeMap<TaskId, f64>,
    /// The success history accumulated over the campaign.
    pub history: SuccessHistory,
    /// The engine checkpoint after the last round — hand it to
    /// [`CampaignRunner::resume`] to chain another campaign on the same
    /// ledger.
    pub checkpoint: EngineCheckpoint,
    /// The calibration knobs the campaign ran under (for oracles that
    /// recompute posteriors).
    pub calibration: CalibratorConfig,
}

impl CampaignReport {
    /// Rounds actually run.
    pub fn rounds_run(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// An FNV-1a digest of everything economically meaningful: round
    /// ids, residuals, winners, payouts, outcomes, and final balances.
    /// Bitwise-identical across worker/payment-thread counts.
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = Fnv::new();
        for round in &self.rounds {
            fnv.write_u64(round.index);
            fnv.write_u64(round.engine_round);
            fnv.write_u64(round.bids_offered as u64);
            fnv.write_u64(round.bids_gated as u64);
            fnv.write_u64(round.bids_submitted as u64);
            fnv.write_u64(round.quarantined as u64);
            for (&task, &residual) in &round.residual_before {
                fnv.write_u64(task.index() as u64);
                fnv.write_u64(residual.to_bits());
            }
            for (&task, &residual) in &round.residual_after {
                fnv.write_u64(task.index() as u64);
                fnv.write_u64(residual.to_bits());
            }
            for &winner in &round.winners {
                fnv.write_u64(winner.index() as u64);
            }
            for (&user, &completed) in &round.outcomes {
                fnv.write_u64(user.index() as u64);
                fnv.write_u64(completed as u64);
            }
            fnv.write_u64(round.payout.to_bits());
            fnv.write_u64(round.social_cost.to_bits());
        }
        fnv.write_u64(self.covered as u64);
        fnv.write_u64(self.total_paid.to_bits());
        for (&user, &balance) in &self.balances {
            fnv.write_u64(user.index() as u64);
            fnv.write_u64(balance.to_bits());
        }
        for (&task, &residual) in &self.residual_final {
            fnv.write_u64(task.index() as u64);
            fnv.write_u64(residual.to_bits());
        }
        for (user, record) in self.history.users() {
            fnv.write_u64(user.index() as u64);
            fnv.write_u64(record.successes);
            fnv.write_u64(record.attempts);
        }
        fnv.finish()
    }
}

/// FNV-1a, 64-bit — the same digest idiom the chaos harness uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Drives a campaign to full coverage or budget exhaustion.
#[derive(Debug)]
pub struct CampaignRunner {
    config: CampaignConfig,
    injector: Arc<dyn FaultInjector>,
    metrics: Arc<CampaignMetrics>,
}

impl CampaignRunner {
    /// A runner whose only fault source is the configured execution
    /// failure rate.
    pub fn new(config: CampaignConfig) -> Self {
        let injector = Arc::new(FailureInjector::new(
            config.failure_seed,
            config.failure_rate,
        ));
        CampaignRunner {
            config,
            injector,
            metrics: Arc::new(CampaignMetrics::new()),
        }
    }

    /// A runner composing the configured failure rate over `inner`'s
    /// chaos faults (shard panics, bid corruption, reordering).
    pub fn with_injector(config: CampaignConfig, inner: Arc<dyn FaultInjector>) -> Self {
        let injector = Arc::new(FailureInjector::wrapping(
            config.failure_seed,
            config.failure_rate,
            inner,
        ));
        CampaignRunner {
            config,
            injector,
            metrics: Arc::new(CampaignMetrics::new()),
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// A shared handle to the campaign metrics, e.g. for an
    /// [`ExportServer`](mcs_obs::ExportServer).
    pub fn metrics_handle(&self) -> Arc<CampaignMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Runs the campaign on a fresh ledger.
    pub fn run(&self, source: &mut dyn BidSource) -> CampaignReport {
        self.drive(source, None)
    }

    /// Runs the campaign continuing from `checkpoint`: the ledger's
    /// lifetime balances and the round-id sequence carry over, but a new
    /// accounting scope is opened so this campaign's spend is reported
    /// separately (see [`Ledger::begin_scope`](mcs_platform::prelude::Ledger::begin_scope)).
    pub fn resume(
        &self,
        source: &mut dyn BidSource,
        checkpoint: EngineCheckpoint,
    ) -> CampaignReport {
        self.drive(source, Some(checkpoint))
    }

    fn drive(
        &self,
        source: &mut dyn BidSource,
        mut checkpoint: Option<EngineCheckpoint>,
    ) -> CampaignReport {
        if let Some(checkpoint) = checkpoint.as_mut() {
            checkpoint.ledger.begin_scope();
        }
        let mut calibrator = PosCalibrator::new(self.config.calibration);
        for (&user, &visit) in &self.config.mobility_visits {
            calibrator.register_visit(user, visit);
        }
        let calibrator = calibrator;
        let mut tracker = ResidualTracker::new(&self.config.tasks);
        let mut history = SuccessHistory::new();
        let mut rounds: Vec<CampaignRoundRecord> = Vec::new();
        let mut total_social_cost = 0.0;
        let budget = self.config.round_budget();
        // One set of clearing arenas for the whole campaign. Each
        // round's engine is rebuilt via restore, but adopting this pool
        // lets its shard workers delta-patch the previous round's CSR
        // index instead of re-flattening — residual re-auction
        // populations are mostly carry-over bidders. Bitwise neutral
        // (see `EngineConfig::reuse_index`).
        let clear_contexts = ContextPool::new();

        let mut index = 0;
        while index < budget && !tracker.is_covered() {
            let open_tasks = if index == 0 {
                self.config.tasks.clone()
            } else {
                tracker.uncovered_tasks()
            };
            let open_ids: std::collections::BTreeSet<u32> = open_tasks
                .iter()
                .map(|task| task.id().index() as u32)
                .collect();
            let residual_before: BTreeMap<TaskId, f64> = open_tasks
                .iter()
                .map(|task| (task.id(), tracker.residual(task.id()).value()))
                .collect();

            // Collect and screen bids before the engine exists: the
            // calibrator needs only history, and the engine wants its
            // batch capacity sized to the admitted bid count so one
            // campaign round is exactly one engine round.
            let mut offered = source.bids(index, &open_tasks);
            for bid in &mut offered {
                bid.tasks.retain(|&(task, _)| open_ids.contains(&task));
            }
            offered.retain(|bid| !bid.tasks.is_empty());
            let mut admitted = Vec::new();
            let mut decisions: Vec<(UserId, CalibrationDecision)> = Vec::new();
            let mut divergence_sum = 0.0f64;
            for bid in offered.iter() {
                let user = UserId::new(bid.user);
                let declared_any = 1.0
                    - bid
                        .tasks
                        .iter()
                        .fold(1.0, |acc, &(_, pos)| acc * (1.0 - pos));
                let decision = calibrator.decide(&history, user, Pos::saturating(declared_any));
                self.metrics
                    .calibration(decision.divergence().abs(), !decision.admitted);
                divergence_sum += decision.divergence().abs();
                decisions.push((user, decision));
                if decision.admitted {
                    admitted.push(bid.clone());
                }
            }
            let round_divergence_mean = if decisions.is_empty() {
                0.0
            } else {
                divergence_sum / decisions.len() as f64
            };

            let mut engine_config = self.config.engine;
            engine_config.batch.max_bids = admitted.len().max(1);
            let mut engine = match checkpoint.take() {
                None => Engine::with_injector(
                    engine_config,
                    open_tasks.clone(),
                    Arc::clone(&self.injector),
                ),
                Some(checkpoint) => Engine::restore(
                    engine_config,
                    open_tasks.clone(),
                    checkpoint,
                    Arc::clone(&self.injector),
                ),
            };
            engine.adopt_clear_contexts(clear_contexts.clone());
            let engine_round = engine.next_round_id();
            self.metrics.round_opened();
            engine.recorder().record(RawEvent::new(
                EventKind::CampaignRoundOpened,
                engine_round.0,
                index,
                open_tasks.len() as u64,
                tracker.total_residual().value().to_bits(),
            ));
            for (user, decision) in &decisions {
                engine.recorder().record(RawEvent::new(
                    EventKind::PosCalibrated,
                    engine_round.0,
                    user.index() as u64,
                    decision.declared.value().to_bits(),
                    decision.calibrated.value().to_bits(),
                ));
            }

            let mut submitted = 0;
            for bid in &admitted {
                if engine.submit(bid).is_ok() {
                    submitted += 1;
                }
            }
            engine.flush();
            engine.drain();

            let mut record = CampaignRoundRecord {
                index,
                engine_round: engine_round.0,
                residual_before,
                bids_offered: offered.len(),
                bids_gated: offered.len() - admitted.len(),
                bids_submitted: submitted,
                winners: Vec::new(),
                outcomes: BTreeMap::new(),
                payout: 0.0,
                social_cost: 0.0,
                quarantined: !engine.quarantine().is_empty(),
                residual_after: BTreeMap::new(),
            };

            if let Some(cleared) = engine.results().get(&engine_round) {
                record.winners = cleared.allocation.winners().collect();
                record.social_cost = cleared.social_cost;
                total_social_cost += cleared.social_cost;
                let settlement = engine
                    .settlements()
                    .get(&engine_round)
                    .expect("cleared rounds are settled");
                record.payout = settlement.total;
                record.outcomes = settlement.outcomes.clone();
                history.observe(settlement);
                for (&user, &completed) in &settlement.outcomes {
                    self.metrics.execution(completed);
                    if !completed {
                        continue;
                    }
                    // Credit the winner's declared per-task contributions.
                    if let Some(bid) = admitted.iter().find(|bid| bid.user == user.index() as u32) {
                        for &(task, pos) in &bid.tasks {
                            tracker.absorb(TaskId::new(task), Pos::saturating(pos).contribution());
                        }
                    }
                }
            }
            record.residual_after = record
                .residual_before
                .keys()
                .map(|&task| (task, tracker.residual(task).value()))
                .collect();

            let reauction = !tracker.is_covered() && index + 1 < budget;
            if reauction {
                self.metrics.residual_reauction();
                engine.recorder().record(RawEvent::new(
                    EventKind::ResidualReauction,
                    engine_round.0,
                    tracker.uncovered_tasks().len() as u64,
                    tracker.total_residual().value().to_bits(),
                    record.successes() as u64,
                ));
            }

            self.metrics.record_round(RoundEcon {
                index,
                engine_round: engine_round.0,
                tasks_open: open_tasks.len(),
                bids_submitted: record.bids_submitted,
                bids_gated: record.bids_gated,
                winners: record.winners.len(),
                successes: record.successes(),
                payout: record.payout,
                residual_before: record.total_residual_before(),
                residual_after: record.total_residual_after(),
                pos_divergence_mean: round_divergence_mean,
                quarantined: record.quarantined,
            });
            rounds.push(record);
            checkpoint = Some(engine.checkpoint());
            index += 1;
        }

        let checkpoint = checkpoint.unwrap_or_else(|| {
            // A zero-budget campaign never built an engine; synthesize
            // an empty checkpoint so chaining still works.
            Engine::new(self.config.engine, self.config.tasks.clone()).checkpoint()
        });
        let covered = tracker.is_covered();
        self.metrics.campaign_finished(covered);
        CampaignReport {
            rounds,
            covered,
            total_paid: checkpoint.ledger.scope_paid(),
            total_social_cost,
            balances: checkpoint.ledger.scope_balances().clone(),
            residual_final: tracker
                .residuals()
                .iter()
                .map(|(&task, residual)| (task, residual.value()))
                .collect(),
            history,
            checkpoint,
            calibration: self.config.calibration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticBidSource;
    use mcs_core::types::Task;

    fn tasks() -> Vec<Task> {
        vec![
            Task::with_requirement(TaskId::new(0), 0.95).unwrap(),
            Task::with_requirement(TaskId::new(1), 0.9).unwrap(),
            Task::with_requirement(TaskId::new(2), 0.85).unwrap(),
        ]
    }

    fn config(seed: u64, failure_rate: f64) -> CampaignConfig {
        let engine = EngineConfig::default().with_seed(seed);
        let mut config = CampaignConfig::new(engine, tasks(), 24);
        config.failure_rate = failure_rate;
        config.failure_seed = seed ^ 0xC0FFEE;
        config
    }

    #[test]
    fn failure_free_campaigns_cover_quickly() {
        let runner = CampaignRunner::new(config(5, 0.0));
        let mut source = SyntheticBidSource::new(5, 12);
        let report = runner.run(&mut source);
        assert!(report.covered);
        assert!(report.residual_final.values().all(|&r| r < 1e-9));
        assert!(report.rounds_run() >= 1);
    }

    #[test]
    fn injected_failures_force_residual_rounds() {
        let clean = CampaignRunner::new(config(5, 0.0));
        let mut source = SyntheticBidSource::new(5, 12);
        let clean_rounds = clean.run(&mut source).rounds_run();

        let faulty = CampaignRunner::new(config(5, 0.5));
        let mut source = SyntheticBidSource::new(5, 12);
        let report = faulty.run(&mut source);
        assert!(report.covered, "residual rounds should still converge");
        assert!(
            report.rounds_run() > clean_rounds,
            "50% failures must cost extra rounds ({} vs {clean_rounds})",
            report.rounds_run()
        );
        assert!(faulty.metrics_handle().residual_reauction_count() > 0);
    }

    #[test]
    fn residuals_never_increase() {
        let runner = CampaignRunner::new(config(11, 0.4));
        let mut source = SyntheticBidSource::new(11, 10);
        let report = runner.run(&mut source);
        for round in &report.rounds {
            for (task, &after) in &round.residual_after {
                assert!(after <= round.residual_before[task] + 1e-12);
            }
        }
    }

    #[test]
    fn deadline_binds_before_max_rounds() {
        let mut config = config(7, 0.95);
        config.max_rounds = 50;
        config.deadline = Some(3);
        let runner = CampaignRunner::new(config);
        let mut source = SyntheticBidSource::new(7, 8);
        let report = runner.run(&mut source);
        assert!(report.rounds_run() <= 3);
    }

    #[test]
    fn fingerprints_are_stable_across_worker_counts() {
        let mut fingerprints = Vec::new();
        for workers in [1usize, 2, 8] {
            let mut config = config(13, 0.3);
            config.engine = config.engine.with_workers(workers);
            let runner = CampaignRunner::new(config);
            let mut source = SyntheticBidSource::new(13, 12);
            fingerprints.push(runner.run(&mut source).fingerprint());
        }
        assert_eq!(fingerprints[0], fingerprints[1]);
        assert_eq!(fingerprints[1], fingerprints[2]);
    }

    #[test]
    fn index_reuse_never_changes_campaign_fingerprints() {
        let reused = CampaignRunner::new(config(13, 0.3));
        let mut source = SyntheticBidSource::new(13, 12);
        let reused_print = reused.run(&mut source).fingerprint();

        let mut fresh_config = config(13, 0.3);
        fresh_config.engine = fresh_config.engine.with_reuse_index(false);
        let fresh = CampaignRunner::new(fresh_config);
        let mut source = SyntheticBidSource::new(13, 12);
        let fresh_print = fresh.run(&mut source).fingerprint();

        assert_eq!(
            reused_print, fresh_print,
            "delta-patched campaign clearing diverged from fresh-index clearing"
        );
    }

    #[test]
    fn resumed_campaigns_scope_their_accounting() {
        let runner = CampaignRunner::new(config(17, 0.2));
        let mut source = SyntheticBidSource::new(17, 10);
        let first = runner.run(&mut source);
        let second = runner.resume(&mut source, first.checkpoint.clone());
        // Scoped totals are per campaign; the lifetime ledger holds both.
        let lifetime = second.checkpoint.ledger.total_paid();
        assert!((first.total_paid + second.total_paid - lifetime).abs() < 1e-9);
        // Round ids continue instead of restarting.
        assert!(second.rounds[0].engine_round > first.rounds.last().unwrap().engine_round);
    }
}
