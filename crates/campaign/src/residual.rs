//! Residual-requirement tracking: how much of each task's quality
//! target is still uncovered after the executions that actually
//! happened.
//!
//! The paper's quality constraint is multiplicative —
//! `Π (1 − p_i) ≤ 1 − Q_j` — which the codebase carries in the additive
//! log domain as [`Contribution`] (`q = −ln(1 − p)`). That makes the
//! residual after a round a plain subtraction: for task `j` with
//! requirement `Q_j` and successful winners `S`,
//!
//! ```text
//! Q_j' = Q_j − Σ_{i ∈ S} q_i^j
//! ```
//!
//! clamped at zero. Only *successful* executions count — a winner who
//! completed none of her tasks contributed nothing, which is exactly
//! the coverage gap residual re-auction rounds exist to close. Because
//! coverage only ever accumulates, the residual is monotonically
//! non-increasing across rounds; the harness oracles assert this, the
//! tracker guarantees it by construction.

use std::collections::BTreeMap;

use mcs_core::types::{Contribution, Task, TaskId};

/// Per-task residual requirements across a campaign's rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualTracker {
    initial: BTreeMap<TaskId, Contribution>,
    residual: BTreeMap<TaskId, Contribution>,
}

impl ResidualTracker {
    /// A tracker with every task's residual at its full requirement.
    pub fn new(tasks: &[Task]) -> Self {
        let initial: BTreeMap<TaskId, Contribution> = tasks
            .iter()
            .map(|task| (task.id(), task.requirement_contribution()))
            .collect();
        ResidualTracker {
            residual: initial.clone(),
            initial,
        }
    }

    /// Credits a successful execution: `user`'s declared contribution
    /// `q` toward `task` is subtracted from the task's residual
    /// (saturating at zero). Unknown tasks are ignored.
    pub fn absorb(&mut self, task: TaskId, contribution: Contribution) {
        if let Some(residual) = self.residual.get_mut(&task) {
            *residual = *residual - contribution;
        }
    }

    /// The task's current residual (zero for unknown tasks).
    pub fn residual(&self, task: TaskId) -> Contribution {
        self.residual
            .get(&task)
            .copied()
            .unwrap_or(Contribution::ZERO)
    }

    /// The task's original requirement (zero for unknown tasks).
    pub fn initial(&self, task: TaskId) -> Contribution {
        self.initial
            .get(&task)
            .copied()
            .unwrap_or(Contribution::ZERO)
    }

    /// Every task's residual, in task-id order.
    pub fn residuals(&self) -> &BTreeMap<TaskId, Contribution> {
        &self.residual
    }

    /// Sum of all residuals — the campaign's remaining coverage debt.
    pub fn total_residual(&self) -> Contribution {
        self.residual.values().copied().sum()
    }

    /// Whether every task's residual has reached zero.
    pub fn is_covered(&self) -> bool {
        self.residual.values().all(|r| r.is_zero())
    }

    /// The uncovered tasks, re-published at their *residual*
    /// requirement — the task list a residual re-auction round runs
    /// against. Empty exactly when [`ResidualTracker::is_covered`].
    pub fn uncovered_tasks(&self) -> Vec<Task> {
        self.residual
            .iter()
            .filter(|(_, residual)| !residual.is_zero())
            .map(|(&id, residual)| Task::new(id, residual.pos()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::types::Pos;

    fn tracker() -> ResidualTracker {
        ResidualTracker::new(&[
            Task::new(TaskId::new(0), Pos::new(0.9).unwrap()),
            Task::new(TaskId::new(1), Pos::new(0.5).unwrap()),
        ])
    }

    #[test]
    fn starts_at_full_requirements_and_absorbs_down() {
        let mut tracker = tracker();
        assert!(!tracker.is_covered());
        let before = tracker.residual(TaskId::new(0));
        tracker.absorb(TaskId::new(0), Pos::new(0.5).unwrap().contribution());
        let after = tracker.residual(TaskId::new(0));
        assert!(after.value() < before.value());
        assert_eq!(
            tracker.residual(TaskId::new(1)),
            tracker.initial(TaskId::new(1))
        );
    }

    #[test]
    fn saturates_at_zero_and_reports_coverage() {
        let mut tracker = tracker();
        let big = Pos::new(0.999_999).unwrap().contribution();
        tracker.absorb(TaskId::new(0), big);
        tracker.absorb(TaskId::new(0), big);
        tracker.absorb(TaskId::new(1), big);
        assert!(tracker.residual(TaskId::new(0)).is_zero());
        assert!(tracker.is_covered());
        assert!(tracker.uncovered_tasks().is_empty());
        assert!(tracker.total_residual().is_zero());
    }

    #[test]
    fn uncovered_tasks_carry_the_residual_requirement() {
        let mut tracker = tracker();
        tracker.absorb(TaskId::new(1), Pos::new(0.999_999).unwrap().contribution());
        let open = tracker.uncovered_tasks();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].id(), TaskId::new(0));
        let republished = open[0].requirement_contribution();
        assert!((republished.value() - tracker.residual(TaskId::new(0)).value()).abs() < 1e-9);
    }

    #[test]
    fn unknown_tasks_are_inert() {
        let mut tracker = tracker();
        tracker.absorb(TaskId::new(99), Pos::new(0.5).unwrap().contribution());
        assert_eq!(tracker.residual(TaskId::new(99)), Contribution::ZERO);
        assert_eq!(
            tracker.total_residual(),
            tracker.initial(TaskId::new(0)) + tracker.initial(TaskId::new(1))
        );
    }
}
