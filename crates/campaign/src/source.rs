//! Bid sources: where a campaign round's bids come from.
//!
//! The runner is generic over a [`BidSource`] so the same closed loop
//! drives synthetic populations (tests, fuzzing, benchmarks) and
//! dataset-derived populations (`platformd`). A source sees the round's
//! *open* task list — for residual rounds that is the uncovered subset
//! at its residual requirements — and returns the raw bids to screen
//! and submit.
//!
//! Determinism contract: a source must be a pure function of its own
//! seed/state and the `(round_index, tasks)` arguments. Both provided
//! sources derive every draw from a SplitMix64 stream keyed on
//! `(seed, round_index, user)`, so identical campaigns produce
//! identical bid streams regardless of timing.

use mcs_core::types::Task;
use mcs_platform::prelude::Bid;

/// Produces each campaign round's bids.
pub trait BidSource: std::fmt::Debug {
    /// The bids for campaign round `round_index` over the currently
    /// open `tasks`. Entries for tasks not in `tasks` are dropped by
    /// the runner before submission.
    fn bids(&mut self, round_index: u64, tasks: &[Task]) -> Vec<Bid>;
}

/// SplitMix64 mix of a seed and two indices — the same construction the
/// platform uses for per-round RNG seeds.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit draw in `[0, 1)` from the mixed stream.
fn unit(seed: u64, a: u64, b: u64) -> f64 {
    (mix(seed, a, b) >> 11) as f64 / (1u64 << 53) as f64
}

/// A fixed synthetic population re-bidding every round.
///
/// Every round, each of `population` users bids on every open task with
/// a per-(round, user, task) PoS in `[pos_min, pos_max)` and a
/// per-(round, user) cost in `[cost_min, cost_max)`. A stable user-id
/// space across rounds is what gives the calibrator a history to learn
/// from.
#[derive(Debug, Clone)]
pub struct SyntheticBidSource {
    seed: u64,
    population: u32,
    /// PoS draw range.
    pub pos_range: (f64, f64),
    /// Cost draw range.
    pub cost_range: (f64, f64),
}

impl SyntheticBidSource {
    /// A source of `population` users seeded with `seed`.
    pub fn new(seed: u64, population: u32) -> Self {
        SyntheticBidSource {
            seed,
            population,
            pos_range: (0.35, 0.75),
            cost_range: (1.0, 3.0),
        }
    }

    /// The population size.
    pub fn population(&self) -> u32 {
        self.population
    }
}

impl BidSource for SyntheticBidSource {
    fn bids(&mut self, round_index: u64, tasks: &[Task]) -> Vec<Bid> {
        let (pos_lo, pos_hi) = self.pos_range;
        let (cost_lo, cost_hi) = self.cost_range;
        (0..self.population)
            .map(|user| {
                let key = round_index.wrapping_mul(0x1_0000).wrapping_add(user as u64);
                let cost = cost_lo + (cost_hi - cost_lo) * unit(self.seed, key, 0);
                let tasks: Vec<(u32, f64)> = tasks
                    .iter()
                    .enumerate()
                    .map(|(slot, task)| {
                        let draw = unit(self.seed, key, 1 + slot as u64);
                        let pos = pos_lo + (pos_hi - pos_lo) * draw;
                        (task.id().index() as u32, pos)
                    })
                    .collect();
                Bid { user, cost, tasks }
            })
            .collect()
    }
}

/// A [`BidSource`] backed by a closure — the adapter scenario harnesses
/// use to drive a campaign from an externally generated population
/// (arrival curves, shocks, strategic deviations) without re-implementing
/// the trait.
///
/// The determinism contract is inherited: the closure must be a pure
/// function of `(round_index, tasks)` and whatever seeded state it
/// captures.
pub struct FnBidSource<F> {
    label: &'static str,
    f: F,
}

impl<F: FnMut(u64, &[Task]) -> Vec<Bid>> FnBidSource<F> {
    /// Wraps `f` as a bid source; `label` names it in debug output.
    pub fn new(label: &'static str, f: F) -> Self {
        FnBidSource { label, f }
    }
}

impl<F> std::fmt::Debug for FnBidSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnBidSource")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64, &[Task]) -> Vec<Bid>> BidSource for FnBidSource<F> {
    fn bids(&mut self, round_index: u64, tasks: &[Task]) -> Vec<Bid> {
        (self.f)(round_index, tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::types::{Pos, TaskId};

    fn tasks() -> Vec<Task> {
        vec![
            Task::new(TaskId::new(0), Pos::new(0.9).unwrap()),
            Task::new(TaskId::new(2), Pos::new(0.8).unwrap()),
        ]
    }

    #[test]
    fn bids_are_deterministic_and_round_dependent() {
        let mut a = SyntheticBidSource::new(7, 5);
        let mut b = SyntheticBidSource::new(7, 5);
        assert_eq!(a.bids(0, &tasks()), b.bids(0, &tasks()));
        assert_ne!(a.bids(1, &tasks()), b.bids(2, &tasks()));
    }

    #[test]
    fn fn_sources_delegate_and_debug_print() {
        let mut source = FnBidSource::new("test", |round, tasks: &[Task]| {
            vec![Bid {
                user: round as u32,
                cost: 1.0,
                tasks: tasks.iter().map(|t| (t.id().index() as u32, 0.5)).collect(),
            }]
        });
        let bids = source.bids(3, &tasks());
        assert_eq!(bids.len(), 1);
        assert_eq!(bids[0].user, 3);
        assert_eq!(bids[0].tasks.len(), 2);
        assert!(format!("{source:?}").contains("test"));
    }

    #[test]
    fn bids_cover_exactly_the_open_tasks() {
        let mut source = SyntheticBidSource::new(7, 3);
        let bids = source.bids(0, &tasks());
        assert_eq!(bids.len(), 3);
        for bid in &bids {
            let ids: Vec<u32> = bid.tasks.iter().map(|&(t, _)| t).collect();
            assert_eq!(ids, vec![0, 2]);
            for &(_, pos) in &bid.tasks {
                assert!((0.0..1.0).contains(&pos));
            }
            assert!(bid.cost >= 1.0 && bid.cost < 3.0);
        }
    }
}
