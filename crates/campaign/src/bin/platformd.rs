//! `platformd` — a load driver for the auction-serving engine and the
//! closed-loop campaign runner.
//!
//! In its default mode, synthesizes bid streams from `mcs-sim`'s
//! taxi-fleet population generator, pushes them through the engine, and
//! prints throughput plus the metrics snapshot. With `--campaign`, runs
//! a closed-loop campaign instead: outcome feedback, calibrated-PoS
//! admission gating, and residual re-auction until full coverage or the
//! budget runs out.
//!
//! With `--nodes N`, stands up an in-process geo-sharded cluster
//! instead: the city grid is split into vertical bands, tasks pin to
//! band regions, each round is routed, two-phase cleared, and settled by
//! the `mcs-cluster` coordinator over a loopback transport spanning `N`
//! nodes (each with a replicated follower). The run prints throughput
//! plus the deployment-invariant cluster fingerprint — the same seed at
//! `--nodes 1` and `--nodes 8` must print the same fingerprint.
//!
//! ```text
//! platformd [--rounds N] [--users N] [--workers N] [--seed S]
//!           [--multi TASKS] [--payment-threads N] [--paper]
//!           [--metrics-addr ADDR] [--snapshot-every ROUNDS]
//!           [--trace-capacity EVENTS] [--hold-ms MS]
//!           [--admission-high BIDS] [--admission-low BIDS]
//!           [--shed-policy tail-drop|seeded-uniform] [--shed-rate P]
//!           [--clear-budget BIDS] [--profile]
//!           [--slo-budget FILE] [--slo-baseline FILE]
//!           [--campaign] [--campaign-rounds N] [--campaign-deadline N]
//!           [--calibration off|history|mobility] [--failure-rate P]
//!           [--nodes N] [--bands N]
//! ```
//!
//! * `--rounds`  rounds to synthesize (default 200)
//! * `--users`   bidders per round (default 30)
//! * `--workers` shard workers (default 4)
//! * `--seed`    engine + stream seed (default 1)
//! * `--multi`   publish TASKS tasks per round instead of one
//! * `--payment-threads` threads per round for multi-task payments (default 1)
//! * `--paper`   use the test-scale data set instead of the reduced one
//! * `--metrics-addr` serve live telemetry over HTTP at ADDR (e.g.
//!   `127.0.0.1:9100`): `/metrics` is Prometheus text, `/metrics.json`
//!   the JSON snapshot
//! * `--snapshot-every` drain and print a compact metrics snapshot every
//!   ROUNDS synthesized rounds instead of only at exit
//! * `--trace-capacity` flight-recorder ring size in events (default
//!   16384; 0 disables tracing)
//! * `--hold-ms` keep the process (and the metrics endpoint) alive MS
//!   milliseconds after the run, so scrapers can read the final state
//! * `--admission-high` backlog (bids) at which load shedding engages
//!   (default 0 = admission control disabled)
//! * `--admission-low` backlog at which shedding disengages (default
//!   half of `--admission-high`)
//! * `--shed-policy` `tail-drop` (default) or `seeded-uniform`
//! * `--shed-rate` drop probability for `seeded-uniform` (default 0.5;
//!   the coin is seeded from `--seed`)
//! * `--clear-budget` per-round clearing budget in bids; larger rounds
//!   clear partially and quarantine the remainder (default 0 =
//!   unlimited)
//! * `--profile` drain the clearing kernel's profiling counters (heap
//!   pops, probes saved, index reuse, arena bytes) into `/metrics`;
//!   outcomes are bitwise identical either way
//! * `--slo-budget` open-loop only: load a JSON [`SloBudget`] and serve
//!   a live verdict at `/slo` (plus `/healthz`); breaches are recorded
//!   as trace events and printed at exit, and never alter clearing
//! * `--slo-baseline` pinned [`SloBaseline`] JSON for the drift budgets
//!   (overpayment ratio, coverage slack); without it drift budgets are
//!   skipped
//! * `--campaign` run one closed-loop campaign instead of the open-loop
//!   round stream; `--multi` (default 5 tasks) sizes the published task
//!   set, `--metrics-addr` serves `mcs_campaign_*` telemetry
//! * `--campaign-rounds` campaign round budget, initial + residual
//!   (default 16)
//! * `--campaign-deadline` optional slot deadline; each round consumes
//!   one slot, 0 disables (default 0)
//! * `--calibration` PoS calibration mode: `off`, `history` (default),
//!   or `mobility` (history blended with Markov-model visit predictions
//!   from the dataset)
//! * `--failure-rate` injected execution-failure probability (default 0)
//! * `--nodes` run the round stream through an `mcs-cluster` loopback
//!   deployment of N nodes instead of a single engine; prints per-node
//!   throughput and the deployment-invariant fingerprint (0 = off)
//! * `--bands` vertical grid bands (= region shards) for `--nodes`
//!   (default 8, the grid width)

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use mcs_campaign::prelude::*;
use mcs_cluster::{Cluster, ClusterConfig, ClusterParams, TaskSite, Topology};
use mcs_core::types::{Task, TaskId, UserId};
use mcs_mobility::grid::{Cell, CityGrid};
use mcs_mobility::serve::VisitOracle;
use mcs_obs::{merge_shard_traces, MetricsSource};
use mcs_platform::prelude::*;
use mcs_sim::config::{DatasetParams, SimParams};
use mcs_sim::population::{Dataset, Population, PopulationBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    rounds: usize,
    users: usize,
    workers: usize,
    seed: u64,
    multi: Option<usize>,
    payment_threads: usize,
    paper: bool,
    metrics_addr: Option<String>,
    snapshot_every: usize,
    trace_capacity: usize,
    hold_ms: u64,
    admission_high: usize,
    admission_low: Option<usize>,
    shed_policy: String,
    shed_rate: f64,
    clear_budget: usize,
    profile: bool,
    slo_budget: Option<String>,
    slo_baseline: Option<String>,
    campaign: bool,
    campaign_rounds: u64,
    campaign_deadline: u64,
    calibration: String,
    failure_rate: f64,
    nodes: u32,
    bands: usize,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut options = Options {
            rounds: 200,
            users: 30,
            workers: 4,
            seed: 1,
            multi: None,
            payment_threads: 1,
            paper: false,
            metrics_addr: None,
            snapshot_every: 0,
            trace_capacity: TraceConfig::default().capacity,
            hold_ms: 0,
            admission_high: 0,
            admission_low: None,
            shed_policy: "tail-drop".to_string(),
            shed_rate: 0.5,
            clear_budget: 0,
            profile: false,
            slo_budget: None,
            slo_baseline: None,
            campaign: false,
            campaign_rounds: 16,
            campaign_deadline: 0,
            calibration: "history".to_string(),
            failure_rate: 0.0,
            nodes: 0,
            bands: 8,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value =
                |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
            match arg.as_str() {
                "--rounds" => options.rounds = parse(&value("--rounds")?)?,
                "--users" => options.users = parse(&value("--users")?)?,
                "--workers" => options.workers = parse(&value("--workers")?)?,
                "--seed" => options.seed = parse(&value("--seed")?)?,
                "--multi" => options.multi = Some(parse(&value("--multi")?)?),
                "--payment-threads" => {
                    options.payment_threads = parse(&value("--payment-threads")?)?
                }
                "--paper" => options.paper = true,
                "--metrics-addr" => options.metrics_addr = Some(value("--metrics-addr")?),
                "--snapshot-every" => options.snapshot_every = parse(&value("--snapshot-every")?)?,
                "--trace-capacity" => options.trace_capacity = parse(&value("--trace-capacity")?)?,
                "--hold-ms" => options.hold_ms = parse(&value("--hold-ms")?)?,
                "--admission-high" => options.admission_high = parse(&value("--admission-high")?)?,
                "--admission-low" => {
                    options.admission_low = Some(parse(&value("--admission-low")?)?)
                }
                "--shed-policy" => options.shed_policy = value("--shed-policy")?,
                "--shed-rate" => options.shed_rate = parse(&value("--shed-rate")?)?,
                "--clear-budget" => options.clear_budget = parse(&value("--clear-budget")?)?,
                "--profile" => options.profile = true,
                "--slo-budget" => options.slo_budget = Some(value("--slo-budget")?),
                "--slo-baseline" => options.slo_baseline = Some(value("--slo-baseline")?),
                "--campaign" => options.campaign = true,
                "--campaign-rounds" => {
                    options.campaign_rounds = parse(&value("--campaign-rounds")?)?
                }
                "--campaign-deadline" => {
                    options.campaign_deadline = parse(&value("--campaign-deadline")?)?
                }
                "--calibration" => options.calibration = value("--calibration")?,
                "--failure-rate" => options.failure_rate = parse(&value("--failure-rate")?)?,
                "--nodes" => options.nodes = parse(&value("--nodes")?)?,
                "--bands" => options.bands = parse(&value("--bands")?)?,
                "--help" | "-h" => {
                    return Err("usage: platformd [--rounds N] [--users N] [--workers N] \
                         [--seed S] [--multi TASKS] [--payment-threads N] [--paper] \
                         [--metrics-addr ADDR] [--snapshot-every ROUNDS] \
                         [--trace-capacity EVENTS] [--hold-ms MS] \
                         [--admission-high BIDS] [--admission-low BIDS] \
                         [--shed-policy tail-drop|seeded-uniform] [--shed-rate P] \
                         [--clear-budget BIDS] [--profile] [--slo-budget FILE] \
                         [--slo-baseline FILE] [--campaign] [--campaign-rounds N] \
                         [--campaign-deadline N] [--calibration off|history|mobility] \
                         [--failure-rate P] [--nodes N] [--bands N]"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(options)
    }

    /// The admission configuration the flags describe; the seeded coin
    /// reuses `--seed` so one flag pins the whole run.
    fn admission(&self) -> Result<AdmissionConfig, String> {
        let policy = match self.shed_policy.as_str() {
            "tail-drop" => ShedPolicy::TailDrop,
            "seeded-uniform" => ShedPolicy::SeededUniform(SeededUniform {
                seed: self.seed,
                rate: self.shed_rate,
            }),
            other => {
                return Err(format!(
                    "unknown shed policy {other:?} (expected tail-drop or seeded-uniform)"
                ))
            }
        };
        Ok(AdmissionConfig {
            high_watermark: self.admission_high,
            low_watermark: self.admission_low.unwrap_or(self.admission_high / 2),
            policy,
            clear_budget: self.clear_budget,
        })
    }

    fn engine_config(&self, sim: &SimParams) -> Result<EngineConfig, String> {
        let mut config = EngineConfig::default()
            .with_workers(self.workers)
            .with_seed(self.seed)
            .with_payment_threads(self.payment_threads)
            .with_admission(self.admission()?)
            .with_profiling(self.profile);
        config.batch.max_bids = self.users;
        config.alpha = sim.alpha;
        config.epsilon = sim.epsilon;
        config.trace.capacity = self.trace_capacity;
        Ok(config)
    }

    fn dataset_params(&self) -> DatasetParams {
        // A reduced fleet keeps the default run under a few seconds;
        // --paper switches to the scale the test suite uses.
        if self.paper {
            DatasetParams::small()
        } else {
            DatasetParams {
                taxi_count: 400,
                slots: 240,
                evaluation_slots: 24,
                ..DatasetParams::default()
            }
        }
    }
}

fn parse<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("could not parse {text:?}"))
}

/// Loads the `--slo-budget` / `--slo-baseline` JSON pair, if given.
fn load_slo(options: &Options) -> Result<Option<(SloBudget, Option<SloBaseline>)>, String> {
    let Some(path) = &options.slo_budget else {
        if options.slo_baseline.is_some() {
            return Err("--slo-baseline needs --slo-budget".to_string());
        }
        return Ok(None);
    };
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    let budget: SloBudget =
        serde_json::from_str(&text).map_err(|error| format!("{path}: {error}"))?;
    let baseline = match &options.slo_baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|error| format!("cannot read {path}: {error}"))?;
            Some(serde_json::from_str(&text).map_err(|error| format!("{path}: {error}"))?)
        }
        None => None,
    };
    Ok(Some((budget, baseline)))
}

/// A fixed dataset-derived population re-bidding every campaign round.
/// Stable user identities across rounds are what make success history
/// (and therefore calibration) meaningful.
#[derive(Debug)]
struct PopulationBidSource {
    population: Population,
}

impl BidSource for PopulationBidSource {
    fn bids(&mut self, _round_index: u64, tasks: &[Task]) -> Vec<Bid> {
        let open: std::collections::BTreeSet<u32> =
            tasks.iter().map(|task| task.id().index() as u32).collect();
        self.population
            .profile
            .users()
            .iter()
            .filter_map(|user| {
                let tasks: Vec<(u32, f64)> = user
                    .tasks()
                    .filter(|(task, _)| open.contains(&(task.index() as u32)))
                    .map(|(task, pos)| (task.index() as u32, pos.value()))
                    .collect();
                (!tasks.is_empty()).then(|| Bid {
                    user: user.id().index() as u32,
                    cost: user.cost().value(),
                    tasks,
                })
            })
            .collect()
    }
}

/// Per-user any-task visit probabilities from the dataset's Markov
/// models, via the serving-path oracle.
fn mobility_evidence(
    dataset: &Dataset,
    population: &Population,
    task_count: usize,
) -> BTreeMap<UserId, f64> {
    let locations = dataset.campaign_locations(task_count);
    let horizon = dataset.params().evaluation_slots;
    let mut oracle = VisitOracle::new(dataset.models().clone(), horizon);
    let mut visits = BTreeMap::new();
    for (idx, &taxi) in population.taxis.iter().enumerate() {
        let Some(origin) = dataset.origin_of(taxi) else {
            continue;
        };
        let mut miss_all = 1.0;
        for &location in &locations {
            miss_all *= 1.0 - oracle.visit_probability(taxi, origin, location);
        }
        visits.insert(UserId::new(idx as u32), 1.0 - miss_all);
    }
    visits
}

fn run_campaign(options: &Options) -> ExitCode {
    let Some(mode) = CalibrationMode::parse(&options.calibration) else {
        eprintln!(
            "unknown calibration mode {:?} (expected off, history, or mobility)",
            options.calibration
        );
        return ExitCode::from(2);
    };
    let params = options.dataset_params();
    let sim = SimParams::default();

    let start = Instant::now();
    let dataset = Dataset::build(params);
    println!(
        "dataset: {} taxis, {} slots, built in {:.2?}",
        params.taxi_count,
        params.slots,
        start.elapsed()
    );
    let builder = PopulationBuilder::new(&dataset, sim);
    let task_count = options.multi.unwrap_or(5);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let population = match builder.multi_task(task_count, options.users, &mut rng) {
        Ok(population) => population,
        Err(error) => {
            eprintln!("cannot build campaign population: {error}");
            return ExitCode::FAILURE;
        }
    };
    let tasks = population.profile.tasks().to_vec();

    let engine = match options.engine_config(&sim) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let mut config = CampaignConfig::new(engine, tasks, options.campaign_rounds);
    config.deadline = (options.campaign_deadline > 0).then_some(options.campaign_deadline);
    config.calibration.mode = mode;
    config.failure_rate = options.failure_rate;
    config.failure_seed = options.seed ^ 0xFA11_FA11;
    if mode == CalibrationMode::Mobility {
        config.mobility_visits = mobility_evidence(&dataset, &population, task_count);
        println!(
            "mobility: visit evidence registered for {} of {} users",
            config.mobility_visits.len(),
            options.users
        );
    }

    let runner = CampaignRunner::new(config);
    let server = match &options.metrics_addr {
        Some(addr) => match ExportServer::spawn(addr, runner.metrics_handle()) {
            Ok(server) => {
                println!(
                    "metrics: serving http://{0}/metrics (Prometheus) and http://{0}/metrics.json",
                    server.local_addr()
                );
                Some(server)
            }
            Err(error) => {
                eprintln!("cannot bind metrics endpoint {addr}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut source = PopulationBidSource { population };
    let campaign_start = Instant::now();
    let report = runner.run(&mut source);
    let elapsed = campaign_start.elapsed();

    for round in &report.rounds {
        println!(
            "round {:>2} (engine r{}): {} tasks open, {} bids ({} gated), \
             {} winners, {} succeeded, payout {:+.2}, residual {:.4} -> {:.4}{}",
            round.index,
            round.engine_round,
            round.residual_before.len(),
            round.bids_offered,
            round.bids_gated,
            round.winners.len(),
            round.successes(),
            round.payout,
            round.total_residual_before(),
            round.total_residual_after(),
            if round.quarantined {
                " [quarantined]"
            } else {
                ""
            },
        );
    }
    // Timing goes on its own line: the summary line must diff clean
    // between runs for the determinism contract.
    println!(
        "campaign: {} in {} rounds, paid {:.2}, social cost {:.2}, fingerprint {:016x}",
        if report.covered {
            "full coverage"
        } else {
            "budget exhausted"
        },
        report.rounds_run(),
        report.total_paid,
        report.total_social_cost,
        report.fingerprint()
    );
    println!("campaign: finished in {elapsed:.2?}");
    let metrics = runner.metrics_handle();
    println!(
        "calibration: {} decisions, {} gated, mean |divergence| {:.4}",
        report
            .rounds
            .iter()
            .map(|r| r.bids_offered as u64)
            .sum::<u64>(),
        metrics.gated_count(),
        metrics.mean_divergence()
    );
    println!("{}", metrics.json());
    if options.hold_ms > 0 {
        println!(
            "holding for {} ms so the metrics endpoint stays up",
            options.hold_ms
        );
        std::thread::sleep(std::time::Duration::from_millis(options.hold_ms));
    }
    drop(server);
    if report.covered {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Publishes `count` tasks spread across the grid's bands, so a
/// multi-band topology has work in several regions and (for users
/// bidding on task sets that span bands) a non-trivial straddler phase.
fn cluster_sites(count: usize, requirement: f64, grid: &CityGrid) -> Vec<TaskSite> {
    (0..count)
        .map(|i| TaskSite {
            task: Task::with_requirement(TaskId::new(i as u32), requirement)
                .expect("valid requirement"),
            cell: Cell {
                x: ((i * grid.width() as usize) / count) as u32,
                y: (i % grid.height() as usize) as u32,
            },
        })
        .collect()
}

fn run_cluster(options: &Options) -> ExitCode {
    let params = options.dataset_params();
    let sim = SimParams::default();
    let task_count = options.multi.unwrap_or(4);

    let start = Instant::now();
    let dataset = Dataset::build(params);
    println!(
        "dataset: {} taxis, {} slots, built in {:.2?}",
        params.taxi_count,
        params.slots,
        start.elapsed()
    );
    let builder = PopulationBuilder::new(&dataset, sim);

    let grid = CityGrid::new(8, 4, 1.0);
    let bands = options.bands.clamp(1, grid.width() as usize);
    let sites = cluster_sites(task_count, sim.pos_requirement, &grid);
    let topology = match Topology::bands(grid, bands, sites) {
        Ok(topology) => topology,
        Err(error) => {
            eprintln!("cannot build cluster topology: {error}");
            return ExitCode::from(2);
        }
    };
    let regions: Vec<u32> = topology.active_regions().collect();
    let cluster_params = ClusterParams {
        seed: options.seed,
        workers: options.workers,
        payment_threads: options.payment_threads,
        alpha: sim.alpha,
        epsilon: sim.epsilon,
        trace_capacity: options.trace_capacity,
    };
    let config = ClusterConfig::new(options.nodes).with_params(cluster_params);
    let mut cluster = Cluster::loopback(topology, config);
    println!(
        "cluster: {} nodes (replicated), {} bands, {} active region shards: {:?}",
        options.nodes,
        bands,
        regions.len(),
        regions
    );

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut bids_total = 0u64;
    let mut rejected = 0u64;
    let mut shards_cleared = 0u64;
    let mut quarantined = 0u64;
    let run_start = Instant::now();
    for round in 0..options.rounds {
        let population = match builder.multi_task(task_count, options.users, &mut rng) {
            Ok(population) => population,
            Err(error) => {
                eprintln!("round {round}: cannot build population: {error}");
                return ExitCode::FAILURE;
            }
        };
        let bids: Vec<Bid> = population
            .profile
            .users()
            .iter()
            .map(|user| Bid {
                user: user.id().index() as u32,
                cost: user.cost().value(),
                tasks: user
                    .tasks()
                    .map(|(task, pos)| (task.index() as u32, pos.value()))
                    .collect(),
            })
            .collect();
        bids_total += bids.len() as u64;
        match cluster.run_round(&bids) {
            Ok(report) => {
                rejected += report.rejected as u64;
                shards_cleared += report.cleared_shards.len() as u64;
                quarantined += u64::from(report.quarantined);
            }
            Err(error) => {
                eprintln!("round {round}: cluster error: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = run_start.elapsed();
    println!(
        "cluster: {} rounds ({} sub-round clears) over {} nodes in {:.2?} \
         ({:.0} bids/s), {} bids ({} rejected), {} rounds quarantined",
        options.rounds,
        shards_cleared,
        options.nodes,
        elapsed,
        bids_total as f64 / elapsed.as_secs_f64(),
        bids_total,
        rejected,
        quarantined
    );
    let merged = merge_shard_traces(&cluster.shard_traces());
    println!(
        "trace: {} events across shards after canonical merge",
        merged.len()
    );
    let outcome = cluster.outcome();
    println!(
        "ledger: {} users paid, total {:.2} over {} rounds",
        outcome.ledger.balances().len(),
        outcome.ledger.total_paid(),
        outcome.ledger.rounds_settled()
    );
    for quarantine in &outcome.quarantines {
        println!(
            "  quarantined round {}: {}",
            quarantine.round, quarantine.post_mortem
        );
    }
    // The summary line must diff clean across node counts: same seed,
    // same fingerprint, any deployment.
    println!("cluster: fingerprint {:016x}", cluster.fingerprint());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let options = match Options::parse() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if options.nodes > 0 {
        if options.campaign {
            eprintln!("--nodes runs the cluster coordinator, not --campaign");
            return ExitCode::from(2);
        }
        if options.slo_budget.is_some() || options.slo_baseline.is_some() {
            eprintln!("--slo-budget/--slo-baseline watch the single-engine loop, not --nodes");
            return ExitCode::from(2);
        }
        return run_cluster(&options);
    }
    if options.campaign {
        if options.slo_budget.is_some() || options.slo_baseline.is_some() {
            eprintln!("--slo-budget/--slo-baseline watch the open-loop engine, not --campaign");
            return ExitCode::from(2);
        }
        return run_campaign(&options);
    }

    let params = options.dataset_params();
    let sim = SimParams::default();

    let start = Instant::now();
    let dataset = Dataset::build(params);
    println!(
        "dataset: {} taxis, {} slots, built in {:.2?}",
        params.taxi_count,
        params.slots,
        start.elapsed()
    );
    let builder = PopulationBuilder::new(&dataset, sim);

    let requirement = sim.pos_requirement;
    let tasks: Vec<Task> = match options.multi {
        Some(count) => (0..count)
            .map(|i| Task::with_requirement(TaskId::new(i as u32), requirement))
            .collect::<Result<_, _>>()
            .expect("valid requirement"),
        None => {
            vec![Task::with_requirement(TaskId::new(0), requirement).expect("valid requirement")]
        }
    };

    let config = match options.engine_config(&sim) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let mut engine = Engine::new(config, tasks);

    // The watchdog wraps the live metrics handle; it is pure telemetry,
    // so clearing below never knows whether one is attached.
    let watch = match load_slo(&options) {
        Ok(Some((budget, baseline))) => Some(std::sync::Arc::new(SloWatch::new(
            engine.metrics_handle(),
            engine.recorder_handle(),
            budget,
            baseline,
        ))),
        Ok(None) => None,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    // The exporter holds its own Arc to the metrics, so it serves live
    // values for the whole run (and through --hold-ms).
    let server = match &options.metrics_addr {
        Some(addr) => {
            let source: std::sync::Arc<dyn MetricsSource> = match &watch {
                Some(watch) => std::sync::Arc::clone(watch) as _,
                None => engine.metrics_handle(),
            };
            match ExportServer::spawn(addr, source) {
                Ok(server) => {
                    println!(
                        "metrics: serving http://{0}/metrics (Prometheus), \
                         http://{0}/metrics.json, and http://{0}/healthz{1}",
                        server.local_addr(),
                        if watch.is_some() {
                            "; SLO verdict at /slo"
                        } else {
                            ""
                        }
                    );
                    Some(server)
                }
                Err(error) => {
                    eprintln!("cannot bind metrics endpoint {addr}: {error}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let location = dataset
        .single_task_location(options.users)
        .unwrap_or_else(|| dataset.popular_locations(1)[0]);
    let mut rng = StdRng::seed_from_u64(options.seed);

    // Ingest phase: synthesize one population per round and stream its
    // bids; the round closes itself at max_bids.
    let ingest_start = Instant::now();
    let mut bids = 0u64;
    let mut shed = 0u64;
    for round in 0..options.rounds {
        let population = match options.multi {
            Some(count) => builder.multi_task(count, options.users, &mut rng),
            None => builder.single_task(location, options.users, &mut rng),
        };
        let population = match population {
            Ok(population) => population,
            Err(error) => {
                eprintln!("round {round}: cannot build population: {error}");
                return ExitCode::FAILURE;
            }
        };
        for user in population.profile.users() {
            let bid = Bid {
                user: user.id().index() as u32,
                cost: user.cost().value(),
                tasks: user
                    .tasks()
                    .map(|(task, pos)| (task.index() as u32, pos.value()))
                    .collect(),
            };
            match engine.submit(&bid) {
                Ok(Admission::Shed(_)) => shed += 1,
                Ok(Admission::Admitted) => {}
                Err(error) => eprintln!("round {round}: rejected bid: {error}"),
            }
            bids += 1;
        }
        engine.tick();
        if options.snapshot_every > 0 && (round + 1) % options.snapshot_every == 0 {
            engine.drain();
            let snapshot = engine.metrics().snapshot();
            println!(
                "snapshot[{} rounds]: {}",
                round + 1,
                serde_json::to_string(&snapshot).expect("snapshot serializes")
            );
        }
    }
    engine.flush();
    let ingest_elapsed = ingest_start.elapsed();
    println!(
        "ingest: {bids} bids into {} rounds in {:.2?} ({:.0} bids/s), {shed} shed",
        engine.pending_rounds(),
        ingest_elapsed,
        bids as f64 / ingest_elapsed.as_secs_f64()
    );

    // Drain phase: clear everything across the worker pool.
    let drain_start = Instant::now();
    let cleared = engine.drain();
    let drain_elapsed = drain_start.elapsed();
    println!(
        "drain: {cleared} rounds cleared, {} quarantined across {} workers in {:.2?} ({:.1} rounds/s)",
        engine.quarantine().len(),
        engine.config().workers,
        drain_elapsed,
        cleared as f64 / drain_elapsed.as_secs_f64()
    );
    for quarantined in engine.quarantine() {
        println!(
            "  quarantined {}: {} ({} bidders)",
            quarantined.id, quarantined.error, quarantined.bidders
        );
    }
    for post_mortem in engine.post_mortems() {
        println!("post-mortem round {}:", post_mortem.round);
        println!("{}", post_mortem.to_json());
    }
    println!(
        "trace: {} events recorded into a {}-slot ring ({} collisions)",
        engine.recorder().recorded(),
        engine.recorder().capacity(),
        engine.recorder().collisions()
    );
    println!(
        "ledger: {} users paid, total {:.2} over {} rounds",
        engine.ledger().balances().len(),
        engine.ledger().total_paid(),
        engine.ledger().rounds_settled()
    );
    println!("{}", engine.metrics_json());
    if let Some(watch) = &watch {
        let report = watch.evaluate();
        println!(
            "slo: {} budgets evaluated, {} breached",
            report.evaluated,
            report.breaches.len()
        );
        for breach in &report.breaches {
            println!(
                "  SLO BREACH: {}{} observed {:.3} > limit {:.3}",
                breach.kind.name(),
                breach
                    .stage
                    .as_deref()
                    .map(|stage| format!("[{stage}]"))
                    .unwrap_or_default(),
                breach.observed,
                breach.limit
            );
        }
    }
    if options.hold_ms > 0 {
        println!(
            "holding for {} ms so the metrics endpoint stays up",
            options.hold_ms
        );
        std::thread::sleep(std::time::Duration::from_millis(options.hold_ms));
    }
    drop(server);
    ExitCode::SUCCESS
}
