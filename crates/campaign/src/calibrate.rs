//! PoS calibration: blending declared success probabilities with
//! observed history (and, when available, mobility predictions) to gate
//! admission.
//!
//! ## Why gating, not repricing
//!
//! The paper's truthfulness analysis (Theorems 2/6) prices winners off
//! their *declared* types; substituting a calibrated PoS into the
//! payment rule would break the incentive argument. The calibrator
//! therefore never touches what the clearing engine quotes against —
//! declared bids flow through unchanged. Its only lever is admission:
//! a user whose calibrated success probability has fallen far enough
//! below her declaration is kept out of the round entirely, which is
//! incentive-neutral (a non-participant has no payment to manipulate).
//! The calibrated→declared divergence is exported as a metric and a
//! [`PosCalibrated`](mcs_obs::EventKind::PosCalibrated) trace event so
//! the gap is observable instead of silently absorbed.
//!
//! ## The posterior
//!
//! For a user with `s` observed successes in `n` attempts and declared
//! any-task PoS `p`, the calibrated estimate is the Laplace-smoothed
//! posterior mean
//!
//! ```text
//! p̂ = (s + k·p) / (n + k)
//! ```
//!
//! with prior strength `k` pseudo-observations centred on the
//! declaration. With no history (`n = 0`) this is exactly `p`; as
//! `n → ∞` it converges to the empirical frequency `s/n`; for fixed `n`
//! it is monotone in `s`; and it stays in `[0, 1]` whenever `p` does.
//! In [`CalibrationMode::Mobility`] the posterior is further blended
//! with a mobility-model visit probability for the user's task cell.

use mcs_core::types::{Pos, UserId};
use serde::{Deserialize, Serialize};

use crate::history::SuccessHistory;

/// Which evidence the calibrator folds into declared PoS values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalibrationMode {
    /// No calibration: every bid is admitted, calibrated = declared.
    Off,
    /// Blend declared PoS with the observed success history.
    History,
    /// As [`CalibrationMode::History`], additionally blending a
    /// mobility-predicted visit probability where one is registered.
    Mobility,
}

impl CalibrationMode {
    /// Parses the `platformd --calibration` flag value.
    pub fn parse(value: &str) -> Option<CalibrationMode> {
        match value {
            "off" => Some(CalibrationMode::Off),
            "history" => Some(CalibrationMode::History),
            "mobility" => Some(CalibrationMode::Mobility),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            CalibrationMode::Off => "off",
            CalibrationMode::History => "history",
            CalibrationMode::Mobility => "mobility",
        }
    }
}

/// Calibrator knobs. The defaults are deliberately forgiving: three
/// attempts of grace before any gating, and a gate that only fires when
/// the posterior has fallen below half the declaration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratorConfig {
    /// Evidence source.
    pub mode: CalibrationMode,
    /// Pseudo-observations backing the declared PoS (`k` above). Larger
    /// values trust declarations longer.
    pub prior_strength: f64,
    /// A bid is gated out when `calibrated < gate_ratio · declared`.
    pub gate_ratio: f64,
    /// Users with fewer recorded attempts than this are never gated —
    /// everyone gets a track record before it can be held against them.
    pub min_attempts: u64,
    /// Blend weight of the mobility visit probability in
    /// [`CalibrationMode::Mobility`] (0 = ignore, 1 = replace).
    pub mobility_weight: f64,
}

impl Default for CalibratorConfig {
    fn default() -> Self {
        CalibratorConfig {
            mode: CalibrationMode::History,
            prior_strength: 4.0,
            gate_ratio: 0.5,
            min_attempts: 3,
            mobility_weight: 0.5,
        }
    }
}

impl CalibratorConfig {
    /// Calibration disabled: admit everything, calibrated = declared.
    pub fn off() -> Self {
        CalibratorConfig {
            mode: CalibrationMode::Off,
            ..CalibratorConfig::default()
        }
    }
}

/// The calibrator's verdict on one bid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationDecision {
    /// The declared any-task PoS the decision judged.
    pub declared: Pos,
    /// The calibrated estimate (equal to `declared` when calibration is
    /// off or no evidence applies).
    pub calibrated: Pos,
    /// Whether the bid may enter the round.
    pub admitted: bool,
}

impl CalibrationDecision {
    /// Signed calibrated − declared divergence.
    pub fn divergence(&self) -> f64 {
        self.calibrated.value() - self.declared.value()
    }
}

/// Blends declared PoS with observed evidence and gates admission.
#[derive(Debug, Clone, PartialEq)]
pub struct PosCalibrator {
    config: CalibratorConfig,
    visits: std::collections::BTreeMap<UserId, f64>,
}

impl PosCalibrator {
    /// A calibrator with the given knobs and no registered mobility
    /// evidence.
    pub fn new(config: CalibratorConfig) -> Self {
        PosCalibrator {
            config,
            visits: std::collections::BTreeMap::new(),
        }
    }

    /// The calibrator's configuration.
    pub fn config(&self) -> &CalibratorConfig {
        &self.config
    }

    /// Registers mobility evidence for `user`: the predicted probability
    /// of visiting her task's grid cell within the sensing window. Only
    /// consulted in [`CalibrationMode::Mobility`].
    pub fn register_visit(&mut self, user: UserId, probability: f64) {
        self.visits.insert(user, probability.clamp(0.0, 1.0));
    }

    /// The Laplace-smoothed posterior for `user` given her declaration,
    /// before any mobility blending.
    pub fn posterior(&self, history: &SuccessHistory, user: UserId, declared: Pos) -> f64 {
        let record = history.record_for(user);
        let k = self.config.prior_strength.max(0.0);
        let n = record.attempts as f64;
        if n + k == 0.0 {
            return declared.value();
        }
        (record.successes as f64 + k * declared.value()) / (n + k)
    }

    /// Calibrates `user`'s declared any-task PoS against `history` and
    /// decides admission.
    pub fn decide(
        &self,
        history: &SuccessHistory,
        user: UserId,
        declared: Pos,
    ) -> CalibrationDecision {
        if self.config.mode == CalibrationMode::Off {
            return CalibrationDecision {
                declared,
                calibrated: declared,
                admitted: true,
            };
        }
        let mut estimate = self.posterior(history, user, declared);
        if self.config.mode == CalibrationMode::Mobility {
            if let Some(&visit) = self.visits.get(&user) {
                let w = self.config.mobility_weight.clamp(0.0, 1.0);
                estimate = (1.0 - w) * estimate + w * visit;
            }
        }
        let calibrated = Pos::saturating(estimate);
        let grace = history.record_for(user).attempts < self.config.min_attempts;
        let admitted = grace || calibrated.value() >= self.config.gate_ratio * declared.value();
        CalibrationDecision {
            declared,
            calibrated,
            admitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with(user: UserId, successes: u64, attempts: u64) -> SuccessHistory {
        let mut history = SuccessHistory::new();
        for i in 0..attempts {
            history.record(user, i < successes);
        }
        history
    }

    #[test]
    fn empty_history_degrades_to_declared() {
        let calibrator = PosCalibrator::new(CalibratorConfig::default());
        let history = SuccessHistory::new();
        let declared = Pos::new(0.6).unwrap();
        let decision = calibrator.decide(&history, UserId::new(0), declared);
        assert_eq!(decision.calibrated, declared);
        assert!(decision.admitted);
        assert_eq!(decision.divergence(), 0.0);
    }

    #[test]
    fn posterior_tracks_empirical_frequency() {
        let calibrator = PosCalibrator::new(CalibratorConfig::default());
        let user = UserId::new(1);
        let declared = Pos::new(0.9).unwrap();
        let posterior = calibrator.posterior(&history_with(user, 10, 100), user, declared);
        // 100 observations at 10% success pull 0.9 down hard.
        assert!((posterior - (10.0 + 4.0 * 0.9) / 104.0).abs() < 1e-12);
        assert!(posterior < 0.14);
    }

    #[test]
    fn chronic_failures_are_gated_but_grace_protects_newcomers() {
        let calibrator = PosCalibrator::new(CalibratorConfig::default());
        let user = UserId::new(2);
        let declared = Pos::new(0.9).unwrap();
        // 2 attempts: inside the grace window, never gated.
        let young = calibrator.decide(&history_with(user, 0, 2), user, declared);
        assert!(young.admitted);
        // 20 straight failures: posterior far below half the declaration.
        let chronic = calibrator.decide(&history_with(user, 0, 20), user, declared);
        assert!(!chronic.admitted);
        assert!(chronic.calibrated.value() < 0.2);
        assert!(chronic.divergence() < 0.0);
    }

    #[test]
    fn off_mode_admits_everything() {
        let calibrator = PosCalibrator::new(CalibratorConfig::off());
        let user = UserId::new(3);
        let declared = Pos::new(0.9).unwrap();
        let decision = calibrator.decide(&history_with(user, 0, 50), user, declared);
        assert!(decision.admitted);
        assert_eq!(decision.calibrated, declared);
    }

    #[test]
    fn mobility_mode_blends_registered_visits() {
        let config = CalibratorConfig {
            mode: CalibrationMode::Mobility,
            mobility_weight: 0.5,
            ..CalibratorConfig::default()
        };
        let mut calibrator = PosCalibrator::new(config);
        let user = UserId::new(4);
        let declared = Pos::new(0.8).unwrap();
        let history = SuccessHistory::new();
        calibrator.register_visit(user, 0.2);
        let blended = calibrator.decide(&history, user, declared);
        // (1 - 0.5)·0.8 + 0.5·0.2 = 0.5
        assert!((blended.calibrated.value() - 0.5).abs() < 1e-12);
        // Without registered evidence the posterior is untouched.
        let other = calibrator.decide(&history, UserId::new(5), declared);
        assert_eq!(other.calibrated, declared);
    }

    #[test]
    fn mode_flags_round_trip() {
        for mode in [
            CalibrationMode::Off,
            CalibrationMode::History,
            CalibrationMode::Mobility,
        ] {
            assert_eq!(CalibrationMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(CalibrationMode::parse("bogus"), None);
    }
}
