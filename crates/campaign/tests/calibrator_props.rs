//! Property tests for the PoS calibrator: the Laplace posterior is a
//! probability, monotone in observed successes, converges to the
//! empirical success frequency, and degrades to the declared value when
//! there is no history to learn from.

use mcs_campaign::prelude::{CalibratorConfig, PosCalibrator, SuccessHistory};
use mcs_core::types::{Pos, UserId};
use proptest::prelude::*;

fn history_of(successes: u64, failures: u64) -> SuccessHistory {
    let mut history = SuccessHistory::new();
    let user = UserId::new(0);
    for _ in 0..successes {
        history.record(user, true);
    }
    for _ in 0..failures {
        history.record(user, false);
    }
    history
}

fn calibrator(prior_strength: f64) -> PosCalibrator {
    PosCalibrator::new(CalibratorConfig {
        prior_strength,
        ..CalibratorConfig::default()
    })
}

proptest! {
    #[test]
    fn posterior_is_a_probability(
        declared in 0.01f64..0.99,
        successes in 0u64..60,
        failures in 0u64..60,
        prior_strength in 0.5f64..16.0,
    ) {
        let history = history_of(successes, failures);
        let posterior = calibrator(prior_strength).posterior(
            &history,
            UserId::new(0),
            Pos::saturating(declared),
        );
        prop_assert!((0.0..=1.0).contains(&posterior), "posterior {posterior} left [0, 1]");
    }

    #[test]
    fn posterior_is_monotone_in_successes(
        declared in 0.01f64..0.99,
        attempts in 1u64..60,
        prior_strength in 0.5f64..16.0,
    ) {
        let calibrator = calibrator(prior_strength);
        let declared = Pos::saturating(declared);
        let mut previous = -1.0;
        for successes in 0..=attempts {
            let history = history_of(successes, attempts - successes);
            let posterior = calibrator.posterior(&history, UserId::new(0), declared);
            prop_assert!(
                posterior >= previous - 1e-12,
                "posterior dropped from {previous} to {posterior} \
                 at {successes}/{attempts} successes"
            );
            previous = posterior;
        }
    }

    #[test]
    fn posterior_converges_to_empirical_frequency(
        declared in 0.01f64..0.99,
        successes in 0u64..60,
        failures in 0u64..60,
        prior_strength in 0.5f64..16.0,
    ) {
        if successes + failures == 0 {
            return Ok(()); // empty history is its own property below
        }
        let history = history_of(successes, failures);
        let posterior = calibrator(prior_strength).posterior(
            &history,
            UserId::new(0),
            Pos::saturating(declared),
        );
        let attempts = (successes + failures) as f64;
        let empirical = successes as f64 / attempts;
        // The prior of strength k can pull n observations at most
        // k / (n + k) away from their empirical mean.
        let bound = prior_strength / (attempts + prior_strength);
        prop_assert!(
            (posterior - empirical).abs() <= bound + 1e-12,
            "posterior {posterior} strayed {:.6} from empirical {empirical} (bound {bound:.6})",
            (posterior - empirical).abs()
        );
    }

    #[test]
    fn empty_history_degrades_to_declared(
        declared in 0.01f64..0.99,
        prior_strength in 0.5f64..16.0,
    ) {
        let history = SuccessHistory::new();
        let posterior = calibrator(prior_strength).posterior(
            &history,
            UserId::new(0),
            Pos::saturating(declared),
        );
        prop_assert!(
            (posterior - declared).abs() < 1e-12,
            "with no observations the posterior must be the declared {declared}, got {posterior}"
        );
    }
}
