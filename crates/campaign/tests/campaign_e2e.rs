//! End-to-end campaign acceptance: a seeded campaign with a 30%
//! injected execution-failure rate reaches full coverage through
//! residual re-auctions, its per-round economics are scrapeable over
//! HTTP in both Prometheus and JSON form, its fingerprint is bitwise
//! identical across worker counts, and back-to-back campaigns on one
//! ledger conserve the lifetime totals.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

use mcs_campaign::prelude::{CampaignConfig, CampaignReport, CampaignRunner, SyntheticBidSource};
use mcs_core::types::{Task, TaskId};
use mcs_obs::ExportServer;
use mcs_platform::prelude::EngineConfig;

const SEED: u64 = 42;
const FAILURE_RATE: f64 = 0.3;

fn tasks() -> Vec<Task> {
    vec![
        Task::with_requirement(TaskId::new(0), 0.95).unwrap(),
        Task::with_requirement(TaskId::new(1), 0.9).unwrap(),
        Task::with_requirement(TaskId::new(2), 0.85).unwrap(),
    ]
}

fn config(workers: usize) -> CampaignConfig {
    let engine = EngineConfig::default()
        .with_seed(SEED)
        .with_workers(workers);
    let mut config = CampaignConfig::new(engine, tasks(), 24);
    config.failure_rate = FAILURE_RATE;
    config.failure_seed = SEED ^ 0xFA11_FA11;
    config
}

fn run(workers: usize) -> (CampaignRunner, CampaignReport) {
    let runner = CampaignRunner::new(config(workers));
    let mut source = SyntheticBidSource::new(SEED, 12);
    let report = runner.run(&mut source);
    (runner, report)
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn injected_failures_are_closed_by_residual_reauctions() {
    let (runner, report) = run(2);
    assert!(
        report.covered,
        "30% failures must still reach full coverage"
    );
    assert!(
        report.rounds_run() > 1,
        "a 30% failure rate should force at least one residual round"
    );
    assert!(report.residual_final.values().all(|&r| r < 1e-9));
    assert!(runner.metrics_handle().residual_reauction_count() > 0);
    // Residual rounds re-publish strictly fewer-or-equal tasks.
    for pair in report.rounds.windows(2) {
        assert!(pair[1].residual_before.len() <= pair[0].residual_before.len());
    }
}

#[test]
fn per_round_economics_are_scrapeable() {
    let (runner, report) = run(2);
    let server = ExportServer::spawn("127.0.0.1:0", runner.metrics_handle()).unwrap();
    let addr = server.local_addr();

    let prom = get(addr, "/metrics");
    assert!(prom.starts_with("HTTP/1.0 200 OK"));
    for family in [
        "mcs_campaign_rounds_total",
        "mcs_campaign_residual_reauctions_total",
        "mcs_campaign_executions_succeeded_total",
        "mcs_campaign_executions_failed_total",
        "mcs_campaign_total_paid",
        "mcs_campaign_residual_open",
        "mcs_campaign_round_payout",
        "mcs_campaign_round_residual_after",
    ] {
        assert!(prom.contains(family), "missing {family} in:\n{prom}");
    }
    // Every campaign round shows up as a labelled per-round sample.
    for round in &report.rounds {
        let label = format!("round=\"{}\"", round.index);
        assert!(prom.contains(&label), "missing {label} in:\n{prom}");
    }

    let json = get(addr, "/metrics.json");
    assert!(json.starts_with("HTTP/1.0 200 OK"));
    assert!(json.contains("economics"));
    assert!(json.contains("residual_after"));
}

#[test]
fn fingerprints_match_across_worker_counts() {
    let fingerprints: Vec<u64> = [1usize, 2, 8]
        .iter()
        .map(|&workers| run(workers).1.fingerprint())
        .collect();
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[1], fingerprints[2]);
}

#[test]
fn chained_campaigns_conserve_the_lifetime_ledger() {
    let (runner, first) = run(2);
    let mut source = SyntheticBidSource::new(SEED ^ 1, 12);
    let second = runner.resume(&mut source, first.checkpoint.clone());
    let lifetime = second.checkpoint.ledger.total_paid();
    assert!(
        (first.total_paid + second.total_paid - lifetime).abs() < 1e-9,
        "scoped campaign totals must partition the lifetime ledger: \
         {} + {} != {lifetime}",
        first.total_paid,
        second.total_paid
    );
}
