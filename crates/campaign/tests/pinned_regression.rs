//! Pinned-seed regression: the canonical 30%-failure campaign is
//! bit-for-bit frozen. Any change to bid synthesis, clearing,
//! settlement, failure injection, calibration gating, or residual
//! accounting that moves these numbers is a *behavioural* change and
//! must update this pin deliberately.

use mcs_campaign::prelude::{CampaignConfig, CampaignRunner, SyntheticBidSource};
use mcs_core::types::{Task, TaskId};
use mcs_platform::prelude::EngineConfig;

/// Frozen expectations for `(seed=2024, rate=0.3, 12 bidders)`.
const PINNED_ROUNDS: u64 = 2;
const PINNED_FINGERPRINT: u64 = 0x747f_0263_a291_f38b;

#[test]
fn the_canonical_campaign_is_frozen() {
    let tasks = vec![
        Task::with_requirement(TaskId::new(0), 0.95).unwrap(),
        Task::with_requirement(TaskId::new(1), 0.9).unwrap(),
        Task::with_requirement(TaskId::new(2), 0.85).unwrap(),
    ];
    let mut config = CampaignConfig::new(EngineConfig::default().with_seed(2024), tasks, 24);
    config.failure_rate = 0.3;
    config.failure_seed = 2024 ^ 0xFA11_FA11;
    let runner = CampaignRunner::new(config);
    let mut source = SyntheticBidSource::new(2024, 12);
    let report = runner.run(&mut source);

    assert!(report.covered, "the pinned campaign reaches full coverage");
    assert!(
        report.rounds_run() > 1,
        "the pinned campaign needs residual rounds to converge"
    );
    println!(
        "pinned campaign: rounds={} fingerprint={:016x}",
        report.rounds_run(),
        report.fingerprint()
    );
    assert_eq!(report.rounds_run(), PINNED_ROUNDS, "round count drifted");
    assert_eq!(
        report.fingerprint(),
        PINNED_FINGERPRINT,
        "campaign fingerprint drifted"
    );
}
