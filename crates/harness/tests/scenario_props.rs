//! Property tests for the scenario generators: arrival curves hit their
//! configured mean rate and conserve burst mass, shock fields stay
//! inside their configured ranges and bite only inside region × window,
//! and everything is a pure function of its seed.

use mcs_harness::scenario::arrival::ArrivalCurve;
use mcs_harness::scenario::shock::ShockField;
use mcs_harness::scenario::spec::{ArrivalSpec, ShockSpec};
use mcs_mobility::grid::Cell;
use proptest::prelude::*;

proptest! {
    #[test]
    fn diurnal_mean_tracks_the_configured_base_rate(
        seed in 0u64..1_000,
        base in 2.0f64..40.0,
        amplitude in 0.0f64..0.5,
        period in 2u64..24,
        phase in 0.0f64..1.0,
        periods in 2u64..6,
    ) {
        // The ranges keep the trough at one bid or more (base ≥ 2,
        // amplitude < 0.5), mirroring the schema validator's rule.
        let spec = ArrivalSpec {
            base,
            amplitude,
            period,
            phase,
            bursts: 0,
            burst_mass: 0,
            burst_width: 1,
        };
        // Whole periods only: the sinusoid must integrate out.
        let rounds = period * periods;
        let curve = ArrivalCurve::generate(&spec, seed, rounds);
        let mean = curve.base_total() as f64 / rounds as f64;
        prop_assert!(
            (mean - base).abs() <= 1.0,
            "mean rate {mean} strayed from configured base {base}"
        );
        for round in 0..rounds {
            let count = curve.base_count(round) as f64;
            prop_assert!(
                count >= (base * (1.0 - amplitude)).floor()
                    && count <= (base * (1.0 + amplitude)).ceil(),
                "round {round} count {count} left the diurnal envelope"
            );
        }
    }

    #[test]
    fn burst_mass_is_conserved_exactly(
        seed in 0u64..1_000,
        base in 2.0f64..10.0,
        rounds in 4u64..40,
        bursts in 1u32..6,
        burst_mass in 1u32..50,
        burst_width in 1u64..8,
    ) {
        let spec = ArrivalSpec {
            base,
            amplitude: 0.0,
            period: 24,
            phase: 0.0,
            bursts,
            burst_mass,
            burst_width,
        };
        let curve = ArrivalCurve::generate(&spec, seed, rounds);
        prop_assert_eq!(curve.burst_total(), bursts as u64 * burst_mass as u64);
        prop_assert_eq!(curve.total(), curve.base_total() + curve.burst_total());
    }

    #[test]
    fn shock_multipliers_stay_probabilities_and_respect_their_window(
        seed in 0u64..1_000,
        rounds in 4u64..32,
        count in 1u32..6,
        lo in 0.05f64..0.5,
        spread in 0.0f64..0.4,
    ) {
        let spec = ShockSpec {
            grid_width: 6,
            grid_height: 6,
            count,
            multiplier_min: lo,
            multiplier_max: lo + spread,
            duration_min: 1,
            duration_max: 6,
            region_width: 3,
            region_height: 3,
        };
        let field = ShockField::generate(&spec, seed, rounds);
        prop_assert_eq!(field.events().len(), count as usize);
        for event in field.events() {
            prop_assert!(event.start < event.end && event.end <= rounds);
            prop_assert!((lo..=lo + spread).contains(&event.multiplier));
        }
        for round in 0..rounds {
            for x in 0..6u32 {
                for y in 0..6u32 {
                    let cell = Cell { x, y };
                    let multiplier = field.multiplier(round, cell);
                    prop_assert!(
                        (0.0..=1.0).contains(&multiplier),
                        "multiplier {multiplier} left [0, 1]"
                    );
                    let covered = field
                        .events()
                        .iter()
                        .any(|event| event.covers(round, cell));
                    if !covered {
                        // Weather must not bite outside region × window.
                        prop_assert_eq!(multiplier, 1.0);
                    }
                }
            }
        }
    }

    #[test]
    fn generators_are_pure_functions_of_their_seed(
        seed in 0u64..10_000,
        rounds in 4u64..32,
    ) {
        let arrival = ArrivalSpec {
            base: 6.0,
            amplitude: 0.4,
            period: 8,
            phase: 0.25,
            bursts: 2,
            burst_mass: 9,
            burst_width: 2,
        };
        let shocks = ShockSpec {
            grid_width: 5,
            grid_height: 5,
            count: 3,
            multiplier_min: 0.3,
            multiplier_max: 0.9,
            duration_min: 1,
            duration_max: 4,
            region_width: 2,
            region_height: 2,
        };
        let curve_a = ArrivalCurve::generate(&arrival, seed, rounds);
        let curve_b = ArrivalCurve::generate(&arrival, seed, rounds);
        prop_assert_eq!(&curve_a, &curve_b);
        let field_a = ShockField::generate(&shocks, seed, rounds);
        let field_b = ShockField::generate(&shocks, seed, rounds);
        prop_assert_eq!(&field_a, &field_b);
        for user in 0..32u32 {
            prop_assert_eq!(field_a.home_cell(user), field_b.home_cell(user));
        }
    }
}
