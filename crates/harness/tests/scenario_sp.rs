//! Online strategy-proofness regression: strategic bidders replay the
//! misreport factor grid live against the engine, in lockstep with a
//! truthful twin, at ε ∈ {0.5, 0.1, 0.01}. Zero deviations may profit —
//! and the oracle's teeth are proven by feeding it a deliberately
//! sweetened quote and watching it trip.

use mcs_harness::scenario::{check_online_sp, deviation_gain, load, Scenario};

#[test]
fn the_shipped_siege_scenario_finds_no_profitable_deviation() {
    let scenario = load("strategic-siege").expect("corpus scenario loads");
    let strategy = scenario.strategy.as_ref().expect("siege has strategists");
    assert_eq!(
        strategy.epsilons,
        vec![0.5, 0.1, 0.01],
        "the pinned epsilon ladder is part of the regression"
    );
    let report = check_online_sp(&scenario, 1e-6).expect("twins run");
    assert_eq!(
        report.checked, scenario.rounds,
        "exactly one deviation must be played per round"
    );
    for violation in &report.violations {
        eprintln!("SP VIOLATION: {violation}");
    }
    assert!(report.is_clean(), "a live deviation profited");
    assert!(
        report.truthful.is_clean(),
        "{:?}",
        report.truthful.violations
    );
    assert!(
        report.deviating.is_clean(),
        "{:?}",
        report.deviating.violations
    );
    // The twins share arrivals and execution draws, so the *truthful*
    // twin's fingerprint must match a plain run of the same scenario.
    assert_eq!(
        report.truthful.fingerprint(),
        mcs_harness::scenario::run_scenario(&scenario)
            .expect("runs")
            .fingerprint()
    );
}

#[test]
fn shocked_worlds_do_not_confuse_the_oracle() {
    // Same sweep, but with regional weather layered on: shocks hit
    // truthful and deviating twins identically, so strategy-proofness
    // must still hold at the bidders' *believed* types.
    let scenario = Scenario::from_toml_str(
        r#"
[scenario]
schema = 1
name = "sp-under-weather"
version = 1
seed = 4242
rounds = 12

[tasks]
count = 2
requirement = 0.6

[population]
users = 16
cost_min = 0.8
cost_max = 3.0
pos_min = 0.4
pos_max = 0.85

[arrival]
base = 8.0
amplitude = 0.3
period = 6

[shocks]
grid_width = 6
grid_height = 6
count = 4
multiplier_min = 0.3
multiplier_max = 0.8
duration_min = 2
duration_max = 5
region_width = 3
region_height = 3

[strategy]
epsilons = [0.5, 0.1, 0.01]
deviators = 3
"#,
    )
    .expect("fixture parses");
    let report = check_online_sp(&scenario, 1e-6).expect("twins run");
    assert_eq!(report.checked, 12);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn the_assertion_demonstrably_trips_on_a_broken_quote() {
    // Mutation check: the SP verdict is a pure function of the two
    // issued quotes. If a (hypothetically broken) engine ever paid a
    // deviator more than her truthful twin, the oracle MUST fire.
    let truthful = Some((11.0, 1.0));
    let sweetened = Some((11.5, 1.5)); // +0.5 on both branches
    let tripped = deviation_gain(truthful, sweetened, 0.6, 2.0, 1e-6);
    let (truthful_eu, deviating_eu) = tripped.expect("sweetened quote must trip the oracle");
    assert!((deviating_eu - truthful_eu - 0.5).abs() < 1e-12);

    // Winning from nothing at a cost-covering quote must trip too.
    assert!(deviation_gain(None, Some((30.0, 10.0)), 0.5, 2.0, 1e-6).is_some());

    // And the identical quote never trips — the no-false-positive side.
    assert!(deviation_gain(truthful, truthful, 0.6, 2.0, 1e-6).is_none());
}
