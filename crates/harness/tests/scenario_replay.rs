//! Trace round-trip regression: a recorded scenario run replays
//! bit-exactly through a fresh engine — same fingerprint, same
//! economics snapshot — and a corrupted trace produces a typed loader
//! error, never a panic.

use mcs_harness::scenario::{replay_scenario, run_scenario, Scenario, ScenarioError};
use mcs_obs::replay::ReplayLog;

/// A 20-round platform scenario with weather and admission pressure, so
/// the trace exercises sheds, quarantines, and shocked redraws — not
/// just the happy path.
fn twenty_rounds() -> Scenario {
    Scenario::from_toml_str(
        r#"
[scenario]
schema = 1
name = "replay-regression"
version = 1
seed = 2024
rounds = 20

[tasks]
count = 2
requirement = 0.65

[population]
users = 14
cost_min = 0.9
cost_max = 3.2
pos_min = 0.4
pos_max = 0.85

[arrival]
base = 7.0
amplitude = 0.4
period = 10
bursts = 2
burst_mass = 12
burst_width = 2

[shocks]
grid_width = 6
grid_height = 6
count = 3
multiplier_min = 0.35
multiplier_max = 0.85
duration_min = 2
duration_max = 6
region_width = 3
region_height = 3

[admission]
high_watermark = 10
low_watermark = 5
policy = "tail-drop"
clear_budget = 8
"#,
    )
    .expect("fixture parses")
}

#[test]
fn a_recorded_run_replays_bitwise_identically() {
    let scenario = twenty_rounds();
    let recorded = run_scenario(&scenario).expect("records");
    assert!(recorded.is_clean(), "{:?}", recorded.violations);
    assert_eq!(recorded.rounds_cleared, 20);
    assert!(recorded.sheds > 0, "fixture should exercise shedding");

    // Serialize through the wire format, as mcs-fuzz --record-trace
    // does, then replay from the decoded bytes.
    let bytes = recorded.log.to_bytes();
    let log = ReplayLog::from_bytes(&bytes).expect("round-trips");
    assert_eq!(log, recorded.log);

    let replayed = replay_scenario(&scenario, &log).expect("replays");
    assert_eq!(recorded.fingerprint(), replayed.fingerprint());
    assert_eq!(recorded.baseline(), replayed.baseline());
    assert_eq!(recorded.results, replayed.results);
    assert_eq!(recorded.settlements, replayed.settlements);
    assert_eq!(recorded.balances, replayed.balances);
    assert_eq!(
        recorded.economics, replayed.economics,
        "economics snapshots must be bitwise identical"
    );
}

#[test]
fn corrupting_any_byte_yields_a_typed_error_not_a_panic() {
    let scenario = twenty_rounds();
    let recorded = run_scenario(&scenario).expect("records");
    let bytes = recorded.log.to_bytes();

    // Sweep flips across the whole trace — header, ops, checksum — at a
    // stride, plus the final byte. Every corruption must surface as a
    // typed decode or replay error.
    let mut positions: Vec<usize> = (0..bytes.len()).step_by(97).collect();
    positions.push(bytes.len() - 1);
    for position in positions {
        let mut corrupt = bytes.clone();
        corrupt[position] ^= 0xFF;
        match ReplayLog::from_bytes(&corrupt) {
            Err(_) => {} // typed ReplayError — exactly what we want
            Ok(log) => panic!(
                "flipping byte {position} still decoded a {}-op log",
                log.ops.len()
            ),
        }
    }
}

#[test]
fn foreign_and_misshapen_logs_are_refused() {
    let scenario = twenty_rounds();
    let recorded = run_scenario(&scenario).expect("records");

    // Wrong seed: the log belongs to another scenario.
    let mut foreign = recorded.log.clone();
    foreign.seed ^= 1;
    match replay_scenario(&scenario, &foreign) {
        Err(ScenarioError::Trace { .. }) => {}
        other => panic!("foreign log accepted: {other:?}"),
    }

    // Truncated mid-round: the shape check must catch it.
    let mut truncated = recorded.log.clone();
    truncated.ops.truncate(truncated.ops.len() - 1);
    match replay_scenario(&scenario, &truncated) {
        Err(ScenarioError::Trace { .. }) => {}
        other => panic!("truncated log accepted: {other:?}"),
    }
}
