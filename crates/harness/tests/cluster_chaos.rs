//! Pinned-seed chaos regressions for the three cluster faults.
//!
//! Every campaign here is a pure function of a pinned corpus scenario
//! (fixed seed, fixed bid stream) plus a fixed fault schedule, so a
//! failure reproduces exactly. The contract under attack is the
//! cluster's one theorem: a fault either leaves the outcome bitwise
//! identical to the fault-free run (node loss → failover, duplicate
//! delivery → dedup) or quarantines the round with a typed error and a
//! complete post-mortem (partition) — never a silently divergent
//! outcome.

use mcs_harness::prelude::*;
use mcs_harness::scenario::load;

const BANDS: u32 = 6;
const NODES: u32 = 3;

fn scenario(name: &str) -> Scenario {
    load(name).unwrap_or_else(|error| panic!("corpus scenario {name}: {error}"))
}

/// The node hosting the scenario's first active region — a fault
/// target guaranteed to carry traffic.
fn busy_node(scenario: &Scenario, nodes: u32, bands: u32) -> u32 {
    let topology = scenario_topology(scenario, bands);
    let region = topology
        .active_regions()
        .next()
        .expect("scenario publishes tasks");
    topology.node_of_region(region, nodes)
}

/// A `(nodes, bands, node)` deployment where some node hosts at least
/// two active regions, so losing its primary mid-round forces the
/// failover to happen *within* the round, between two Clear calls.
fn mid_round_target(scenario: &Scenario) -> Option<(u32, u32, u32)> {
    for bands in [4u32, 6, 8] {
        for nodes in [2u32, 3] {
            let topology = scenario_topology(scenario, bands);
            let mut per_node = std::collections::BTreeMap::new();
            for region in topology.active_regions() {
                *per_node
                    .entry(topology.node_of_region(region, nodes))
                    .or_insert(0u32) += 1;
            }
            if let Some((&node, _)) = per_node.iter().find(|(_, &count)| count >= 2) {
                return Some((nodes, bands, node));
            }
        }
    }
    None
}

#[test]
fn node_loss_promotes_the_follower_and_keeps_the_fingerprint() {
    for name in ["calm-baseline", "diurnal-weather"] {
        let scenario = scenario(name);
        let baseline = run_cluster_scenario(&scenario, NODES, BANDS, &FaultPlan::new())
            .expect("fault-free run");
        let target = busy_node(&scenario, NODES, BANDS);
        let mut plan = FaultPlan::new();
        plan.schedule(1, Fault::NodeLoss(target));
        let run = run_cluster_scenario(&scenario, NODES, BANDS, &plan).expect("chaos run");
        assert_eq!(
            run.promoted_nodes(),
            vec![target],
            "{name}: losing node {target}'s primary must promote its follower"
        );
        assert_eq!(
            run.fingerprint, baseline.fingerprint,
            "{name}: failover must not move a single outcome bit"
        );
        assert_eq!(run.outcome.results, baseline.outcome.results);
        assert_eq!(run.outcome.settlements, baseline.outcome.settlements);
        assert_eq!(
            run.outcome.ledger.balances(),
            baseline.outcome.ledger.balances()
        );
        assert_eq!(run.quarantined_rounds(), baseline.quarantined_rounds());
    }
}

#[test]
fn node_loss_mid_round_fails_over_between_clears() {
    // diurnal-weather publishes three tasks, so some deployment packs
    // two active regions onto one node; losing that node's primary
    // after its first Clear forces a same-round promotion.
    let scenario = scenario("diurnal-weather");
    let (nodes, bands, target) =
        mid_round_target(&scenario).expect("some deployment packs two active regions on one node");
    let baseline =
        run_cluster_scenario(&scenario, nodes, bands, &FaultPlan::new()).expect("fault-free run");
    let mut plan = FaultPlan::new();
    plan.schedule(1, Fault::NodeLoss(target));
    let run = run_cluster_scenario(&scenario, nodes, bands, &plan).expect("chaos run");
    assert_eq!(
        run.reports[1].promoted,
        vec![target],
        "the follower must take over within the fault round itself"
    );
    assert!(!run.reports[1].quarantined);
    assert_eq!(run.fingerprint, baseline.fingerprint);
}

#[test]
fn partition_quarantines_with_a_typed_complete_post_mortem() {
    let scenario = scenario("calm-baseline");
    let baseline =
        run_cluster_scenario(&scenario, NODES, BANDS, &FaultPlan::new()).expect("fault-free run");
    let target = busy_node(&scenario, NODES, BANDS);
    let mut plan = FaultPlan::new();
    plan.schedule(1, Fault::NetPartition(target));
    let run = run_cluster_scenario(&scenario, NODES, BANDS, &plan).expect("chaos run");

    assert_eq!(
        run.quarantined_rounds(),
        1,
        "exactly the fault round quarantines"
    );
    assert!(run.reports[1].quarantined);
    assert!(
        run.reports[1].cleared_shards.is_empty(),
        "nothing settles in a quarantined round"
    );
    let quarantine = run
        .outcome
        .quarantines
        .iter()
        .find(|q| q.round == 1)
        .expect("round 1 carries a quarantine record");
    // The post-mortem is complete: typed cause, the dark node, what was
    // unreachable, what was discarded, and the full bid accounting.
    for field in [
        "\"cause\":\"partition\"",
        "\"node\":",
        "\"unreached_regions\"",
        "\"discarded_regions\"",
        "\"accepted_bids\"",
        "\"rejected_bids\"",
        "\"straddlers\"",
    ] {
        assert!(
            quarantine.post_mortem.contains(field),
            "post-mortem missing {field}: {}",
            quarantine.post_mortem
        );
    }
    // The partition heals after its round: every other round still
    // matches the fault-free run's clears, and the ledger only misses
    // the quarantined round's settlements.
    for (round, report) in run.reports.iter().enumerate() {
        if round != 1 {
            assert_eq!(
                report.cleared_shards, baseline.reports[round].cleared_shards,
                "round {round} must clear exactly as the fault-free run"
            );
        }
    }
    assert!(run.outcome.results.keys().all(|&(round, _)| round != 1));
}

#[test]
fn duplicate_delivery_is_deduplicated_bitwise() {
    for name in ["calm-baseline", "flash-crowd"] {
        let scenario = scenario(name);
        let baseline = run_cluster_scenario(&scenario, NODES, BANDS, &FaultPlan::new())
            .expect("fault-free run");
        let mut plan = FaultPlan::new();
        plan.schedule(0, Fault::DuplicateDelivery);
        plan.schedule(1, Fault::DuplicateDelivery);
        plan.schedule(3, Fault::DuplicateDelivery);
        let run = run_cluster_scenario(&scenario, NODES, BANDS, &plan).expect("chaos run");
        assert_eq!(
            run.fingerprint, baseline.fingerprint,
            "{name}: redelivered Clears must hit the idempotency cache"
        );
        assert_eq!(run.outcome.results, baseline.outcome.results);
        assert_eq!(run.outcome.settlements, baseline.outcome.settlements);
        assert_eq!(run.quarantined_rounds(), 0);
        assert!(run.promoted_nodes().is_empty());
    }
}

#[test]
fn every_corpus_scenario_survives_the_pinned_chaos_battery() {
    // One sweep across the whole corpus: each scenario, each fault, the
    // same pinned schedule — the cluster-mode CI tier in miniature.
    for path in mcs_harness::scenario::corpus_paths().expect("scenarios/ exists") {
        let scenario = load(&path.display().to_string()).expect("corpus scenario loads");
        let baseline = run_cluster_scenario(&scenario, NODES, BANDS, &FaultPlan::new())
            .unwrap_or_else(|error| panic!("{}: {error}", scenario.name));
        let target = busy_node(&scenario, NODES, BANDS);

        let mut loss = FaultPlan::new();
        loss.schedule(1, Fault::NodeLoss(target));
        let run = run_cluster_scenario(&scenario, NODES, BANDS, &loss)
            .unwrap_or_else(|error| panic!("{}: {error}", scenario.name));
        assert_eq!(
            run.fingerprint, baseline.fingerprint,
            "{}: node loss",
            scenario.name
        );
        assert_eq!(
            run.promoted_nodes(),
            vec![target],
            "{}: promotion",
            scenario.name
        );

        let mut partition = FaultPlan::new();
        partition.schedule(2, Fault::NetPartition(target));
        let run = run_cluster_scenario(&scenario, NODES, BANDS, &partition)
            .unwrap_or_else(|error| panic!("{}: {error}", scenario.name));
        assert_eq!(run.quarantined_rounds(), 1, "{}: partition", scenario.name);

        let mut duplicate = FaultPlan::new();
        duplicate.schedule(0, Fault::DuplicateDelivery);
        let run = run_cluster_scenario(&scenario, NODES, BANDS, &duplicate)
            .unwrap_or_else(|error| panic!("{}: {error}", scenario.name));
        assert_eq!(
            run.fingerprint, baseline.fingerprint,
            "{}: duplicate",
            scenario.name
        );
    }
}
