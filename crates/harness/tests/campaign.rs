//! Campaign acceptance tests: cross-worker determinism, all-stage fault
//! coverage with pinned plans, and quarantine isolation (a panicking
//! round must not perturb any other round).

use mcs_harness::prelude::*;
use mcs_platform::batch::RoundId;
use mcs_platform::degrade::RoundError;

fn config(seed: u64, rounds: u64, tasks: usize) -> CampaignConfig {
    CampaignConfig {
        seed,
        rounds,
        task_count: tasks,
        ..CampaignConfig::default()
    }
}

#[test]
fn campaigns_are_bitwise_identical_across_worker_and_payment_thread_counts() {
    for tasks in [1, 3] {
        let plan = FaultPlan::generate(11, 24, 0.5);
        let mut base = config(11, 24, tasks);
        // Generated plans may schedule overload faults; keep the trace
        // ring large enough that the trace oracle stays armed.
        base.trace_headroom = plan.trace_headroom(base.rounds);
        let reference = run_campaign(&base, &plan);
        for (workers, payment_threads) in [(1, 1), (4, 2), (3, 5)] {
            let variant = CampaignConfig {
                workers,
                payment_threads,
                ..base.clone()
            };
            let outcome = run_campaign(&variant, &plan);
            assert_eq!(
                outcome.fingerprint(),
                reference.fingerprint(),
                "tasks={tasks} workers={workers} payment_threads={payment_threads}"
            );
            // Not just the digest: the full observable outcome, including
            // the quarantine log, matches bitwise.
            assert_eq!(outcome, reference);
            assert_eq!(outcome.quarantine_log(), reference.quarantine_log());
        }
    }
}

/// Satellite: a round that panics in one shard worker must not perturb
/// results, metrics, or settlement of any other round (pinned seed).
#[test]
fn a_panicking_round_perturbs_nothing_else() {
    let base = config(23, 12, 1);
    let clean = run_campaign(&base, &FaultPlan::new());
    let mut plan = FaultPlan::new();
    plan.schedule(5, Fault::ShardPanic);
    let faulted = run_campaign(&base, &plan);

    assert!(clean.is_clean(), "{:?}", clean.violations);
    assert!(faulted.is_clean(), "{:?}", faulted.violations);

    // No batch faults, so logical round 5 is engine round r5.
    let victim = RoundId(5);
    assert!(clean.results.contains_key(&victim));
    assert!(!faulted.results.contains_key(&victim));
    assert_eq!(faulted.quarantine.len(), 1);
    assert_eq!(faulted.quarantine[0].id, victim);
    assert!(matches!(
        &faulted.quarantine[0].error,
        RoundError::Panicked { message } if message.contains(CHAOS_PREFIX)
    ));

    // Every other round is bitwise untouched: results, settlements,
    // payouts.
    for (id, round) in &clean.results {
        if *id == victim {
            continue;
        }
        assert_eq!(faulted.results.get(id), Some(round), "{id} drifted");
        assert_eq!(
            faulted.settlements.get(id),
            clean.settlements.get(id),
            "{id} settlement drifted"
        );
    }
    assert_eq!(faulted.results.len(), clean.results.len() - 1);

    // The ledger differs by exactly the victim round's settlement.
    let victim_total = clean.settlements[&victim].total;
    assert!(
        ((clean.total_paid - faulted.total_paid) - victim_total).abs() < 1e-9,
        "ledger delta {} != victim settlement {victim_total}",
        clean.total_paid - faulted.total_paid
    );
}

/// A pinned plan exercising every fault stage in one campaign: all eight
/// ingest rejections, batch splits and reorders, shard panics and
/// infeasible rounds, settle-stage flips and a mid-stream rebuild — with
/// every invariant intact.
#[test]
fn pinned_all_stage_campaign_survives_with_invariants_intact() {
    let mut plan = FaultPlan::new();
    plan.schedule(0, Fault::NanCostBid)
        .schedule(1, Fault::NegativeCostBid)
        .schedule(2, Fault::OutOfRangePosBid)
        .schedule(3, Fault::EmptyTaskSetBid)
        .schedule(4, Fault::UnknownTaskBid)
        .schedule(5, Fault::DuplicateTaskBid)
        .schedule(6, Fault::DuplicateUserBid)
        .schedule(7, Fault::OversizedBid)
        // Shard/settle faults come before DelayedTicks: once a round is
        // split by ticks, leftover bids cascade into later rounds, so an
        // InfeasibleRound's lone weak bid would merge with strong
        // leftovers and close feasible.
        .schedule(8, Fault::InfeasibleRound)
        .schedule(9, Fault::ShardPanic)
        .schedule(10, Fault::FlipReports)
        .schedule(11, Fault::ReorderPending)
        .schedule(12, Fault::DelayedTicks(5))
        .schedule(13, Fault::DropAndRebuild);

    let outcome = run_campaign(&config(3, 16, 1), &plan);
    assert!(outcome.is_clean(), "{:?}", outcome.violations);

    // Each of the eight malformed bids was rejected with a typed error,
    // verified identical on the engine and the mirror.
    assert_eq!(outcome.rejections, 8);
    // Both quarantine flavours appeared: the injected worker panic and
    // the engineered infeasible round.
    assert!(outcome
        .quarantine
        .iter()
        .any(|q| matches!(&q.error, RoundError::Panicked { message }
            if message.contains(CHAOS_PREFIX))));
    assert!(outcome
        .quarantine
        .iter()
        .any(|q| matches!(q.error, RoundError::Infeasible { .. })));
    // The checkpoint/drop/rebuild cycle ran.
    assert_eq!(outcome.rebuilds, 1);
    // Shard, settle, and batch faults all armed onto concrete rounds.
    assert!(outcome.faults_armed >= 3);
    // Zero silent drops is implied by is_clean(), but make the coverage
    // arithmetic explicit: every closed round is accounted for.
    assert_eq!(
        outcome.rounds_closed as usize,
        outcome.results.len() + outcome.quarantine.len()
    );
}

/// The same pinned plan over the multi-task mechanism family.
#[test]
fn pinned_all_stage_campaign_runs_clean_multi_task() {
    let mut plan = FaultPlan::new();
    plan.schedule(1, Fault::DuplicateUserBid)
        .schedule(3, Fault::ShardPanic)
        .schedule(5, Fault::InfeasibleRound)
        .schedule(6, Fault::FlipReports)
        .schedule(8, Fault::DelayedTicks(4))
        .schedule(9, Fault::DropAndRebuild);
    let outcome = run_campaign(&config(17, 12, 3), &plan);
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
    assert_eq!(outcome.rebuilds, 1);
    assert!(outcome.quarantine.len() >= 2);
}

/// Flipped reports change payouts but never break settlement/result
/// consistency — and only the flipped round moves.
#[test]
fn flipped_reports_move_only_their_own_round() {
    let base = config(31, 10, 1);
    let clean = run_campaign(&base, &FaultPlan::new());
    let mut plan = FaultPlan::new();
    plan.schedule(4, Fault::FlipReports);
    let flipped = run_campaign(&base, &plan);
    assert!(flipped.is_clean(), "{:?}", flipped.violations);

    let victim = RoundId(4);
    for (user, &report) in &clean.results[&victim].reports {
        assert_eq!(flipped.results[&victim].reports[user], !report);
    }
    for (id, round) in &clean.results {
        if *id != victim {
            assert_eq!(flipped.results.get(id), Some(round));
        }
    }
}

/// Satellite of the overload work: with admission control engaged and
/// every round oversubscribed, campaign fingerprints — including the
/// shed, partial-clear, and backlog counters — stay bitwise identical
/// across worker counts 1/2/8 and payment-thread counts 1/4, for both
/// shedding policies.
#[test]
fn shedding_campaigns_are_bitwise_identical_across_thread_counts() {
    use mcs_platform::config::{AdmissionConfig, SeededUniform, ShedPolicy};

    let policies = [
        ShedPolicy::TailDrop,
        ShedPolicy::SeededUniform(SeededUniform {
            seed: 77,
            rate: 0.4,
        }),
    ];
    for policy in policies {
        let mut plan = FaultPlan::new();
        for round in 0..12 {
            plan.schedule(round, Fault::Oversubscribe(4));
        }
        let mut base = config(19, 12, 1);
        base.bids_per_round = 6;
        base.admission = AdmissionConfig {
            high_watermark: 12,
            low_watermark: 6,
            policy,
            clear_budget: 5,
        };
        base.trace_headroom = plan.trace_headroom(base.rounds);
        let reference = run_campaign(&base, &plan);
        assert!(
            reference.is_clean(),
            "{policy:?}: {:?}",
            reference.violations
        );
        assert!(reference.sheds > 0, "{policy:?} shed nothing at 4x load");
        assert!(
            reference.partial_rounds > 0,
            "{policy:?}: no round tripped the clearing budget"
        );
        assert!(reference.max_backlog <= 12 || !matches!(policy, ShedPolicy::TailDrop));

        for workers in [1usize, 2, 8] {
            for payment_threads in [1usize, 4] {
                let variant = CampaignConfig {
                    workers,
                    payment_threads,
                    ..base.clone()
                };
                let outcome = run_campaign(&variant, &plan);
                assert_eq!(
                    outcome.fingerprint(),
                    reference.fingerprint(),
                    "{policy:?} workers={workers} payment_threads={payment_threads}"
                );
                assert_eq!(outcome, reference);
            }
        }
    }
}
