//! Corpus regression: every shipped scenario carries a pinned
//! `[baseline]` and reproduces it bitwise at every worker ×
//! payment-thread combination — with kernel profiling on for half the
//! matrix, since the profiler must be invisible to fingerprints.
//! Editing a scenario without re-pinning its baseline fails here;
//! shipping a scenario without a baseline fails here too.

use mcs_harness::scenario::{corpus_paths, load, run_scenario_with, RunOptions};

/// The determinism matrix every scenario must hold its fingerprint
/// across: (workers, payment threads, kernel profiling). The pinned
/// baselines were recorded with profiling off, so the profiled cells
/// double as the profiling-changes-nothing check — and the driver holds
/// their drained counters to the conservation laws.
const MATRIX: [(usize, usize, bool); 6] = [
    (1, 1, false),
    (1, 4, true),
    (2, 1, true),
    (2, 4, false),
    (8, 1, false),
    (8, 4, true),
];

#[test]
fn the_corpus_is_complete_pinned_and_worker_count_invariant() {
    let paths = corpus_paths().expect("scenarios/ exists");
    assert!(
        paths.len() >= 5,
        "the corpus must ship at least five scenarios, found {}",
        paths.len()
    );
    for path in paths {
        let scenario = load(&path.display().to_string())
            .unwrap_or_else(|error| panic!("{}: {error}", path.display()));
        let pinned = scenario.baseline.unwrap_or_else(|| {
            panic!(
                "{} ships without a [baseline]; run \
                 `mcs-fuzz --scenario {} --print-baseline` and commit the block",
                path.display(),
                scenario.name
            )
        });
        for (workers, payment_threads, profiling) in MATRIX {
            let outcome = run_scenario_with(
                &scenario,
                &RunOptions {
                    workers: Some(workers),
                    payment_threads: Some(payment_threads),
                    deviate: false,
                    profiling,
                },
            )
            .unwrap_or_else(|error| panic!("{} ({workers}w): {error}", scenario.name));
            assert!(
                outcome.is_clean(),
                "{} ({workers}w/{payment_threads}p): {:?} {:?}",
                scenario.name,
                outcome.violations,
                outcome.campaign_violations
            );
            // Assert the totals directly (not just through the
            // fingerprint) in EVERY cell — profiled cells included —
            // so a profiling-dependent payment drift can never hide
            // behind a hash that happens not to cover its field.
            assert_eq!(
                outcome.payment_total.to_bits(),
                pinned.payment_total_bits,
                "{} ({workers}w/{payment_threads}p profiling={profiling}): \
                 payment total {:?} != pinned {:?}",
                scenario.name,
                outcome.payment_total,
                f64::from_bits(pinned.payment_total_bits)
            );
            assert_eq!(
                outcome.baseline().social_cost_total_bits,
                pinned.social_cost_total_bits,
                "{} ({workers}w/{payment_threads}p profiling={profiling}): \
                 social-cost total drifted",
                scenario.name
            );
            pinned
                .check(&scenario.name, &outcome.baseline())
                .unwrap_or_else(|error| {
                    panic!(
                        "{} at workers={workers} payment_threads={payment_threads} \
                         profiling={profiling}: {error}",
                        scenario.name
                    )
                });
        }
    }
}

#[test]
fn corpus_names_match_their_file_stems() {
    for path in corpus_paths().expect("scenarios/ exists") {
        let scenario = load(&path.display().to_string()).expect("loads");
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("utf-8");
        assert_eq!(
            scenario.name,
            stem,
            "{}: scenario.name must equal the file stem so \
             `mcs-fuzz --scenario <name>` resolves it",
            path.display()
        );
    }
}
