//! The scenario driver: one engine round per logical round, every round
//! oracle-checked, every run traced and bit-exactly replayable.
//!
//! ## Execution truth vs. declared truth
//!
//! The engine draws execution reports from *declared* PoS — it knows
//! nothing else. Scenarios model worlds where the truth differs
//! (regional shocks). The driver closes the gap through the
//! [`FaultInjector`] settle hook: before each round's bids are
//! submitted it stages every bidder's true `p_any` with the injector;
//! the engine's `observe_admitted` ingest hook keys the staged truth to
//! the concrete engine round the bid actually landed in; and at
//! settlement `flip_report` redraws the outcome from the *true*
//! probability on a `(exec seed, round, user)` stream. The redraw runs
//! on the single-threaded drain path, so outcomes stay bitwise
//! identical for any worker count.
//!
//! ## Record and replay
//!
//! Every run records its full drive sequence — every submitted bid
//! (admitted, rejected, or shed), every flush, every drain — into a
//! checksummed [`ReplayLog`]. [`replay_scenario`] feeds the logged bids
//! through a fresh engine under the same scenario; because truth
//! staging is regenerated from the spec and execution redraws key on
//! `(round, user)`, the replay reproduces the original outcome bit for
//! bit: same fingerprint, same settlements, same economics. The run
//! also cross-checks the log against the flight recorder's admitted-bid
//! events, so the trace the recorder tells and the trace the driver
//! recorded can never drift apart silently.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mcs_core::types::{TypeProfile, UserId};
use mcs_obs::replay::{admitted_bids, ReplayBid, ReplayLog, ReplayOp};
use mcs_platform::admission::{Admission, AdmissionController};
use mcs_platform::batch::{Batcher, RoundId};
use mcs_platform::degrade::RoundError;
use mcs_platform::engine::Engine;
use mcs_platform::fault::FaultInjector;
use mcs_platform::ingest::Bid;
use mcs_platform::prelude::EconSnapshot;
use mcs_platform::settle::RoundSettlement;
use mcs_platform::shard::ClearedRound;

use mcs_campaign::prelude::FnBidSource;
use mcs_campaign::runner::{CampaignConfig as LoopConfig, CampaignRunner};

use crate::campaign::Fnv;
use crate::closed_loop::{check_campaign, ClosedLoopViolation};
use crate::oracle::{check_kernel, check_round, OracleConfig, OracleViolation};

use super::arrival::ArrivalCurve;
use super::population::{Deviation, Population, TrueType};
use super::shock::ShockField;
use super::spec::{Baseline, Scenario, ScenarioMode};
use super::{mix, unit, ScenarioError};

/// Domain salt for the execution-redraw stream.
const SALT_EXEC: u64 = 0x4558_4543;

/// Per-run options layered over a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Override the scenario's shard worker count (determinism sweeps).
    pub workers: Option<usize>,
    /// Override the scenario's payment fan-out.
    pub payment_threads: Option<usize>,
    /// Play the `[strategy]` deviations instead of the truthful stream.
    pub deviate: bool,
    /// Drain kernel profiling counters into metrics during the run. The
    /// counters are pure telemetry, so the fingerprint is unchanged;
    /// the driver additionally holds them to their conservation laws
    /// (see [`crate::oracle::check_kernel`]).
    pub profiling: bool,
}

/// Everything one scenario run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Scenario corpus version.
    pub version: u32,
    /// Every cleared round, keyed by engine round id (platform mode).
    pub results: BTreeMap<RoundId, ClearedRound>,
    /// Every settlement, keyed by engine round id (platform mode).
    pub settlements: BTreeMap<RoundId, RoundSettlement>,
    /// Final per-user ledger balances.
    pub balances: BTreeMap<UserId, f64>,
    /// Round-oracle and stream violations (platform mode).
    pub violations: Vec<OracleViolation>,
    /// Closed-loop violations (campaign mode).
    pub campaign_violations: Vec<ClosedLoopViolation>,
    /// Deviations played (deviating runs only).
    pub deviations: Vec<Deviation>,
    /// The recorded drive log (platform mode; empty in campaign mode).
    pub log: ReplayLog,
    /// Bids submitted (admitted + rejected + shed).
    pub bids_submitted: u64,
    /// Bids admitted.
    pub admitted: u64,
    /// Bids shed by admission control.
    pub sheds: u64,
    /// Bids rejected at ingest.
    pub rejections: u64,
    /// Quarantine records (including partial-clear remainders).
    pub quarantined: u64,
    /// Rounds cleared.
    pub rounds_cleared: u64,
    /// Total payments (ledger total, or campaign `total_paid`).
    pub payment_total: f64,
    /// Total social cost over cleared rounds.
    pub social_cost_total: f64,
    /// The engine's economics snapshot (platform mode).
    pub economics: Option<EconSnapshot>,
    /// The closed-loop report fingerprint (campaign mode).
    pub campaign_fingerprint: Option<u64>,
}

impl ScenarioOutcome {
    /// Whether every oracle held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.campaign_violations.is_empty()
    }

    /// An FNV-1a digest over everything observable: name, version,
    /// round results, settlements, balances, counters, and totals.
    /// Bitwise identical for any worker / payment-thread count; pinned
    /// by the corpus baselines.
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = Fnv::new();
        fnv.write_bytes(self.name.as_bytes());
        fnv.write_u64(self.version as u64);
        for (id, round) in &self.results {
            fnv.write_u64(id.0);
            for winner in round.allocation.winners() {
                fnv.write_u64(winner.index() as u64);
            }
            for (user, quote) in &round.quotes {
                fnv.write_u64(user.index() as u64);
                fnv.write_u64(quote.success.to_bits());
                fnv.write_u64(quote.failure.to_bits());
            }
            for (user, &completed) in &round.reports {
                fnv.write_u64(user.index() as u64);
                fnv.write_u64(completed as u64);
            }
            fnv.write_u64(round.social_cost.to_bits());
        }
        for (id, settlement) in &self.settlements {
            fnv.write_u64(id.0);
            for (user, payout) in &settlement.payouts {
                fnv.write_u64(user.index() as u64);
                fnv.write_u64(payout.to_bits());
            }
            fnv.write_u64(settlement.total.to_bits());
        }
        for (user, balance) in &self.balances {
            fnv.write_u64(user.index() as u64);
            fnv.write_u64(balance.to_bits());
        }
        if let Some(campaign) = self.campaign_fingerprint {
            fnv.write_u64(campaign);
        }
        fnv.write_u64(self.bids_submitted);
        fnv.write_u64(self.admitted);
        fnv.write_u64(self.sheds);
        fnv.write_u64(self.rejections);
        fnv.write_u64(self.quarantined);
        fnv.write_u64(self.rounds_cleared);
        fnv.write_u64(self.payment_total.to_bits());
        fnv.write_u64(self.social_cost_total.to_bits());
        fnv.finish()
    }

    /// The observed baseline of this run, comparable against the pinned
    /// `[baseline]` block.
    pub fn baseline(&self) -> Baseline {
        Baseline {
            fingerprint: self.fingerprint(),
            rounds_cleared: self.rounds_cleared,
            bids_submitted: self.bids_submitted,
            admitted: self.admitted,
            sheds: self.sheds,
            rejections: self.rejections,
            quarantined: self.quarantined,
            payment_total_bits: self.payment_total.to_bits(),
            social_cost_total_bits: self.social_cost_total.to_bits(),
        }
    }

    fn empty(scenario: &Scenario) -> ScenarioOutcome {
        ScenarioOutcome {
            name: scenario.name.clone(),
            version: scenario.version,
            results: BTreeMap::new(),
            settlements: BTreeMap::new(),
            balances: BTreeMap::new(),
            violations: Vec::new(),
            campaign_violations: Vec::new(),
            deviations: Vec::new(),
            log: ReplayLog::new(scenario.seed, &scenario.name),
            bids_submitted: 0,
            admitted: 0,
            sheds: 0,
            rejections: 0,
            quarantined: 0,
            rounds_cleared: 0,
            payment_total: 0.0,
            social_cost_total: 0.0,
            economics: None,
            campaign_fingerprint: None,
        }
    }
}

/// The scenario fault injector: stages true types per logical round,
/// keys them onto concrete engine rounds at admission, and redraws
/// every execution report from the *true* probability.
#[derive(Debug)]
struct ScenarioInjector {
    exec_seed: u64,
    /// user → true `p_any` bits for the round being submitted.
    staged: Mutex<BTreeMap<u32, u64>>,
    /// (engine round, user) → true `p_any` bits, pinned at admission.
    truths: Mutex<BTreeMap<(u64, u32), u64>>,
}

impl ScenarioInjector {
    fn new(exec_seed: u64) -> ScenarioInjector {
        ScenarioInjector {
            exec_seed,
            staged: Mutex::new(BTreeMap::new()),
            truths: Mutex::new(BTreeMap::new()),
        }
    }

    fn stage(&self, truths: &BTreeMap<u32, TrueType>) {
        let mut staged = self.staged.lock().expect("injector lock");
        staged.clear();
        for (&user, truth) in truths {
            staged.insert(user, truth.p_any.to_bits());
        }
    }
}

impl FaultInjector for ScenarioInjector {
    fn observe_admitted(&self, round: RoundId, bid: &Bid) {
        if let Some(&bits) = self.staged.lock().expect("injector lock").get(&bid.user) {
            self.truths
                .lock()
                .expect("injector lock")
                .insert((round.0, bid.user), bits);
        }
    }

    fn flip_report(&self, round: RoundId, user: UserId, completed: bool) -> bool {
        let truths = self.truths.lock().expect("injector lock");
        match truths.get(&(round.0, user.index() as u32)) {
            // Redraw from the true probability on a stream keyed only by
            // (round, user): deterministic, worker-count independent,
            // and identical between twin runs — so truthful and
            // deviating twins face the same world.
            Some(&bits) => {
                unit(self.exec_seed, round.0, user.index() as u64) < f64::from_bits(bits)
            }
            None => completed,
        }
    }
}

/// Runs a scenario truthfully with its own engine knobs.
///
/// # Errors
///
/// Propagates [`ScenarioError`]s from campaign-mode setup; platform
/// runs report problems as outcome violations instead.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
    run_scenario_with(scenario, &RunOptions::default())
}

/// Runs a scenario with thread-count overrides and/or live deviations.
///
/// # Errors
///
/// As [`run_scenario`].
pub fn run_scenario_with(
    scenario: &Scenario,
    options: &RunOptions,
) -> Result<ScenarioOutcome, ScenarioError> {
    match scenario.mode {
        ScenarioMode::Platform => run_platform(scenario, options, None),
        ScenarioMode::Campaign => run_campaign_mode(scenario, options),
    }
}

/// Replays a recorded drive log through a fresh engine under the same
/// scenario. The outcome must be bitwise identical to the recording
/// run's — callers assert `fingerprint()` equality.
///
/// # Errors
///
/// [`ScenarioError::Trace`] if the log does not belong to this scenario
/// or has an unreplayable shape.
pub fn replay_scenario(
    scenario: &Scenario,
    log: &ReplayLog,
) -> Result<ScenarioOutcome, ScenarioError> {
    if scenario.mode != ScenarioMode::Platform {
        return Err(ScenarioError::Trace {
            message: "campaign-mode scenarios do not record drive traces".to_string(),
        });
    }
    if log.seed != scenario.seed {
        return Err(ScenarioError::Trace {
            message: format!(
                "log seed {} does not match scenario seed {}",
                log.seed, scenario.seed
            ),
        });
    }
    // Regroup the flat op stream into per-round submissions. Scenario
    // traces are strictly (Submit*, Flush, Drain)* — anything else did
    // not come from this driver.
    let mut rounds: Vec<Vec<Bid>> = Vec::new();
    let mut current: Vec<Bid> = Vec::new();
    let mut awaiting_drain = false;
    for op in &log.ops {
        match op {
            ReplayOp::Submit(bid) if !awaiting_drain => current.push(Bid {
                user: bid.user,
                cost: bid.cost(),
                tasks: bid
                    .tasks
                    .iter()
                    .map(|&(task, bits)| (task, f64::from_bits(bits)))
                    .collect(),
            }),
            ReplayOp::Flush if !awaiting_drain => awaiting_drain = true,
            ReplayOp::Drain if awaiting_drain => {
                rounds.push(std::mem::take(&mut current));
                awaiting_drain = false;
            }
            other => {
                return Err(ScenarioError::Trace {
                    message: format!("unexpected {other:?} in scenario trace"),
                })
            }
        }
    }
    if awaiting_drain || !current.is_empty() {
        return Err(ScenarioError::Trace {
            message: "trace ends mid-round".to_string(),
        });
    }
    if rounds.len() as u64 != scenario.rounds {
        return Err(ScenarioError::Trace {
            message: format!(
                "trace holds {} rounds, scenario runs {}",
                rounds.len(),
                scenario.rounds
            ),
        });
    }
    run_platform(scenario, &RunOptions::default(), Some(rounds))
}

/// The platform-mode driver: generate (or replay) each round's bids,
/// stage truths, submit through a mirrored admission/batch pair, flush,
/// drain, and oracle-check everything.
fn run_platform(
    scenario: &Scenario,
    options: &RunOptions,
    replay_rounds: Option<Vec<Vec<Bid>>>,
) -> Result<ScenarioOutcome, ScenarioError> {
    let mut engine_config = scenario.engine_config();
    if let Some(workers) = options.workers {
        engine_config = engine_config.with_workers(workers);
    }
    if let Some(payment_threads) = options.payment_threads {
        engine_config = engine_config.with_payment_threads(payment_threads);
    }
    if options.profiling {
        engine_config = engine_config.with_profiling(true);
    }
    let tasks = scenario.published_tasks();
    let curve = ArrivalCurve::generate(&scenario.arrival, scenario.seed, scenario.rounds);
    let field = scenario
        .shocks
        .as_ref()
        .map(|spec| ShockField::generate(spec, scenario.seed, scenario.rounds));
    let population = Population::new(scenario, &curve, field.as_ref());
    let oracle = OracleConfig::default();

    let injector = Arc::new(ScenarioInjector::new(mix(scenario.seed, SALT_EXEC, 0)));
    let mut engine = Engine::with_injector(engine_config, tasks.clone(), injector.clone());
    let mut mirror = Batcher::new(engine_config.batch, tasks);
    let mut admission = AdmissionController::new(engine_config.admission);
    let mut mirror_pending = 0usize;
    let mut profiles: BTreeMap<RoundId, TypeProfile> = BTreeMap::new();
    let mut admitted_log: Vec<ReplayBid> = Vec::new();
    let mut outcome = ScenarioOutcome::empty(scenario);
    let mut absorbed_quarantine = 0usize;
    let replaying = replay_rounds.is_some();

    for round in 0..scenario.rounds {
        let generated = population.round(round, options.deviate && !replaying);
        injector.stage(&generated.truths);
        let bids: &[Bid] = match &replay_rounds {
            Some(rounds) => &rounds[round as usize],
            None => &generated.bids,
        };
        let mut pending_deviation = generated.deviation.filter(|_| !replaying);

        for bid in bids {
            outcome.log.push(ReplayOp::Submit(replay_bid(bid)));
            outcome.bids_submitted += 1;
            let backlog = mirror.pending_bids() + mirror_pending;
            let (_, predicted) = admission.admit(backlog);
            let engine_side = engine.submit(bid);
            if let Admission::Shed(reason) = predicted {
                match engine_side {
                    Ok(Admission::Shed(_)) => outcome.sheds += 1,
                    other => outcome.violations.push(OracleViolation::ShedUnaccounted {
                        detail: format!(
                            "round {round} user u{}: mirror shed ({reason}) \
                             but engine returned {other:?}",
                            bid.user
                        ),
                    }),
                }
                continue;
            }
            let mirror_side = mirror.submit(bid);
            match (engine_side, mirror_side) {
                (Ok(Admission::Admitted), Ok(closed)) => {
                    outcome.admitted += 1;
                    admitted_log.push(replay_bid(bid));
                    if let Some(closed_round) = closed {
                        mirror_pending += closed_round.profile.user_count();
                        profiles.insert(closed_round.id, closed_round.profile);
                    }
                }
                (Err(engine_error), Err(mirror_error))
                    if engine_error.to_string() == mirror_error.to_string() =>
                {
                    outcome.rejections += 1;
                }
                (engine_side, mirror_side) => {
                    outcome.violations.push(OracleViolation::StreamDesync {
                        detail: format!(
                            "round {round} user u{}: engine {engine_side:?} vs mirror {:?}",
                            bid.user,
                            mirror_side.map(|r| r.map(|closed_round| closed_round.id))
                        ),
                    });
                }
            }
        }

        outcome.log.push(ReplayOp::Flush);
        engine.flush();
        if let Some(closed_round) = mirror.flush() {
            // Pin the played deviation to the engine round it actually
            // ran in, so the SP oracle looks up the right quotes even
            // if shedding ever desynchronised logical and engine
            // rounds.
            if let Some(mut deviation) = pending_deviation.take() {
                deviation.round = closed_round.id.0;
                outcome.deviations.push(deviation);
            }
            profiles.insert(closed_round.id, closed_round.profile);
        }
        outcome.log.push(ReplayOp::Drain);
        engine.drain();
        mirror_pending = 0;
        absorb(
            &oracle,
            &engine,
            &profiles,
            &mut outcome,
            &mut absorbed_quarantine,
        );
    }

    // Stream synchronisation: identical drive sequences must leave the
    // engine and the mirror agreeing on the next round id.
    let engine_next = engine.checkpoint().next_round_id;
    if engine_next != mirror.next_round_id() {
        outcome.violations.push(OracleViolation::StreamDesync {
            detail: format!(
                "engine next round id {engine_next} != mirror {}",
                mirror.next_round_id()
            ),
        });
    }

    // Zero silent drops: every mirrored round cleared or quarantined.
    for &id in profiles.keys() {
        let cleared = outcome.results.contains_key(&id);
        let quarantined = engine.quarantine().iter().any(|q| q.id == id);
        if !cleared && !quarantined {
            outcome
                .violations
                .push(OracleViolation::SilentDrop { round: id });
        }
    }

    // The recorder's story must match the driver's: every admitted bid
    // reconstructs from the trace, in order, bit for bit.
    let recorder = engine.recorder();
    if recorder.capacity() > 0 && !recorder.wrapped() {
        let traced = admitted_bids(&recorder.snapshot());
        if traced != admitted_log {
            outcome.violations.push(OracleViolation::StreamDesync {
                detail: format!(
                    "flight recorder reconstructs {} admitted bids, driver recorded {}",
                    traced.len(),
                    admitted_log.len()
                ),
            });
        }
    }

    // Ledger conservation: balances equal summed payouts.
    let ledger = engine.ledger();
    let mut expected_total = 0.0;
    for settlement in outcome.settlements.values() {
        expected_total += settlement.total;
    }
    if (ledger.total_paid() - expected_total).abs() > 1e-9 {
        outcome.violations.push(OracleViolation::LedgerDrift {
            detail: format!(
                "ledger total {} != summed settlements {expected_total}",
                ledger.total_paid()
            ),
        });
    }

    let snapshot = engine.metrics().snapshot();
    // With profiling on, the drained kernel counters must satisfy their
    // conservation laws; with it off they must all be zero (nothing may
    // leak into metrics without the flag).
    if engine_config.profiling {
        outcome.violations.extend(check_kernel(&snapshot.kernel));
    } else if snapshot.kernel != Default::default() {
        outcome.violations.push(OracleViolation::KernelUnbalanced {
            detail: format!(
                "profiling is off but kernel counters drained anyway: {:?}",
                snapshot.kernel
            ),
        });
    }
    outcome.balances = ledger.balances().clone();
    outcome.payment_total = ledger.total_paid();
    outcome.social_cost_total = snapshot.economics.social_cost_total;
    outcome.rounds_cleared = outcome.results.len() as u64;
    outcome.economics = Some(snapshot.economics);
    Ok(outcome)
}

fn replay_bid(bid: &Bid) -> ReplayBid {
    ReplayBid {
        user: bid.user,
        cost_bits: bid.cost.to_bits(),
        tasks: bid
            .tasks
            .iter()
            .map(|&(task, pos)| (task, pos.to_bits()))
            .collect(),
    }
}

/// Copies newly produced engine results into the outcome, oracle-checking
/// each cleared round against its mirrored profile (partial clears check
/// the admitted prefix, as in [`crate::campaign`]).
fn absorb(
    oracle: &OracleConfig,
    engine: &Engine,
    profiles: &BTreeMap<RoundId, TypeProfile>,
    outcome: &mut ScenarioOutcome,
    absorbed_quarantine: &mut usize,
) {
    let engine_config = engine.config();
    for (&id, round) in engine.results() {
        if outcome.results.contains_key(&id) {
            continue;
        }
        let settlement = &engine.settlements()[&id];
        match profiles.get(&id) {
            Some(profile) => {
                let budget = engine_config.admission.clear_budget;
                let full_count = profile.user_count();
                let prefix;
                let checked = if budget > 0 && full_count > budget {
                    prefix = TypeProfile::new(
                        profile.users()[..budget].to_vec(),
                        profile.tasks().to_vec(),
                    )
                    .expect("a prefix of a valid profile is a valid profile");
                    let deferred = full_count - budget;
                    let accounted = engine.quarantine().iter().any(|q| {
                        q.id == id
                            && q.bidders == deferred
                            && matches!(q.error, RoundError::DeadlineExceeded {
                                budget: b, cleared, deferred: d,
                            } if b == budget && cleared == budget && d == deferred)
                    });
                    if !accounted {
                        outcome.violations.push(OracleViolation::ShedUnaccounted {
                            detail: format!(
                                "{id}: cleared {budget} of {full_count} bidders but the \
                                 {deferred} deferred are not quarantined as DeadlineExceeded"
                            ),
                        });
                    }
                    &prefix
                } else {
                    profile
                };
                outcome.violations.extend(check_round(
                    oracle,
                    checked,
                    round,
                    settlement,
                    engine_config,
                ));
            }
            None => outcome.violations.push(OracleViolation::StreamDesync {
                detail: format!("{id} cleared but was never mirrored"),
            }),
        }
        outcome.results.insert(id, round.clone());
        outcome.settlements.insert(id, settlement.clone());
    }
    outcome.quarantined += (engine.quarantine().len() - *absorbed_quarantine) as u64;
    *absorbed_quarantine = engine.quarantine().len();
}

/// The campaign-mode driver: the scenario population becomes the bid
/// source of a closed-loop campaign, and the closed-loop oracles check
/// the report.
fn run_campaign_mode(
    scenario: &Scenario,
    options: &RunOptions,
) -> Result<ScenarioOutcome, ScenarioError> {
    let campaign_spec = scenario
        .campaign
        .as_ref()
        .expect("validated: campaign mode carries a [campaign] section");
    let mut engine_config = scenario.engine_config();
    if let Some(workers) = options.workers {
        engine_config = engine_config.with_workers(workers);
    }
    if let Some(payment_threads) = options.payment_threads {
        engine_config = engine_config.with_payment_threads(payment_threads);
    }
    if options.profiling {
        engine_config = engine_config.with_profiling(true);
    }
    // The population must cover every campaign round (initial +
    // residual re-auctions), whatever the scenario horizon says.
    let horizon = scenario.rounds.max(campaign_spec.max_rounds);
    let curve = ArrivalCurve::generate(&scenario.arrival, scenario.seed, horizon);
    let field = scenario
        .shocks
        .as_ref()
        .map(|spec| ShockField::generate(spec, scenario.seed, horizon));
    let population = Population::new(scenario, &curve, field.as_ref());

    let mut config = LoopConfig::new(
        engine_config,
        scenario.published_tasks(),
        campaign_spec.max_rounds,
    );
    config.failure_rate = campaign_spec.failure_rate;
    config.failure_seed = scenario.seed;
    let budget = config.round_budget();

    let mut source = FnBidSource::new("scenario", |round, open_tasks: &[mcs_core::types::Task]| {
        let generated = population.round(round, false);
        generated
            .bids
            .into_iter()
            .map(|mut bid| {
                bid.tasks.retain(|&(task, _)| {
                    open_tasks
                        .iter()
                        .any(|open| open.id().index() as u32 == task)
                });
                bid
            })
            .collect()
    });
    let runner = CampaignRunner::new(config);
    let report = runner.run(&mut source);

    let mut outcome = ScenarioOutcome::empty(scenario);
    outcome.campaign_violations = check_campaign(&report, budget);
    for record in &report.rounds {
        outcome.bids_submitted += record.bids_offered as u64;
        outcome.admitted += record.bids_submitted as u64;
        outcome.quarantined += record.quarantined as u64;
    }
    outcome.rounds_cleared = report.rounds_run();
    outcome.payment_total = report.total_paid;
    outcome.social_cost_total = report.total_social_cost;
    outcome.balances = report.balances.clone();
    outcome.campaign_fingerprint = Some(report.fingerprint());
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::super::spec::tests_support::minimal_scenario;
    use super::*;

    #[test]
    fn minimal_scenarios_run_clean_and_reproducibly() {
        let scenario = minimal_scenario();
        let a = run_scenario(&scenario).expect("runs");
        let b = run_scenario(&scenario).expect("runs");
        assert!(a.is_clean(), "{:?}", a.violations);
        assert_eq!(a.rounds_cleared, scenario.rounds);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert!(a.payment_total > 0.0);
        assert_eq!(a.log.submit_count() as u64, a.bids_submitted);
    }

    #[test]
    fn worker_counts_never_change_the_fingerprint() {
        let scenario = minimal_scenario();
        let base = run_scenario(&scenario).expect("runs");
        for (workers, payment_threads) in [(1, 1), (2, 4), (8, 2)] {
            let other = run_scenario_with(
                &scenario,
                &RunOptions {
                    workers: Some(workers),
                    payment_threads: Some(payment_threads),
                    deviate: false,
                    profiling: true,
                },
            )
            .expect("runs");
            assert_eq!(base.fingerprint(), other.fingerprint(), "{workers}w");
        }
    }

    #[test]
    fn recorded_logs_replay_bitwise() {
        let scenario = minimal_scenario();
        let recorded = run_scenario(&scenario).expect("runs");
        let replayed = replay_scenario(&scenario, &recorded.log).expect("replays");
        assert_eq!(recorded.fingerprint(), replayed.fingerprint());
        assert_eq!(recorded.results, replayed.results);
        assert_eq!(recorded.settlements, replayed.settlements);
        assert_eq!(recorded.economics, replayed.economics);
        assert_eq!(recorded.log, replayed.log);
    }

    #[test]
    fn foreign_logs_are_refused_with_typed_errors() {
        let scenario = minimal_scenario();
        let wrong_seed = ReplayLog::new(scenario.seed + 1, &scenario.name);
        assert!(matches!(
            replay_scenario(&scenario, &wrong_seed),
            Err(ScenarioError::Trace { .. })
        ));
        let mut truncated = run_scenario(&scenario).expect("runs").log;
        truncated.ops.pop();
        assert!(matches!(
            replay_scenario(&scenario, &truncated),
            Err(ScenarioError::Trace { .. })
        ));
    }
}
