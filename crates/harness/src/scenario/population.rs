//! Scenario bidder populations: truthful draws, shocked truths, and
//! live strategic deviations.
//!
//! Every round's bids are a pure function of `(scenario, round)`:
//!
//! * The arrival curve picks how many **base** users bid (`u0..n`, a
//!   prefix of the stable id space) and how many **burst** users join
//!   (fresh ids from [`BURST_USER_BASE`], allocated by prefix sum so no
//!   id ever repeats).
//! * Each bidder draws a cost and a per-task PoS from the population
//!   ranges, keyed on `(seed, round, user, task)`.
//! * The *declared* bid is the truthful draw. The *true type* tracked
//!   alongside differs in exactly one way: correlated shocks multiply
//!   the true per-task PoS for users homed in a shocked region. Bidders
//!   do not know the weather, so the declaration stays unshocked.
//! * In a deviating run, at most **one** bidder per round — the
//!   deviator pool takes turns — scales her *declared* PoS vector by a
//!   factor from the systematic
//!   [`misreport_factor_grid`](mcs_core::analysis::misreport_factor_grid),
//!   mirroring the offline
//!   [`check_strategy_proofness`](mcs_core::analysis::check_strategy_proofness)
//!   semantics (contributions scale, cost stays truthful). One deviator
//!   per round keeps every comparison unilateral, which is what the SP
//!   theorem actually promises.

use std::collections::BTreeMap;

use mcs_core::analysis::misreport_factor_grid;
use mcs_core::types::{Contribution, Pos};
use mcs_platform::ingest::Bid;

use super::arrival::{ArrivalCurve, BURST_USER_BASE};
use super::shock::ShockField;
use super::spec::Scenario;
use super::unit;

/// Domain salts for the independent population draws.
const SALT_COST: u64 = 0x434f_5354;
const SALT_POS: u64 = 0x504f_5349;

/// Declared PoS cap after deviation scaling: over-reports clamp here,
/// comfortably inside the platform's `[0, 1)` ingest range.
const POS_CAP: f64 = 0.95;

/// A bidder's true type for one round: her cost and her *actual*
/// (shock-adjusted) probability of completing any declared task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrueType {
    /// True cost (costs are never shocked or misreported here).
    pub cost: f64,
    /// True `p_any` after regional shocks: the probability the engine's
    /// redrawn execution report comes back `completed`.
    pub p_any: f64,
}

/// One applied deviation, recorded for the online SP oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deviation {
    /// Logical round the deviation was played in (also the engine round
    /// id when the run stays one-round-per-round).
    pub round: u64,
    /// The deviating user.
    pub user: u32,
    /// The contribution scaling factor from the misreport grid.
    pub factor: f64,
    /// Her true cost.
    pub true_cost: f64,
    /// Her *believed* true `p_any` — the unshocked truthful declaration,
    /// which is the type the SP guarantee quantifies over. (Shocks are
    /// environment, not type: a bidder cannot condition her report on
    /// weather she cannot observe.)
    pub believed_any: f64,
}

/// One round's generated population.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPopulation {
    /// Declared bids, in submission order (base users then burst users).
    pub bids: Vec<Bid>,
    /// Per-user true types (keyed by raw user id).
    pub truths: BTreeMap<u32, TrueType>,
    /// The deviation applied this round, if this is a deviating run.
    pub deviation: Option<Deviation>,
}

/// A scenario's bidder population: a pure per-round generator.
#[derive(Debug)]
pub struct Population<'a> {
    scenario: &'a Scenario,
    curve: &'a ArrivalCurve,
    shocks: Option<&'a ShockField>,
    factors: Vec<f64>,
}

impl<'a> Population<'a> {
    /// A population over `scenario` with its materialised arrival curve
    /// and (optional) shock field.
    pub fn new(
        scenario: &'a Scenario,
        curve: &'a ArrivalCurve,
        shocks: Option<&'a ShockField>,
    ) -> Population<'a> {
        let factors = scenario
            .strategy
            .as_ref()
            .map(|s| misreport_factor_grid(&s.epsilons))
            .unwrap_or_default();
        Population {
            scenario,
            curve,
            shocks,
            factors,
        }
    }

    /// The misreport factor grid this population sweeps when deviating.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Generates round `round`. With `deviate` set (and a `[strategy]`
    /// section present), the round's scheduled deviator misreports.
    pub fn round(&self, round: u64, deviate: bool) -> RoundPopulation {
        let seed = self.scenario.seed;
        let tasks = self.scenario.tasks.count as u32;
        let (cost_lo, cost_hi) = (
            self.scenario.population.cost_min,
            self.scenario.population.cost_max,
        );
        let (pos_lo, pos_hi) = (
            self.scenario.population.pos_min,
            self.scenario.population.pos_max,
        );

        let mut bids = Vec::new();
        let mut truths = BTreeMap::new();
        let mut users: Vec<u32> = (0..self.curve.base_count(round)).collect();
        let burst_offset = self.curve.burst_offset(round);
        for k in 0..self.curve.burst_count(round) as u64 {
            users.push(BURST_USER_BASE + (burst_offset + k) as u32);
        }

        let mut deviation = None;
        let deviator = match (&self.scenario.strategy, deviate) {
            (Some(strategy), true) if !self.factors.is_empty() => {
                let pool = strategy.deviators as u64;
                let user = (round % pool) as u32;
                let factor = self.factors[((round / pool) % self.factors.len() as u64) as usize];
                Some((user, factor))
            }
            _ => None,
        };

        for user in users {
            let key = round.wrapping_mul(0x1_0000).wrapping_add(user as u64);
            let cost = cost_lo + (cost_hi - cost_lo) * unit(seed ^ SALT_COST, key, 0);
            let mut declared: Vec<(u32, f64)> = Vec::with_capacity(tasks as usize);
            let mut miss_all = 1.0;
            let mut believed_miss_all = 1.0;
            for task in 0..tasks {
                let pos = pos_lo + (pos_hi - pos_lo) * unit(seed ^ SALT_POS, key, task as u64);
                let true_pos = match self.shocks {
                    Some(field) => field.shocked(round, user, pos),
                    None => pos,
                };
                miss_all *= 1.0 - true_pos;
                believed_miss_all *= 1.0 - pos;
                declared.push((task, pos));
            }
            truths.insert(
                user,
                TrueType {
                    cost,
                    p_any: 1.0 - miss_all,
                },
            );
            if let Some((deviating_user, factor)) = deviator {
                if user == deviating_user {
                    // Scale in CONTRIBUTION space (p ← 1 − (1−p)^factor),
                    // bit-for-bit the way `UserType::with_scaled_contributions`
                    // does — the misreport family the mechanism's
                    // strategy-proofness theorem (and the offline
                    // `misreport_factor_grid` checks) quantify over.
                    // Scaling raw p instead changes the declaration's
                    // *shape* in contribution space, which the greedy
                    // critical value is legitimately sensitive to.
                    for entry in &mut declared {
                        let scaled = Pos::saturating(entry.1).contribution().value() * factor;
                        entry.1 = Contribution::new(scaled)
                            .map(Contribution::pos)
                            .unwrap_or(Pos::MAX)
                            .value()
                            .min(POS_CAP);
                    }
                    deviation = Some(Deviation {
                        round,
                        user,
                        factor,
                        true_cost: cost,
                        believed_any: 1.0 - believed_miss_all,
                    });
                }
            }
            bids.push(Bid {
                user,
                cost,
                tasks: declared,
            });
        }

        RoundPopulation {
            bids,
            truths,
            deviation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::spec::ScenarioMode;
    use super::super::spec::{ArrivalSpec, EngineSpec, PopulationSpec, StrategySpec, TaskSpec};
    use super::*;

    fn scenario(strategy: Option<StrategySpec>) -> Scenario {
        Scenario {
            name: "unit".into(),
            version: 1,
            seed: 11,
            rounds: 6,
            mode: ScenarioMode::Platform,
            tasks: TaskSpec {
                count: 2,
                requirement: 0.6,
            },
            population: PopulationSpec {
                users: 16,
                cost_min: 1.0,
                cost_max: 3.0,
                pos_min: 0.35,
                pos_max: 0.8,
            },
            arrival: ArrivalSpec {
                base: 6.0,
                amplitude: 0.25,
                period: 6,
                phase: 0.0,
                bursts: 1,
                burst_mass: 4,
                burst_width: 2,
            },
            shocks: None,
            strategy,
            engine: EngineSpec::default(),
            admission: None,
            campaign: None,
            baseline: None,
        }
    }

    #[test]
    fn rounds_are_pure_and_ids_never_collide() {
        let sc = scenario(None);
        let curve = ArrivalCurve::generate(&sc.arrival, sc.seed, sc.rounds);
        let population = Population::new(&sc, &curve, None);
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..sc.rounds {
            let a = population.round(round, false);
            let b = population.round(round, false);
            assert_eq!(a, b);
            assert_eq!(a.bids.len(), curve.count(round) as usize);
            for bid in &a.bids {
                assert!(bid.cost >= 1.0 && bid.cost < 3.0);
                assert_eq!(bid.tasks.len(), 2);
                for &(_, pos) in &bid.tasks {
                    assert!((0.35..0.8).contains(&pos));
                }
                if bid.user >= BURST_USER_BASE {
                    // Burst ids must be globally fresh.
                    assert!(seen.insert(bid.user), "burst id {} repeated", bid.user);
                }
                let truth = a.truths[&bid.user];
                assert_eq!(truth.cost, bid.cost);
                assert!((0.0..1.0).contains(&truth.p_any));
            }
        }
    }

    #[test]
    fn truthful_runs_declare_their_true_types() {
        let sc = scenario(None);
        let curve = ArrivalCurve::generate(&sc.arrival, sc.seed, sc.rounds);
        let population = Population::new(&sc, &curve, None);
        let round = population.round(2, false);
        for bid in &round.bids {
            let p_any = 1.0 - bid.tasks.iter().map(|&(_, pos)| 1.0 - pos).product::<f64>();
            assert_eq!(round.truths[&bid.user].p_any.to_bits(), p_any.to_bits());
        }
    }

    #[test]
    fn exactly_one_unilateral_deviation_per_round() {
        let strategy = StrategySpec {
            epsilons: vec![0.5, 0.1],
            deviators: 3,
        };
        let sc = scenario(Some(strategy));
        let curve = ArrivalCurve::generate(&sc.arrival, sc.seed, sc.rounds);
        let population = Population::new(&sc, &curve, None);
        assert_eq!(population.factors(), &[0.0, 0.5, 0.9, 1.1, 1.5]);
        for round in 0..sc.rounds {
            let truthful = population.round(round, false);
            let deviating = population.round(round, true);
            let deviation = deviating.deviation.expect("scheduled every round");
            assert_eq!(deviation.user, (round % 3) as u32);
            assert!(population.factors().contains(&deviation.factor));
            // Truths never change under deviation.
            assert_eq!(truthful.truths, deviating.truths);
            let mut differing = 0;
            for (t, d) in truthful.bids.iter().zip(&deviating.bids) {
                assert_eq!(t.user, d.user);
                assert_eq!(t.cost, d.cost, "costs stay truthful");
                if t.tasks != d.tasks {
                    differing += 1;
                    assert_eq!(d.user, deviation.user);
                    for (&(_, truthful_pos), &(_, declared_pos)) in t.tasks.iter().zip(&d.tasks) {
                        // Bit-identical to with_scaled_contributions.
                        let expected =
                            Pos::saturating(truthful_pos).contribution().value() * deviation.factor;
                        let expected = Contribution::new(expected)
                            .map(Contribution::pos)
                            .unwrap_or(Pos::MAX)
                            .value()
                            .min(POS_CAP);
                        assert_eq!(declared_pos.to_bits(), expected.to_bits());
                    }
                }
            }
            assert!(differing <= 1, "deviation must stay unilateral");
        }
    }

    #[test]
    fn shocked_truths_diverge_from_declarations_only_under_weather() {
        use super::super::spec::ShockSpec;
        let mut sc = scenario(None);
        sc.shocks = Some(ShockSpec {
            grid_width: 4,
            grid_height: 4,
            count: 6,
            multiplier_min: 0.1,
            multiplier_max: 0.5,
            duration_min: 3,
            duration_max: 6,
            region_width: 3,
            region_height: 3,
        });
        let curve = ArrivalCurve::generate(&sc.arrival, sc.seed, sc.rounds);
        let field = ShockField::generate(sc.shocks.as_ref().unwrap(), sc.seed, sc.rounds);
        let population = Population::new(&sc, &curve, Some(&field));
        let mut shocked_somewhere = false;
        for round in 0..sc.rounds {
            let generated = population.round(round, false);
            for bid in &generated.bids {
                let declared_any =
                    1.0 - bid.tasks.iter().map(|&(_, pos)| 1.0 - pos).product::<f64>();
                let truth = generated.truths[&bid.user];
                assert!(truth.p_any <= declared_any + 1e-12);
                if truth.p_any < declared_any - 1e-12 {
                    shocked_somewhere = true;
                    assert!(field.multiplier(round, field.home_cell(bid.user)) < 1.0);
                }
            }
        }
        assert!(shocked_somewhere, "this seed should shock someone");
    }
}
