//! A minimal TOML-subset parser for scenario files.
//!
//! The repository vendors a JSON-oriented `serde` stand-in and bakes in
//! no TOML crate, so the scenario corpus parses its own dialect — the
//! subset of TOML a pinned-seed scenario actually needs:
//!
//! * `#` line and trailing comments (quote-aware);
//! * `[table]` and `[dotted.table]` headers;
//! * `key = value` with bare or dotted keys;
//! * basic `"strings"` with `\" \\ \n \t` escapes;
//! * integers (decimal with `_` separators, or `0x…` hex, parsed
//!   unsigned — the natural spelling for pinned fingerprints and f64
//!   bit patterns);
//! * floats, booleans, and single-line `[a, b, c]` arrays.
//!
//! Output is the vendored [`serde::Value`] tree (tables become ordered
//! maps), so the schema layer in [`super::spec`] shares one value
//! vocabulary with the JSON side of the repository. Every diagnostic is
//! a typed [`TomlError`] carrying the 1-based source line.

use std::fmt;

use serde::Value;

/// A parse failure, attributed to its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number of the offending input.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl TomlError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TomlError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Parses a scenario TOML document into a [`Value::Map`] tree.
///
/// # Errors
///
/// A [`TomlError`] naming the first offending line.
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    let mut current_path: Vec<String> = Vec::new();
    for (index, raw_line) in input.lines().enumerate() {
        let line_no = index + 1;
        let line = strip_comment(raw_line, line_no)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| TomlError::new(line_no, "unterminated table header"))?
                .trim();
            let path = parse_key_path(inner, line_no)?;
            // Opening the same table twice would silently merge keys;
            // TOML forbids it and so do we.
            if table_exists(&root, &path) {
                return Err(TomlError::new(
                    line_no,
                    format!("duplicate table [{}]", path.join(".")),
                ));
            }
            table_mut(&mut root, &path, line_no)?;
            current_path = path;
            continue;
        }
        let eq = find_unquoted(line, '=')
            .ok_or_else(|| TomlError::new(line_no, "expected `key = value`"))?;
        let key_part = line[..eq].trim();
        let value_part = line[eq + 1..].trim();
        let key_path = parse_key_path(key_part, line_no)?;
        let (leaf, parents) = key_path
            .split_last()
            .ok_or_else(|| TomlError::new(line_no, "empty key"))?;
        let value = parse_value(value_part, line_no)?;
        let mut full_parent = current_path.clone();
        full_parent.extend(parents.iter().cloned());
        let table = table_mut(&mut root, &full_parent, line_no)?;
        if table.iter().any(|(k, _)| k == leaf) {
            return Err(TomlError::new(line_no, format!("duplicate key {leaf:?}")));
        }
        table.push((leaf.clone(), value));
    }
    Ok(Value::Map(root))
}

/// Removes a `#` comment, ignoring `#` inside basic strings.
fn strip_comment(line: &str, line_no: usize) -> Result<&str, TomlError> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
        } else if ch == '"' {
            in_string = true;
        } else if ch == '#' {
            return Ok(&line[..i]);
        }
    }
    if in_string {
        return Err(TomlError::new(line_no, "unterminated string"));
    }
    Ok(line)
}

/// The byte offset of the first `needle` outside any string, if any.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
        } else if ch == '"' {
            in_string = true;
        } else if ch == needle {
            return Some(i);
        }
    }
    None
}

/// Splits a bare or dotted key into validated segments.
fn parse_key_path(input: &str, line_no: usize) -> Result<Vec<String>, TomlError> {
    if input.is_empty() {
        return Err(TomlError::new(line_no, "empty key"));
    }
    input
        .split('.')
        .map(|segment| {
            let segment = segment.trim();
            let bare = !segment.is_empty()
                && segment
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
            if bare {
                Ok(segment.to_string())
            } else {
                Err(TomlError::new(
                    line_no,
                    format!("invalid key segment {segment:?} (bare keys only)"),
                ))
            }
        })
        .collect()
}

/// Whether `path` already names an explicit or implicit table.
fn table_exists(root: &[(String, Value)], path: &[String]) -> bool {
    let mut current = root;
    for segment in path {
        match current.iter().find(|(k, _)| k == segment) {
            Some((_, Value::Map(inner))) => current = inner,
            _ => return false,
        }
    }
    true
}

/// Navigates (creating as needed) to the table at `path`.
fn table_mut<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    line_no: usize,
) -> Result<&'a mut Vec<(String, Value)>, TomlError> {
    let mut current = root;
    for segment in path {
        let position = current.iter().position(|(k, _)| k == segment);
        let index = match position {
            Some(i) => i,
            None => {
                current.push((segment.clone(), Value::Map(Vec::new())));
                current.len() - 1
            }
        };
        current = match &mut current[index].1 {
            Value::Map(inner) => inner,
            _ => {
                return Err(TomlError::new(
                    line_no,
                    format!("{segment:?} is a value, not a table"),
                ))
            }
        };
    }
    Ok(current)
}

/// Parses one value token (string, bool, number, or array).
fn parse_value(input: &str, line_no: usize) -> Result<Value, TomlError> {
    if input.is_empty() {
        return Err(TomlError::new(line_no, "missing value"));
    }
    if input.starts_with('"') {
        return parse_string(input, line_no).map(Value::Str);
    }
    if input == "true" {
        return Ok(Value::Bool(true));
    }
    if input == "false" {
        return Ok(Value::Bool(false));
    }
    if input.starts_with('[') {
        let inner = input
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| TomlError::new(line_no, "unterminated array"))?;
        let mut items = Vec::new();
        for element in split_array(inner, line_no)? {
            items.push(parse_value(element.trim(), line_no)?);
        }
        return Ok(Value::Seq(items));
    }
    parse_number(input, line_no)
}

/// Parses a basic string with `\" \\ \n \t` escapes; the token must span
/// the whole input.
fn parse_string(input: &str, line_no: usize) -> Result<String, TomlError> {
    let mut out = String::new();
    let mut chars = input[1..].chars();
    loop {
        match chars.next() {
            None => return Err(TomlError::new(line_no, "unterminated string")),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(TomlError::new(
                        line_no,
                        format!("unsupported escape {other:?}"),
                    ))
                }
            },
            Some(ch) => out.push(ch),
        }
    }
    if chars.next().is_some() {
        return Err(TomlError::new(line_no, "trailing input after string"));
    }
    Ok(out)
}

/// Splits a single-line array body on top-level commas, respecting
/// strings and nested brackets. A trailing comma is allowed.
fn split_array(inner: &str, line_no: usize) -> Result<Vec<&str>, TomlError> {
    let mut elements = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, ch) in inner.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '[' => depth += 1,
            ']' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| TomlError::new(line_no, "unbalanced brackets"))?
            }
            ',' if depth == 0 => {
                elements.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err(TomlError::new(line_no, "unterminated array"));
    }
    let tail = &inner[start..];
    if !tail.trim().is_empty() {
        elements.push(tail);
    }
    Ok(elements)
}

/// Parses an integer (decimal or `0x…` hex, `_` separators) or float.
fn parse_number(input: &str, line_no: usize) -> Result<Value, TomlError> {
    let cleaned: String = input.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        return u64::from_str_radix(hex, 16)
            .map(Value::U64)
            .map_err(|_| TomlError::new(line_no, format!("invalid hex integer {input:?}")));
    }
    let looks_float = cleaned.contains(['.', 'e', 'E']);
    if !looks_float {
        if let Ok(value) = cleaned.parse::<u64>() {
            return Ok(Value::U64(value));
        }
        if let Ok(value) = cleaned.parse::<i64>() {
            return Ok(Value::I64(value));
        }
    }
    if let Ok(value) = cleaned.parse::<f64>() {
        if value.is_finite() {
            return Ok(Value::F64(value));
        }
    }
    Err(TomlError::new(line_no, format!("invalid value {input:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table<'a>(value: &'a Value, key: &str) -> &'a Value {
        let map = value.as_map().expect("map");
        &map.iter().find(|(k, _)| k == key).expect(key).1
    }

    #[test]
    fn tables_keys_and_values_parse() {
        let doc = r#"
# a scenario
[scenario]
name = "diurnal-weather" # trailing comment
seed = 0xDEAD_BEEF
rounds = 12
[arrival]
base = 8.5
amplitude = 0.5
bursts = 2
flags = [true, false]
epsilons = [0.5, 0.1, 0.01]
[a.b]
deep = -3
"#;
        let value = parse(doc).expect("parses");
        let scenario = table(&value, "scenario");
        assert_eq!(
            table(scenario, "name"),
            &Value::Str("diurnal-weather".into())
        );
        assert_eq!(table(scenario, "seed"), &Value::U64(0xDEAD_BEEF));
        assert_eq!(table(scenario, "rounds"), &Value::U64(12));
        let arrival = table(&value, "arrival");
        assert_eq!(table(arrival, "base"), &Value::F64(8.5));
        assert_eq!(
            table(arrival, "flags"),
            &Value::Seq(vec![Value::Bool(true), Value::Bool(false)])
        );
        assert_eq!(
            table(arrival, "epsilons"),
            &Value::Seq(vec![Value::F64(0.5), Value::F64(0.1), Value::F64(0.01)])
        );
        let deep = table(table(&value, "a"), "b");
        assert_eq!(table(deep, "deep"), &Value::I64(-3));
    }

    #[test]
    fn strings_support_escapes_and_hashes() {
        let value = parse("s = \"a # not comment \\\"q\\\" \\n\"").expect("parses");
        assert_eq!(
            table(&value, "s"),
            &Value::Str("a # not comment \"q\" \n".into())
        );
    }

    #[test]
    fn empty_arrays_parse() {
        let value = parse("xs = []").expect("parses");
        assert_eq!(table(&value, "xs"), &Value::Seq(Vec::new()));
    }

    #[test]
    fn errors_carry_the_offending_line() {
        let cases = [
            ("ok = 1\n[broken", 2, "unterminated table"),
            ("x 1", 1, "key = value"),
            ("x = ", 1, "missing value"),
            ("x = \"abc", 1, "unterminated string"),
            ("x = zebra", 1, "invalid value"),
            ("x = 1\nx = 2", 2, "duplicate key"),
            ("[a]\nk = 1\n[a]", 3, "duplicate table"),
            ("x = 1\n[x]", 2, "not a table"),
            ("x = [1, 2", 1, "unterminated array"),
            ("x = 0xZZ", 1, "invalid hex"),
            ("a..b = 1", 1, "invalid key segment"),
        ];
        for (doc, line, needle) in cases {
            let error = parse(doc).expect_err(doc);
            assert_eq!(error.line, line, "{doc:?} -> {error}");
            assert!(error.to_string().contains(needle), "{doc:?} -> {error}");
        }
    }

    #[test]
    fn dotted_keys_nest_under_the_current_table() {
        let value = parse("[outer]\ninner.leaf = 7").expect("parses");
        let outer = table(&value, "outer");
        let inner = table(outer, "inner");
        assert_eq!(table(inner, "leaf"), &Value::U64(7));
    }
}
