//! Scenario corpus & trace replay: adversarial, non-i.i.d. load with
//! online strategy-proofness testing.
//!
//! The chaos campaigns in [`crate::campaign`] stress the *platform* with
//! i.i.d. synthetic load plus injected faults. Real deployments fail
//! differently: load is diurnal and bursty, probabilities of success are
//! spatially correlated (weather over a district), and bidders probe the
//! mechanism with live misreports. This module packages those worlds as
//! *scenarios* — named, versioned, pinned-seed TOML files under the
//! repository's `scenarios/` tree — and runs them through a real
//! [`Engine`](mcs_platform::engine::Engine) with four new oracles:
//!
//! * **Arrival curves** ([`arrival`]) — a deterministic diurnal sinusoid
//!   plus seeded bursts with exactly conserved integer mass, feeding the
//!   bounded-admission layer.
//! * **Correlated PoS shocks** ([`shock`]) — seeded "weather" events
//!   keyed on [`Region`](mcs_mobility::grid::Region)s of a
//!   [`CityGrid`](mcs_mobility::grid::CityGrid): every user homed inside
//!   a shocked region has her *true* execution probability multiplied
//!   down for the event's window while her declaration is untouched.
//! * **Strategic populations** ([`population`]) — live replays of the
//!   [`misreport_factor_grid`](mcs_core::analysis::misreport_factor_grid)
//!   deviations against the engine, one unilateral deviation per round,
//!   with a truthful twin run in lockstep and an online
//!   strategy-proofness oracle ([`sp`]) asserting no deviator's expected
//!   utility under her true type beats her truthful twin's.
//! * **Trace replay** ([`driver`]) — every run records a checksummed
//!   [`ReplayLog`](mcs_obs::replay::ReplayLog) of engine drive
//!   operations that replays bit-exactly: same fingerprint, same
//!   economics, byte for byte.
//!
//! Each shipped scenario pins a `[baseline]` block (fingerprint plus
//! economics totals as bit-exact integers). Editing a scenario without
//! re-pinning its baseline in the same change is a CI failure, so the
//! corpus can never drift silently.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod arrival;
pub mod driver;
pub mod population;
pub mod shock;
pub mod spec;
pub mod toml;

pub use arrival::ArrivalCurve;
pub use driver::{replay_scenario, run_scenario, run_scenario_with, RunOptions, ScenarioOutcome};
pub use population::{Deviation, Population, RoundPopulation};
pub use shock::{ShockEvent, ShockField};
pub use spec::{Baseline, Scenario, ScenarioMode};
pub use toml::TomlError;

pub mod sp;
pub use sp::{check_online_sp, deviation_gain, SpReport, SpViolation};

/// Everything that can go wrong loading, validating, or replaying a
/// scenario. Every variant is a *typed* error: corpus problems surface
/// as diagnostics, never as panics.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error, rendered.
        message: String,
    },
    /// The file is not valid scenario TOML.
    Toml {
        /// 1-based line of the offending input.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The TOML parsed but violates the scenario schema.
    Schema {
        /// Dotted path of the offending field (e.g. `arrival.base`).
        field: String,
        /// Why it was rejected.
        message: String,
    },
    /// A name was requested that the corpus does not contain.
    UnknownScenario {
        /// The requested name.
        name: String,
        /// The corpus directory searched.
        dir: String,
    },
    /// The scenario ships no `[baseline]` block but one was required
    /// (CI refuses corpus entries without a pinned baseline).
    MissingBaseline {
        /// The offending scenario.
        name: String,
    },
    /// The run diverged from the scenario's pinned baseline.
    BaselineMismatch {
        /// The offending scenario.
        name: String,
        /// Which baseline field diverged.
        field: &'static str,
        /// The pinned value.
        expected: String,
        /// The observed value.
        actual: String,
    },
    /// A trace could not be recorded or replayed against this scenario.
    Trace {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, message } => write!(f, "{path}: {message}"),
            ScenarioError::Toml { line, message } => write!(f, "line {line}: {message}"),
            ScenarioError::Schema { field, message } => write!(f, "{field}: {message}"),
            ScenarioError::UnknownScenario { name, dir } => {
                write!(f, "unknown scenario {name:?} (searched {dir})")
            }
            ScenarioError::MissingBaseline { name } => write!(
                f,
                "scenario {name:?} has no [baseline] block; run \
                 `mcs-fuzz --scenario {name} --print-baseline` and commit it"
            ),
            ScenarioError::BaselineMismatch {
                name,
                field,
                expected,
                actual,
            } => write!(
                f,
                "scenario {name:?} diverged from its pinned baseline: \
                 {field} expected {expected}, got {actual} (a deliberate \
                 change must re-pin the baseline in the same commit)"
            ),
            ScenarioError::Trace { message } => write!(f, "trace: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TomlError> for ScenarioError {
    fn from(error: TomlError) -> Self {
        ScenarioError::Toml {
            line: error.line,
            message: error.message,
        }
    }
}

/// SplitMix64 mix of a seed and two indices — the same construction the
/// platform and the campaign bid sources use for per-round streams.
pub(crate) fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit draw in `[0, 1)` from the mixed stream.
pub(crate) fn unit(seed: u64, a: u64, b: u64) -> f64 {
    (mix(seed, a, b) >> 11) as f64 / (1u64 << 53) as f64
}

/// The directory holding the shipped scenario corpus: `scenarios/` under
/// the current directory if present (running from the repository root),
/// else resolved relative to this crate's manifest (running under
/// `cargo test`).
pub fn corpus_dir() -> PathBuf {
    let local = Path::new("scenarios");
    if local.is_dir() {
        return local.to_path_buf();
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Every `*.toml` file in the corpus, sorted by file name so sweeps are
/// deterministic.
///
/// # Errors
///
/// [`ScenarioError::Io`] if the corpus directory cannot be listed.
pub fn corpus_paths() -> Result<Vec<PathBuf>, ScenarioError> {
    let dir = corpus_dir();
    let entries = std::fs::read_dir(&dir).map_err(|e| ScenarioError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Loads a scenario by corpus name or explicit path: anything containing
/// a path separator or ending in `.toml` is treated as a path; a bare
/// name resolves to `<corpus>/<name>.toml`.
///
/// # Errors
///
/// [`ScenarioError::UnknownScenario`] for a bare name not in the corpus;
/// otherwise whatever loading the file produces.
pub fn load(name_or_path: &str) -> Result<Scenario, ScenarioError> {
    let is_path = name_or_path.contains('/') || name_or_path.ends_with(".toml");
    if is_path {
        return Scenario::load(Path::new(name_or_path));
    }
    let dir = corpus_dir();
    let path = dir.join(format!("{name_or_path}.toml"));
    if !path.is_file() {
        return Err(ScenarioError::UnknownScenario {
            name: name_or_path.to_string(),
            dir: dir.display().to_string(),
        });
    }
    Scenario::load(&path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_for_humans() {
        let cases: Vec<(ScenarioError, &str)> = vec![
            (
                ScenarioError::Io {
                    path: "x.toml".into(),
                    message: "gone".into(),
                },
                "x.toml",
            ),
            (
                ScenarioError::Toml {
                    line: 7,
                    message: "bad".into(),
                },
                "line 7",
            ),
            (
                ScenarioError::Schema {
                    field: "arrival.base".into(),
                    message: "must be positive".into(),
                },
                "arrival.base",
            ),
            (
                ScenarioError::UnknownScenario {
                    name: "nope".into(),
                    dir: "scenarios".into(),
                },
                "unknown scenario",
            ),
            (
                ScenarioError::MissingBaseline { name: "x".into() },
                "--print-baseline",
            ),
            (
                ScenarioError::BaselineMismatch {
                    name: "x".into(),
                    field: "fingerprint",
                    expected: "1".into(),
                    actual: "2".into(),
                },
                "re-pin",
            ),
            (
                ScenarioError::Trace {
                    message: "seed mismatch".into(),
                },
                "trace",
            ),
        ];
        for (error, needle) in cases {
            let rendered = error.to_string();
            assert!(rendered.contains(needle), "{rendered:?} vs {needle:?}");
        }
    }

    #[test]
    fn unit_draws_are_deterministic_and_in_range() {
        for i in 0..100 {
            let draw = unit(42, i, i * 3);
            assert!((0.0..1.0).contains(&draw));
            assert_eq!(draw.to_bits(), unit(42, i, i * 3).to_bits());
        }
    }
}
