//! Online strategy-proofness: the twin-run oracle.
//!
//! The offline checks in `mcs_core::analysis` re-run the *mechanism* on
//! a profile and its misreports. This oracle tests the claim where it
//! actually matters — against the live platform: a truthful run and a
//! deviating run execute in lockstep (same seed, same arrivals, same
//! shocks, same execution draws), differing only in the one scheduled
//! deviator's declared PoS vector per round. For every played deviation
//! the oracle compares the deviator's *expected utility under her true
//! type* across the twins:
//!
//! ```text
//! EU(run) = p_any · success + (1 − p_any) · failure − cost   (0 if she lost)
//! ```
//!
//! with `p_any` her *believed* truth (the unshocked declaration — the
//! type the paper's Theorem quantifies over; regional weather she
//! cannot observe is environment, not type) and the quotes taken from
//! whichever rewards the engine actually issued in each run. The
//! mechanism is strategy-proof iff no deviation's utility exceeds the
//! truthful twin's beyond tolerance.
//!
//! The decision itself lives in [`deviation_gain`], a pure function of
//! the two quotes and the true type — so a test can hand it a doctored
//! quote and watch the oracle trip, proving the assertion has teeth.

use std::fmt;

use mcs_core::analysis::expected_utility_from_quotes;
use mcs_core::types::UserId;
use mcs_platform::batch::RoundId;

use super::driver::{run_scenario_with, RunOptions, ScenarioOutcome};
use super::population::Deviation;
use super::spec::{Scenario, ScenarioMode};
use super::ScenarioError;

/// A profitable live deviation — the online SP oracle tripping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpViolation {
    /// The round the deviation was played in.
    pub round: u64,
    /// The deviating user.
    pub user: u32,
    /// The PoS scaling factor she played.
    pub factor: f64,
    /// Her expected utility in the truthful twin.
    pub truthful_utility: f64,
    /// Her expected utility under the deviation.
    pub deviating_utility: f64,
}

impl SpViolation {
    /// How much the deviation gained.
    pub fn gain(&self) -> f64 {
        self.deviating_utility - self.truthful_utility
    }
}

impl fmt::Display for SpViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "round {} user u{}: factor {} gains {} ({} truthful vs {} deviating)",
            self.round,
            self.user,
            self.factor,
            self.gain(),
            self.truthful_utility,
            self.deviating_utility
        )
    }
}

/// The pure SP decision: expected utilities of the truthful and
/// deviating twin given the quotes each run issued (or `None` where she
/// lost), evaluated at her true type. Returns `Some((truthful,
/// deviating))` iff the deviation profits beyond `tolerance`.
///
/// Kept quote-shaped (`(success, failure)` pairs) rather than
/// engine-shaped so the mutation-check test can feed it a deliberately
/// sweetened quote and assert the oracle trips.
pub fn deviation_gain(
    truthful_quote: Option<(f64, f64)>,
    deviating_quote: Option<(f64, f64)>,
    true_any: f64,
    true_cost: f64,
    tolerance: f64,
) -> Option<(f64, f64)> {
    let utility = |quote: Option<(f64, f64)>| match quote {
        Some((success, failure)) => {
            expected_utility_from_quotes(true_any, success, failure, true_cost)
        }
        None => 0.0,
    };
    let truthful = utility(truthful_quote);
    let deviating = utility(deviating_quote);
    (deviating > truthful + tolerance).then_some((truthful, deviating))
}

/// The outcome of one online SP sweep.
#[derive(Debug)]
pub struct SpReport {
    /// Deviations played and compared.
    pub checked: u64,
    /// Every profitable deviation found (empty = the mechanism held).
    pub violations: Vec<SpViolation>,
    /// The truthful twin's full outcome.
    pub truthful: ScenarioOutcome,
    /// The deviating twin's full outcome.
    pub deviating: ScenarioOutcome,
}

impl SpReport {
    /// Whether the mechanism survived the sweep.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The quote a run issued to `user` in `round`, if she won.
fn issued_quote(outcome: &ScenarioOutcome, round: u64, user: u32) -> Option<(f64, f64)> {
    outcome
        .results
        .get(&RoundId(round))
        .and_then(|r| r.quotes.get(&UserId::new(user)))
        .map(|q| (q.success, q.failure))
}

/// Extracts the oracle verdict for one played deviation from the two
/// twin outcomes.
pub(crate) fn check_deviation(
    truthful: &ScenarioOutcome,
    deviating: &ScenarioOutcome,
    deviation: &Deviation,
    tolerance: f64,
) -> Option<SpViolation> {
    let truthful_quote = issued_quote(truthful, deviation.round, deviation.user);
    let deviating_quote = issued_quote(deviating, deviation.round, deviation.user);
    deviation_gain(
        truthful_quote,
        deviating_quote,
        deviation.believed_any,
        deviation.true_cost,
        tolerance,
    )
    .map(|(truthful_utility, deviating_utility)| SpViolation {
        round: deviation.round,
        user: deviation.user,
        factor: deviation.factor,
        truthful_utility,
        deviating_utility,
    })
}

/// Runs the truthful and deviating twins of `scenario` and checks every
/// played deviation. `tolerance` bounds acceptable utility noise
/// (quote round-off); `1e-6` matches the round oracles.
///
/// # Errors
///
/// [`ScenarioError::Schema`] if the scenario has no `[strategy]`
/// section or is not in platform mode; otherwise whatever the runs
/// produce.
pub fn check_online_sp(scenario: &Scenario, tolerance: f64) -> Result<SpReport, ScenarioError> {
    if scenario.mode != ScenarioMode::Platform || scenario.strategy.is_none() {
        return Err(ScenarioError::Schema {
            field: "strategy".to_string(),
            message: "online SP testing needs a platform-mode scenario \
                      with a [strategy] section"
                .to_string(),
        });
    }
    let truthful = run_scenario_with(
        scenario,
        &RunOptions {
            deviate: false,
            ..RunOptions::default()
        },
    )?;
    let deviating = run_scenario_with(
        scenario,
        &RunOptions {
            deviate: true,
            ..RunOptions::default()
        },
    )?;
    let mut violations = Vec::new();
    let mut checked = 0u64;
    for deviation in &deviating.deviations {
        checked += 1;
        if let Some(violation) = check_deviation(&truthful, &deviating, deviation, tolerance) {
            violations.push(violation);
        }
    }
    Ok(SpReport {
        checked,
        violations,
        truthful,
        deviating,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winning_twice_at_the_same_quote_never_trips() {
        // Critical-value payments are declaration-independent on the
        // winning side, so identical quotes must never profit.
        let quote = Some((12.0, 2.0));
        assert_eq!(deviation_gain(quote, quote, 0.7, 1.5, 1e-6), None);
    }

    #[test]
    fn losing_when_truth_would_win_profitably_never_trips() {
        // Deviating out of a profitable win loses utility; fine.
        assert_eq!(
            deviation_gain(Some((12.0, 2.0)), None, 0.7, 1.5, 1e-6),
            None
        );
    }

    #[test]
    fn a_sweetened_quote_trips_the_oracle() {
        // The mutation check: if the engine ever quoted a deviator more
        // than her truthful twin, the oracle MUST notice.
        let truthful = Some((12.0, 2.0));
        let sweetened = Some((13.0, 3.0));
        let (t, d) = deviation_gain(truthful, sweetened, 0.7, 1.5, 1e-6).expect("must trip");
        assert!(d > t);
        assert!((d - t - 1.0).abs() < 1e-12, "gain is the quote bump");
    }

    #[test]
    fn winning_only_by_overbidding_into_a_loss_makes_deviation_positive_only_if_quote_pays() {
        // Truthful lost (EU 0); deviation won at a quote that covers the
        // cost in expectation — that WOULD be a violation, and the
        // oracle must say so.
        let violation = deviation_gain(None, Some((20.0, 10.0)), 0.5, 2.0, 1e-6);
        let (t, d) = violation.expect("profitable win from nothing must trip");
        assert_eq!(t, 0.0);
        assert!(d > 0.0);
        // ...whereas winning at a quote below cost is a loss, not a win.
        assert_eq!(deviation_gain(None, Some((2.0, 0.5)), 0.5, 2.0, 1e-6), None);
    }
}
