//! Deterministic arrival curves: a diurnal sinusoid plus seeded bursts
//! with exactly conserved integer mass.
//!
//! The curve is materialised once per run as two per-round integer
//! vectors:
//!
//! * **Base** — `round(base · (1 + amplitude · sin(2π·(r/period +
//!   phase))))` bids from the stable user-id space. The sine is a
//!   Bhāskara I rational approximation evaluated with plain IEEE
//!   arithmetic — unlike `f64::sin`, which may differ between libm
//!   builds, every operation here is exactly specified, so a pinned
//!   baseline fingerprints identically on every platform.
//! * **Burst** — each of `bursts` seeded flash crowds drops
//!   `burst_mass` *extra* bids starting at a seeded round, spread over
//!   `burst_width` rounds by integer division (quotient per round,
//!   remainder to the earliest rounds, wrapping at the horizon). The
//!   sum of burst counts is exactly `bursts · burst_mass` — mass is
//!   conserved, not resampled.
//!
//! Burst bids come from a reserved user-id space
//! ([`BURST_USER_BASE`]`+ …`), allocated by prefix sums over the curve
//! so every burst bidder has a distinct, deterministic id.

use super::{mix, spec::ArrivalSpec};

/// First user id of the burst population, far above any base user.
pub const BURST_USER_BASE: u32 = 1_000_000;

/// Domain salt for burst start rounds.
const SALT_BURST: u64 = 0x4255_5253;

/// Bhāskara I's sine approximation on one full cycle, `turns ∈ ℝ`
/// interpreted modulo 1. Max absolute error ≈ 0.0016 — invisible under
/// integer rounding of arrival counts — and bit-deterministic
/// everywhere, because it uses only IEEE `+ − × ÷`.
fn det_sin(turns: f64) -> f64 {
    use std::f64::consts::PI;
    let t = turns - turns.floor();
    let (t, sign) = if t < 0.5 { (t, 1.0) } else { (t - 0.5, -1.0) };
    let x = t * (2.0 * PI);
    sign * 16.0 * x * (PI - x) / (5.0 * PI * PI - 4.0 * x * (PI - x))
}

/// A materialised arrival curve over one scenario horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalCurve {
    base: Vec<u32>,
    burst: Vec<u32>,
    /// `burst_before[r]` = Σ burst[0..r] — the id offset of round `r`'s
    /// first burst bidder.
    burst_before: Vec<u64>,
}

impl ArrivalCurve {
    /// Materialises the curve for `rounds` rounds from `spec` and the
    /// scenario seed.
    pub fn generate(spec: &ArrivalSpec, seed: u64, rounds: u64) -> ArrivalCurve {
        let mut base = Vec::with_capacity(rounds as usize);
        for round in 0..rounds {
            let turns = round as f64 / spec.period as f64 + spec.phase;
            let rate = spec.base * (1.0 + spec.amplitude * det_sin(turns));
            base.push((rate + 0.5).floor().max(0.0) as u32);
        }
        let mut burst = vec![0u32; rounds as usize];
        let width = spec.burst_width.min(rounds).max(1);
        for index in 0..spec.bursts {
            let start = mix(seed ^ SALT_BURST, index as u64, 0) % rounds;
            let quotient = spec.burst_mass / width as u32;
            let remainder = spec.burst_mass % width as u32;
            for k in 0..width {
                let at = ((start + k) % rounds) as usize;
                burst[at] += quotient + u32::from((k as u32) < remainder);
            }
        }
        let mut burst_before = Vec::with_capacity(rounds as usize);
        let mut running = 0u64;
        for &count in &burst {
            burst_before.push(running);
            running += count as u64;
        }
        ArrivalCurve {
            base,
            burst,
            burst_before,
        }
    }

    /// The horizon this curve covers.
    pub fn rounds(&self) -> u64 {
        self.base.len() as u64
    }

    /// Diurnal bids in round `round`.
    pub fn base_count(&self, round: u64) -> u32 {
        self.base[round as usize]
    }

    /// Burst bids in round `round`.
    pub fn burst_count(&self, round: u64) -> u32 {
        self.burst[round as usize]
    }

    /// Total bids in round `round`.
    pub fn count(&self, round: u64) -> u32 {
        self.base_count(round) + self.burst_count(round)
    }

    /// Burst bids in all rounds before `round` — the id offset of this
    /// round's first burst bidder within the reserved space.
    pub fn burst_offset(&self, round: u64) -> u64 {
        self.burst_before[round as usize]
    }

    /// Total diurnal bids over the horizon.
    pub fn base_total(&self) -> u64 {
        self.base.iter().map(|&c| c as u64).sum()
    }

    /// Total burst bids over the horizon.
    pub fn burst_total(&self) -> u64 {
        self.burst.iter().map(|&c| c as u64).sum()
    }

    /// Total bids over the horizon.
    pub fn total(&self) -> u64 {
        self.base_total() + self.burst_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArrivalSpec {
        ArrivalSpec {
            base: 8.0,
            amplitude: 0.5,
            period: 12,
            phase: 0.0,
            bursts: 3,
            burst_mass: 20,
            burst_width: 4,
        }
    }

    #[test]
    fn det_sin_tracks_the_real_sine() {
        for i in 0..1000 {
            let turns = i as f64 / 1000.0;
            let exact = (turns * std::f64::consts::TAU).sin();
            assert!(
                (det_sin(turns) - exact).abs() < 2e-3,
                "turns {turns}: {} vs {exact}",
                det_sin(turns)
            );
        }
    }

    #[test]
    fn burst_mass_is_exactly_conserved() {
        let curve = ArrivalCurve::generate(&spec(), 42, 24);
        assert_eq!(curve.burst_total(), 3 * 20);
        // Even when the width exceeds the horizon.
        let wide = ArrivalSpec {
            burst_width: 100,
            ..spec()
        };
        let curve = ArrivalCurve::generate(&wide, 42, 6);
        assert_eq!(curve.burst_total(), 3 * 20);
    }

    #[test]
    fn curves_are_seed_deterministic_and_seed_sensitive() {
        let a = ArrivalCurve::generate(&spec(), 42, 24);
        let b = ArrivalCurve::generate(&spec(), 42, 24);
        let c = ArrivalCurve::generate(&spec(), 43, 24);
        assert_eq!(a, b);
        assert_ne!(a, c, "bursts should move with the seed");
    }

    #[test]
    fn burst_offsets_are_prefix_sums() {
        let curve = ArrivalCurve::generate(&spec(), 42, 24);
        let mut running = 0u64;
        for round in 0..24 {
            assert_eq!(curve.burst_offset(round), running);
            running += curve.burst_count(round) as u64;
        }
        assert_eq!(running, curve.burst_total());
    }

    #[test]
    fn flat_curves_hit_the_base_rate_exactly() {
        let flat = ArrivalSpec {
            amplitude: 0.0,
            bursts: 0,
            ..spec()
        };
        let curve = ArrivalCurve::generate(&flat, 7, 10);
        assert_eq!(curve.total(), 80);
        for round in 0..10 {
            assert_eq!(curve.count(round), 8);
        }
    }
}
