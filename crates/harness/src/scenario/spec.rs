//! The scenario schema: typed specs parsed from corpus TOML, validated
//! field by field, with pinned baselines.
//!
//! A scenario file is a complete, self-contained description of one
//! adversarial world: identity (`[scenario]`), the published tasks
//! (`[tasks]`), the bidder population and its draw ranges
//! (`[population]`), the arrival curve (`[arrival]`), optional
//! correlated PoS shocks (`[shocks]`), optional strategic bidders
//! (`[strategy]`), engine and admission knobs (`[engine]`,
//! `[admission]`), optional closed-loop campaign mode (`[campaign]`),
//! and the pinned `[baseline]` the corpus CI enforces.
//!
//! Parsing is strict: unknown keys, missing required fields, and
//! out-of-range values are all typed [`ScenarioError::Schema`] errors
//! naming the dotted field path — a corpus typo fails loudly, never by
//! silently running a different experiment.

use std::path::Path;

use serde::Value;

use mcs_platform::config::{AdmissionConfig, EngineConfig, SeededUniform, ShedPolicy, TraceConfig};

use super::{toml, ScenarioError};

/// How a scenario drives the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioMode {
    /// Drive an [`Engine`](mcs_platform::engine::Engine) directly, one
    /// auction round per logical round, with per-round oracle checks,
    /// trace record/replay, and (optionally) the online SP twin.
    Platform,
    /// Drive a closed-loop
    /// [`CampaignRunner`](mcs_campaign::runner::CampaignRunner) with the
    /// scenario's population as its bid source.
    Campaign,
}

impl ScenarioMode {
    /// The TOML spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioMode::Platform => "platform",
            ScenarioMode::Campaign => "campaign",
        }
    }
}

/// `[tasks]`: the published task set.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Number of tasks published every round.
    pub count: usize,
    /// Coverage requirement `Q_j` shared by all tasks.
    pub requirement: f64,
}

/// `[population]`: the base bidder population and its draw ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Size of the stable base-user id space (`u0..users`); the arrival
    /// curve picks a per-round prefix of it.
    pub users: u32,
    /// Cost draw range `[cost_min, cost_max)`.
    pub cost_min: f64,
    /// Upper cost bound.
    pub cost_max: f64,
    /// Per-task PoS draw range `[pos_min, pos_max)`.
    pub pos_min: f64,
    /// Upper PoS bound (≤ 0.95 so deviations can scale up and stay
    /// valid probabilities).
    pub pos_max: f64,
}

/// `[arrival]`: the diurnal + burst arrival curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    /// Mean bids per round of the diurnal component.
    pub base: f64,
    /// Relative swing of the sinusoid, in `[0, 1)`; the trough
    /// `base·(1 − amplitude)` must stay ≥ 1 so every round has load.
    pub amplitude: f64,
    /// Rounds per diurnal cycle.
    pub period: u64,
    /// Cycle offset in `[0, 1)` turns.
    pub phase: f64,
    /// Number of seeded bursts.
    pub bursts: u32,
    /// Extra bids per burst — integer mass, conserved exactly.
    pub burst_mass: u32,
    /// Rounds each burst spreads its mass over.
    pub burst_width: u64,
}

/// `[shocks]`: correlated regional PoS shocks over a mobility grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ShockSpec {
    /// Grid width in cells.
    pub grid_width: u32,
    /// Grid height in cells.
    pub grid_height: u32,
    /// Number of seeded shock events.
    pub count: u32,
    /// Lower bound of the PoS multiplier (⊂ `[0, 1]`).
    pub multiplier_min: f64,
    /// Upper bound of the PoS multiplier.
    pub multiplier_max: f64,
    /// Shortest event window, in rounds.
    pub duration_min: u64,
    /// Longest event window, in rounds.
    pub duration_max: u64,
    /// Maximum region width, in cells.
    pub region_width: u32,
    /// Maximum region height, in cells.
    pub region_height: u32,
}

/// `[strategy]`: live strategic bidders.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategySpec {
    /// Relative misreport magnitudes ε fed to
    /// [`misreport_factor_grid`](mcs_core::analysis::misreport_factor_grid).
    pub epsilons: Vec<f64>,
    /// Size of the deviator pool (`u0..deviators` take turns); each
    /// round deviates at most one bidder, keeping the test unilateral.
    pub deviators: u32,
}

/// `[engine]`: mechanism and threading knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// Shard worker count (outcomes must not depend on it).
    pub workers: usize,
    /// Per-round payment fan-out (ditto).
    pub payment_threads: usize,
    /// Reward scaling factor α.
    pub alpha: f64,
    /// FPTAS ε for single-task rounds.
    pub epsilon: f64,
}

impl Default for EngineSpec {
    fn default() -> Self {
        let defaults = EngineConfig::default();
        EngineSpec {
            workers: defaults.workers,
            payment_threads: defaults.payment_threads,
            alpha: defaults.alpha,
            epsilon: defaults.epsilon,
        }
    }
}

/// `[campaign]`: closed-loop campaign mode knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Round budget (initial + residual re-auction rounds).
    pub max_rounds: u64,
    /// Injected execution-failure probability in `[0, 1]`.
    pub failure_rate: f64,
}

/// `[baseline]`: the pinned fingerprint + economics a corpus scenario
/// must reproduce bit for bit.
///
/// Floating-point totals are pinned as raw `f64` bit patterns (hex
/// integers in the TOML), so a baseline comparison is exact — no
/// tolerance to hide drift inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Baseline {
    /// The run's FNV-1a outcome fingerprint.
    pub fingerprint: u64,
    /// Rounds cleared.
    pub rounds_cleared: u64,
    /// Bids submitted (admitted + rejected + shed).
    pub bids_submitted: u64,
    /// Bids admitted.
    pub admitted: u64,
    /// Bids shed by admission control.
    pub sheds: u64,
    /// Bids rejected at ingest.
    pub rejections: u64,
    /// Rounds quarantined (including partial-clear remainders).
    pub quarantined: u64,
    /// Total payments, as `f64::to_bits`.
    pub payment_total_bits: u64,
    /// Total social cost, as `f64::to_bits`.
    pub social_cost_total_bits: u64,
}

impl Baseline {
    /// Renders the block exactly as it should appear in the scenario
    /// file (hex integers, bit-exact totals).
    pub fn to_toml(&self) -> String {
        format!(
            "[baseline]\n\
             fingerprint = {:#018x}\n\
             rounds_cleared = {}\n\
             bids_submitted = {}\n\
             admitted = {}\n\
             sheds = {}\n\
             rejections = {}\n\
             quarantined = {}\n\
             # f64::to_bits of the payment / social-cost totals ({} / {})\n\
             payment_total_bits = {:#018x}\n\
             social_cost_total_bits = {:#018x}\n",
            self.fingerprint,
            self.rounds_cleared,
            self.bids_submitted,
            self.admitted,
            self.sheds,
            self.rejections,
            self.quarantined,
            f64::from_bits(self.payment_total_bits),
            f64::from_bits(self.social_cost_total_bits),
            self.payment_total_bits,
            self.social_cost_total_bits,
        )
    }

    /// Compares a pinned baseline against an observed one, reporting the
    /// first diverging field.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::BaselineMismatch`] naming the field.
    pub fn check(&self, name: &str, observed: &Baseline) -> Result<(), ScenarioError> {
        let fields: [(&'static str, u64, u64); 9] = [
            ("fingerprint", self.fingerprint, observed.fingerprint),
            (
                "rounds_cleared",
                self.rounds_cleared,
                observed.rounds_cleared,
            ),
            (
                "bids_submitted",
                self.bids_submitted,
                observed.bids_submitted,
            ),
            ("admitted", self.admitted, observed.admitted),
            ("sheds", self.sheds, observed.sheds),
            ("rejections", self.rejections, observed.rejections),
            ("quarantined", self.quarantined, observed.quarantined),
            (
                "payment_total_bits",
                self.payment_total_bits,
                observed.payment_total_bits,
            ),
            (
                "social_cost_total_bits",
                self.social_cost_total_bits,
                observed.social_cost_total_bits,
            ),
        ];
        for (field, expected, actual) in fields {
            if expected != actual {
                return Err(ScenarioError::BaselineMismatch {
                    name: name.to_string(),
                    field,
                    expected: format!("{expected:#x}"),
                    actual: format!("{actual:#x}"),
                });
            }
        }
        Ok(())
    }
}

/// One fully validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (the corpus file stem).
    pub name: String,
    /// Corpus version of this scenario; bump it whenever the spec
    /// changes meaningfully.
    pub version: u32,
    /// Master seed: drives arrivals, draws, shocks, and execution.
    pub seed: u64,
    /// Logical rounds to run.
    pub rounds: u64,
    /// Platform or campaign mode.
    pub mode: ScenarioMode,
    /// Published tasks.
    pub tasks: TaskSpec,
    /// Bidder population.
    pub population: PopulationSpec,
    /// Arrival curve.
    pub arrival: ArrivalSpec,
    /// Correlated PoS shocks, if any.
    pub shocks: Option<ShockSpec>,
    /// Strategic bidders, if any.
    pub strategy: Option<StrategySpec>,
    /// Engine knobs.
    pub engine: EngineSpec,
    /// Admission control, if any.
    pub admission: Option<AdmissionConfig>,
    /// Campaign-mode knobs (required iff `mode = "campaign"`).
    pub campaign: Option<CampaignSpec>,
    /// The pinned baseline, if committed.
    pub baseline: Option<Baseline>,
}

/// The current scenario schema version; files must declare it.
pub const SCHEMA_VERSION: u64 = 1;

impl Scenario {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Toml`] for syntax, [`ScenarioError::Schema`] for
    /// anything structurally or numerically invalid.
    pub fn from_toml_str(input: &str) -> Result<Scenario, ScenarioError> {
        let value = toml::parse(input)?;
        let root = Doc::new(&value)?;

        let scenario = root.require_table("scenario")?;
        let schema = scenario.u64("schema")?;
        if schema != SCHEMA_VERSION {
            return Err(schema_error(
                "scenario.schema",
                format!("unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        let name = scenario.string("name")?;
        let version = scenario.u64("version")? as u32;
        let seed = scenario.u64("seed")?;
        let rounds = scenario.u64("rounds")?;
        let mode = match scenario.string_or("mode", "platform")?.as_str() {
            "platform" => ScenarioMode::Platform,
            "campaign" => ScenarioMode::Campaign,
            other => {
                return Err(schema_error(
                    "scenario.mode",
                    format!("unknown mode {other:?} (platform | campaign)"),
                ))
            }
        };
        scenario.finish()?;

        let tasks_section = root.require_table("tasks")?;
        let tasks = TaskSpec {
            count: tasks_section.u64("count")? as usize,
            requirement: tasks_section.f64("requirement")?,
        };
        tasks_section.finish()?;

        let population_section = root.require_table("population")?;
        let population = PopulationSpec {
            users: population_section.u64("users")? as u32,
            cost_min: population_section.f64("cost_min")?,
            cost_max: population_section.f64("cost_max")?,
            pos_min: population_section.f64("pos_min")?,
            pos_max: population_section.f64("pos_max")?,
        };
        population_section.finish()?;

        let arrival_section = root.require_table("arrival")?;
        let arrival = ArrivalSpec {
            base: arrival_section.f64("base")?,
            amplitude: arrival_section.f64_or("amplitude", 0.0)?,
            period: arrival_section.u64_or("period", 24)?,
            phase: arrival_section.f64_or("phase", 0.0)?,
            bursts: arrival_section.u64_or("bursts", 0)? as u32,
            burst_mass: arrival_section.u64_or("burst_mass", 0)? as u32,
            burst_width: arrival_section.u64_or("burst_width", 1)?,
        };
        arrival_section.finish()?;

        let shocks = match root.table("shocks")? {
            None => None,
            Some(section) => {
                let spec = ShockSpec {
                    grid_width: section.u64("grid_width")? as u32,
                    grid_height: section.u64("grid_height")? as u32,
                    count: section.u64("count")? as u32,
                    multiplier_min: section.f64("multiplier_min")?,
                    multiplier_max: section.f64("multiplier_max")?,
                    duration_min: section.u64("duration_min")?,
                    duration_max: section.u64("duration_max")?,
                    region_width: section.u64("region_width")? as u32,
                    region_height: section.u64("region_height")? as u32,
                };
                section.finish()?;
                Some(spec)
            }
        };

        let strategy = match root.table("strategy")? {
            None => None,
            Some(section) => {
                let spec = StrategySpec {
                    epsilons: section.f64_list("epsilons")?,
                    deviators: section.u64("deviators")? as u32,
                };
                section.finish()?;
                Some(spec)
            }
        };

        let engine = match root.table("engine")? {
            None => EngineSpec::default(),
            Some(section) => {
                let defaults = EngineSpec::default();
                let spec = EngineSpec {
                    workers: section.u64_or("workers", defaults.workers as u64)? as usize,
                    payment_threads: section
                        .u64_or("payment_threads", defaults.payment_threads as u64)?
                        as usize,
                    alpha: section.f64_or("alpha", defaults.alpha)?,
                    epsilon: section.f64_or("epsilon", defaults.epsilon)?,
                };
                section.finish()?;
                spec
            }
        };

        let admission = match root.table("admission")? {
            None => None,
            Some(section) => {
                let high = section.u64("high_watermark")? as usize;
                let low = section.u64_or("low_watermark", (high / 2) as u64)? as usize;
                let policy = match section.string_or("policy", "tail-drop")?.as_str() {
                    "tail-drop" => ShedPolicy::TailDrop,
                    "seeded-uniform" => ShedPolicy::SeededUniform(SeededUniform {
                        seed: section.u64_or("shed_seed", seed)?,
                        rate: section.f64_or("shed_rate", 0.1)?,
                    }),
                    other => {
                        return Err(schema_error(
                            "admission.policy",
                            format!("unknown policy {other:?} (tail-drop | seeded-uniform)"),
                        ))
                    }
                };
                let config = AdmissionConfig {
                    high_watermark: high,
                    low_watermark: low,
                    policy,
                    clear_budget: section.u64_or("clear_budget", 0)? as usize,
                };
                section.finish()?;
                Some(config)
            }
        };

        let campaign = match root.table("campaign")? {
            None => None,
            Some(section) => {
                let spec = CampaignSpec {
                    max_rounds: section.u64("max_rounds")?,
                    failure_rate: section.f64_or("failure_rate", 0.0)?,
                };
                section.finish()?;
                Some(spec)
            }
        };

        let baseline = match root.table("baseline")? {
            None => None,
            Some(section) => {
                let pinned = Baseline {
                    fingerprint: section.u64("fingerprint")?,
                    rounds_cleared: section.u64("rounds_cleared")?,
                    bids_submitted: section.u64("bids_submitted")?,
                    admitted: section.u64("admitted")?,
                    sheds: section.u64("sheds")?,
                    rejections: section.u64("rejections")?,
                    quarantined: section.u64("quarantined")?,
                    payment_total_bits: section.u64("payment_total_bits")?,
                    social_cost_total_bits: section.u64("social_cost_total_bits")?,
                };
                section.finish()?;
                Some(pinned)
            }
        };

        root.finish()?;

        let scenario = Scenario {
            name,
            version,
            seed,
            rounds,
            mode,
            tasks,
            population,
            arrival,
            shocks,
            strategy,
            engine,
            admission,
            campaign,
            baseline,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Loads and validates a scenario file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] if unreadable, else as
    /// [`Scenario::from_toml_str`].
    pub fn load(path: &Path) -> Result<Scenario, ScenarioError> {
        let input = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Scenario::from_toml_str(&input)
    }

    /// The engine configuration this scenario runs under: logical-clock
    /// tracing sized to never wrap, batch capacity above the largest
    /// possible round so capacity never closes a round mid-submission.
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::default()
            .with_seed(self.seed)
            .with_workers(self.engine.workers)
            .with_payment_threads(self.engine.payment_threads);
        config.alpha = self.engine.alpha;
        config.epsilon = self.engine.epsilon;
        config.batch.max_bids = self.max_round_bids();
        if let Some(admission) = self.admission {
            config.admission = admission;
        }
        let per_round = self.max_round_bids() * (self.tasks.count + 2) + 32;
        config.trace = TraceConfig {
            capacity: ((self.rounds as usize + 2) * per_round * 2).clamp(1024, 1 << 20),
            logical_clock: true,
        };
        config
    }

    /// An upper bound on bids any single round can submit: the diurnal
    /// crest plus every burst landing at once.
    pub fn max_round_bids(&self) -> usize {
        let crest = (self.arrival.base * (1.0 + self.arrival.amplitude)).ceil() as usize + 1;
        let burst = self.arrival.bursts as usize * self.arrival.burst_mass as usize;
        crest + burst
    }

    /// The published tasks.
    ///
    /// # Panics
    ///
    /// Never — validation pinned `requirement` to a valid probability.
    pub fn published_tasks(&self) -> Vec<mcs_core::types::Task> {
        use mcs_core::types::{Task, TaskId};
        (0..self.tasks.count as u32)
            .map(|i| {
                Task::with_requirement(TaskId::new(i), self.tasks.requirement)
                    .expect("validated requirement is a valid probability")
            })
            .collect()
    }

    /// Field-by-field range validation.
    fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(schema_error("scenario.name", "must not be empty"));
        }
        if self.rounds == 0 {
            return Err(schema_error("scenario.rounds", "must be at least 1"));
        }
        if self.tasks.count == 0 {
            return Err(schema_error("tasks.count", "must be at least 1"));
        }
        if !(self.tasks.requirement > 0.0 && self.tasks.requirement < 1.0) {
            return Err(schema_error("tasks.requirement", "must lie in (0, 1)"));
        }
        let p = &self.population;
        if p.users == 0 {
            return Err(schema_error("population.users", "must be at least 1"));
        }
        if !(p.cost_min.is_finite() && p.cost_min >= 0.0 && p.cost_max >= p.cost_min) {
            return Err(schema_error(
                "population.cost_min",
                "need 0 ≤ cost_min ≤ cost_max, finite",
            ));
        }
        if !(p.pos_min >= 0.0 && p.pos_max >= p.pos_min && p.pos_max <= 0.95) {
            return Err(schema_error(
                "population.pos_min",
                "need 0 ≤ pos_min ≤ pos_max ≤ 0.95",
            ));
        }
        let a = &self.arrival;
        if !(a.base.is_finite() && a.base > 0.0) {
            return Err(schema_error("arrival.base", "must be positive and finite"));
        }
        if !(0.0..1.0).contains(&a.amplitude) {
            return Err(schema_error("arrival.amplitude", "must lie in [0, 1)"));
        }
        if a.base * (1.0 - a.amplitude) < 1.0 {
            return Err(schema_error(
                "arrival.amplitude",
                "the trough base·(1 − amplitude) must stay ≥ 1 \
                 so every round submits at least one bid",
            ));
        }
        if a.period == 0 {
            return Err(schema_error("arrival.period", "must be at least 1"));
        }
        if !(0.0..1.0).contains(&a.phase) {
            return Err(schema_error("arrival.phase", "must lie in [0, 1)"));
        }
        if a.bursts > 0 && a.burst_width == 0 {
            return Err(schema_error("arrival.burst_width", "must be at least 1"));
        }
        let crest = (a.base * (1.0 + a.amplitude)).ceil() as u64 + 1;
        if crest > p.users as u64 {
            return Err(schema_error(
                "population.users",
                format!("must cover the diurnal crest (≥ {crest})"),
            ));
        }
        if let Some(s) = &self.shocks {
            if s.grid_width == 0 || s.grid_height == 0 {
                return Err(schema_error("shocks.grid_width", "grid must be non-empty"));
            }
            if !(s.multiplier_min >= 0.0
                && s.multiplier_max >= s.multiplier_min
                && s.multiplier_max <= 1.0)
            {
                return Err(schema_error(
                    "shocks.multiplier_min",
                    "need 0 ≤ multiplier_min ≤ multiplier_max ≤ 1",
                ));
            }
            if s.duration_min == 0 || s.duration_max < s.duration_min {
                return Err(schema_error(
                    "shocks.duration_min",
                    "need 1 ≤ duration_min ≤ duration_max",
                ));
            }
            if s.region_width == 0
                || s.region_height == 0
                || s.region_width > s.grid_width
                || s.region_height > s.grid_height
            {
                return Err(schema_error(
                    "shocks.region_width",
                    "regions must be non-empty and fit the grid",
                ));
            }
        }
        if let Some(s) = &self.strategy {
            if s.epsilons.is_empty() {
                return Err(schema_error("strategy.epsilons", "must not be empty"));
            }
            if s.epsilons.iter().any(|&e| !(e > 0.0 && e < 1.0)) {
                return Err(schema_error(
                    "strategy.epsilons",
                    "every ε must lie in (0, 1)",
                ));
            }
            if s.deviators == 0 || s.deviators > p.users {
                return Err(schema_error(
                    "strategy.deviators",
                    "need 1 ≤ deviators ≤ population.users",
                ));
            }
            if self.mode == ScenarioMode::Campaign {
                return Err(schema_error(
                    "strategy",
                    "online SP testing needs per-round quotes; \
                     it runs in platform mode only",
                ));
            }
        }
        if self.engine.workers == 0 || self.engine.payment_threads == 0 {
            return Err(schema_error(
                "engine.workers",
                "workers and payment_threads must be at least 1",
            ));
        }
        if !(self.engine.alpha.is_finite() && self.engine.alpha > 0.0) {
            return Err(schema_error("engine.alpha", "must be positive and finite"));
        }
        if !(self.engine.epsilon > 0.0 && self.engine.epsilon < 1.0) {
            return Err(schema_error("engine.epsilon", "must lie in (0, 1)"));
        }
        if let Some(admission) = &self.admission {
            if admission.low_watermark > admission.high_watermark {
                return Err(schema_error(
                    "admission.low_watermark",
                    "must not exceed high_watermark",
                ));
            }
            if let ShedPolicy::SeededUniform(u) = admission.policy {
                if !(0.0..=1.0).contains(&u.rate) {
                    return Err(schema_error("admission.shed_rate", "must lie in [0, 1]"));
                }
            }
            if self.mode == ScenarioMode::Campaign {
                return Err(schema_error(
                    "admission",
                    "campaign mode sizes its own batches; admission control \
                     applies to platform mode only",
                ));
            }
        }
        match (self.mode, &self.campaign) {
            (ScenarioMode::Campaign, None) => {
                return Err(schema_error(
                    "campaign",
                    "mode = \"campaign\" requires a [campaign] section",
                ));
            }
            (ScenarioMode::Platform, Some(_)) => {
                return Err(schema_error(
                    "campaign",
                    "a [campaign] section requires mode = \"campaign\"",
                ));
            }
            (ScenarioMode::Campaign, Some(c)) => {
                if c.max_rounds == 0 {
                    return Err(schema_error("campaign.max_rounds", "must be at least 1"));
                }
                if !(0.0..=1.0).contains(&c.failure_rate) {
                    return Err(schema_error("campaign.failure_rate", "must lie in [0, 1]"));
                }
            }
            (ScenarioMode::Platform, None) => {}
        }
        Ok(())
    }
}

fn schema_error(field: &str, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Schema {
        field: field.to_string(),
        message: message.into(),
    }
}

/// A schema cursor over one TOML table: typed getters that mark keys as
/// consumed, so [`Doc::finish`] can reject unknown keys with the full
/// dotted path.
struct Doc<'a> {
    path: String,
    entries: &'a [(String, Value)],
    used: std::cell::RefCell<Vec<bool>>,
}

impl<'a> Doc<'a> {
    fn new(value: &'a Value) -> Result<Doc<'a>, ScenarioError> {
        let entries = value
            .as_map()
            .ok_or_else(|| schema_error("<root>", "document must be a table"))?;
        Ok(Doc {
            path: String::new(),
            entries,
            used: std::cell::RefCell::new(vec![false; entries.len()]),
        })
    }

    fn field(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn get(&self, key: &str) -> Option<&'a Value> {
        let index = self.entries.iter().position(|(k, _)| k == key)?;
        self.used.borrow_mut()[index] = true;
        Some(&self.entries[index].1)
    }

    fn require(&self, key: &str) -> Result<&'a Value, ScenarioError> {
        self.get(key)
            .ok_or_else(|| schema_error(&self.field(key), "missing required field"))
    }

    fn table(&self, key: &str) -> Result<Option<Doc<'a>>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(value) => {
                let entries = value.as_map().ok_or_else(|| {
                    schema_error(&self.field(key), format!("expected a table, got {value:?}"))
                })?;
                Ok(Some(Doc {
                    path: self.field(key),
                    entries,
                    used: std::cell::RefCell::new(vec![false; entries.len()]),
                }))
            }
        }
    }

    fn require_table(&self, key: &str) -> Result<Doc<'a>, ScenarioError> {
        self.table(key)?
            .ok_or_else(|| schema_error(&self.field(key), "missing required section"))
    }

    fn u64(&self, key: &str) -> Result<u64, ScenarioError> {
        match self.require(key)? {
            Value::U64(v) => Ok(*v),
            other => Err(schema_error(
                &self.field(key),
                format!("expected a non-negative integer, got {other:?}"),
            )),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(Value::U64(v)) => Ok(*v),
            Some(other) => Err(schema_error(
                &self.field(key),
                format!("expected a non-negative integer, got {other:?}"),
            )),
        }
    }

    fn coerce_f64(&self, key: &str, value: &Value) -> Result<f64, ScenarioError> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            other => Err(schema_error(
                &self.field(key),
                format!("expected a number, got {other:?}"),
            )),
        }
    }

    fn f64(&self, key: &str) -> Result<f64, ScenarioError> {
        let value = self.require(key)?;
        self.coerce_f64(key, value)
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(value) => self.coerce_f64(key, value),
        }
    }

    fn f64_list(&self, key: &str) -> Result<Vec<f64>, ScenarioError> {
        let value = self.require(key)?;
        let seq = value.as_seq().ok_or_else(|| {
            schema_error(
                &self.field(key),
                format!("expected an array, got {value:?}"),
            )
        })?;
        seq.iter().map(|v| self.coerce_f64(key, v)).collect()
    }

    fn string(&self, key: &str) -> Result<String, ScenarioError> {
        match self.require(key)? {
            Value::Str(s) => Ok(s.clone()),
            other => Err(schema_error(
                &self.field(key),
                format!("expected a string, got {other:?}"),
            )),
        }
    }

    fn string_or(&self, key: &str, default: &str) -> Result<String, ScenarioError> {
        match self.get(key) {
            None => Ok(default.to_string()),
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(other) => Err(schema_error(
                &self.field(key),
                format!("expected a string, got {other:?}"),
            )),
        }
    }

    fn finish(&self) -> Result<(), ScenarioError> {
        let used = self.used.borrow();
        for (index, (key, _)) in self.entries.iter().enumerate() {
            if !used[index] {
                return Err(schema_error(
                    &self.field(key),
                    "unknown field (schema is strict; check for typos)",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid platform scenario.
    pub(crate) fn minimal() -> String {
        r#"
[scenario]
schema = 1
name = "unit"
version = 1
seed = 7
rounds = 4

[tasks]
count = 2
requirement = 0.6

[population]
users = 12
cost_min = 1.0
cost_max = 3.0
pos_min = 0.35
pos_max = 0.8

[arrival]
base = 6.0
"#
        .to_string()
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let sc = Scenario::from_toml_str(&minimal()).expect("parses");
        assert_eq!(sc.name, "unit");
        assert_eq!(sc.mode, ScenarioMode::Platform);
        assert_eq!(sc.engine, EngineSpec::default());
        assert!(sc.shocks.is_none() && sc.strategy.is_none());
        assert!(sc.admission.is_none() && sc.baseline.is_none());
        assert_eq!(sc.arrival.amplitude, 0.0);
        assert!(sc.max_round_bids() >= 6);
    }

    #[test]
    fn unknown_fields_and_sections_are_rejected() {
        let doc = minimal() + "\n[arrivalx]\nfoo = 1\n";
        let error = Scenario::from_toml_str(&doc).expect_err("rejects");
        assert!(matches!(error, ScenarioError::Schema { ref field, .. } if field == "arrivalx"));
        let doc = minimal() + "\n[engine]\nworker_count = 2\n";
        let error = Scenario::from_toml_str(&doc).expect_err("rejects");
        assert!(
            matches!(error, ScenarioError::Schema { ref field, .. } if field == "engine.worker_count"),
            "{error}"
        );
    }

    #[test]
    fn range_violations_name_their_field() {
        let cases = [
            ("rounds = 4", "rounds = 0", "scenario.rounds"),
            (
                "requirement = 0.6",
                "requirement = 1.5",
                "tasks.requirement",
            ),
            ("pos_max = 0.8", "pos_max = 0.99", "population.pos_min"),
            ("base = 6.0", "base = -1.0", "arrival.base"),
            ("users = 12", "users = 3", "population.users"),
        ];
        for (from, to, field) in cases {
            let doc = minimal().replace(from, to);
            let error = Scenario::from_toml_str(&doc).expect_err(to);
            assert!(
                matches!(error, ScenarioError::Schema { field: ref f, .. } if f == field),
                "{to}: {error}"
            );
        }
    }

    #[test]
    fn amplitude_trough_must_keep_load() {
        let doc = minimal() + "\n";
        let doc = doc.replace("base = 6.0", "base = 6.0\namplitude = 0.99");
        let error = Scenario::from_toml_str(&doc).expect_err("rejects");
        assert!(
            matches!(error, ScenarioError::Schema { ref field, .. } if field == "arrival.amplitude")
        );
    }

    #[test]
    fn campaign_mode_requires_its_section_and_excludes_strategy() {
        let doc = minimal().replace("rounds = 4", "rounds = 4\nmode = \"campaign\"");
        let error = Scenario::from_toml_str(&doc).expect_err("rejects");
        assert!(matches!(error, ScenarioError::Schema { ref field, .. } if field == "campaign"));

        let doc = minimal().replace("rounds = 4", "rounds = 4\nmode = \"campaign\"")
            + "\n[campaign]\nmax_rounds = 6\n[strategy]\nepsilons = [0.1]\ndeviators = 2\n";
        let error = Scenario::from_toml_str(&doc).expect_err("rejects");
        assert!(matches!(error, ScenarioError::Schema { ref field, .. } if field == "strategy"));
    }

    #[test]
    fn baselines_round_trip_through_their_toml_rendering() {
        let pinned = Baseline {
            fingerprint: 0xDEAD_BEEF_F00D_CAFE,
            rounds_cleared: 12,
            bids_submitted: 96,
            admitted: 90,
            sheds: 4,
            rejections: 2,
            quarantined: 1,
            payment_total_bits: 123.456f64.to_bits(),
            social_cost_total_bits: 78.9f64.to_bits(),
        };
        let doc = minimal() + "\n" + &pinned.to_toml();
        let sc = Scenario::from_toml_str(&doc).expect("parses");
        assert_eq!(sc.baseline, Some(pinned));
        pinned.check("unit", &pinned).expect("identical matches");
        let mut other = pinned;
        other.sheds = 5;
        let error = pinned.check("unit", &other).expect_err("diverges");
        assert!(
            matches!(
                error,
                ScenarioError::BaselineMismatch { field: "sheds", .. }
            ),
            "{error}"
        );
    }

    #[test]
    fn admission_policies_parse_both_spellings() {
        let doc = minimal() + "\n[admission]\nhigh_watermark = 10\n";
        let sc = Scenario::from_toml_str(&doc).expect("parses");
        let admission = sc.admission.expect("present");
        assert_eq!(admission.policy, ShedPolicy::TailDrop);
        assert_eq!(admission.low_watermark, 5);

        let doc = minimal()
            + "\n[admission]\nhigh_watermark = 10\npolicy = \"seeded-uniform\"\nshed_rate = 0.2\n";
        let sc = Scenario::from_toml_str(&doc).expect("parses");
        match sc.admission.expect("present").policy {
            ShedPolicy::SeededUniform(u) => {
                assert_eq!(u.rate, 0.2);
                assert_eq!(u.seed, 7);
            }
            other => panic!("wrong policy {other:?}"),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::Scenario;

    /// The minimal platform scenario, parsed — shared by cross-module
    /// driver and oracle tests.
    pub(crate) fn minimal_scenario() -> Scenario {
        Scenario::from_toml_str(&super::tests::minimal()).expect("minimal fixture parses")
    }
}
