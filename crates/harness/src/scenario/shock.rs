//! Correlated regional PoS shocks: seeded "weather" over a mobility
//! grid.
//!
//! The i.i.d. failure models elsewhere in the repository perturb each
//! user independently. Real execution uncertainty is spatially
//! correlated — a storm front, a network outage, a road closure degrade
//! *every* worker in an area at once. A [`ShockField`] models exactly
//! that: a set of seeded [`ShockEvent`]s, each a
//! [`Region`] of the scenario's [`CityGrid`] crossed with a round
//! window and a multiplier in `[0, 1]`.
//!
//! Every user is deterministically homed to a grid cell. During a
//! shock, users homed inside the region have their **true** per-task
//! PoS multiplied down; their **declared** PoS is untouched — bidders
//! do not know the weather. The gap between declaration and truth is
//! what the execution-report redraw (driver) and the online SP oracle
//! feed on: outcomes degrade regionally while quotes, which depend only
//! on declarations, stay put.
//!
//! Overlapping events compound multiplicatively, which keeps the
//! effective multiplier inside `[0, 1]` by construction.

use mcs_mobility::grid::{Cell, CityGrid, Region};

use super::{mix, spec::ShockSpec, unit};

/// Domain salts for the independent shock draws.
const SALT_REGION: u64 = 0x5245_4749;
const SALT_WINDOW: u64 = 0x5749_4e44;
const SALT_LEVEL: u64 = 0x4c45_5645;
const SALT_HOME: u64 = 0x484f_4d45;

/// One correlated shock: a region × round-window × PoS multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShockEvent {
    /// The affected block of cells.
    pub region: Region,
    /// First affected round.
    pub start: u64,
    /// First round *past* the window (`start < end`).
    pub end: u64,
    /// The true-PoS multiplier applied inside, in `[0, 1]`.
    pub multiplier: f64,
}

impl ShockEvent {
    /// Whether this event covers `(round, cell)`.
    pub fn covers(&self, round: u64, cell: Cell) -> bool {
        round >= self.start && round < self.end && self.region.contains(cell)
    }
}

/// The materialised shock field of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShockField {
    grid: CityGrid,
    events: Vec<ShockEvent>,
    home_seed: u64,
}

impl ShockField {
    /// Generates `spec.count` events from the scenario seed over a
    /// `rounds`-round horizon.
    pub fn generate(spec: &ShockSpec, seed: u64, rounds: u64) -> ShockField {
        let grid = CityGrid::new(spec.grid_width, spec.grid_height, 2.0);
        let mut events = Vec::with_capacity(spec.count as usize);
        for index in 0..spec.count as u64 {
            let width = 1 + (mix(seed ^ SALT_REGION, index, 0) % spec.region_width as u64) as u32;
            let height = 1 + (mix(seed ^ SALT_REGION, index, 1) % spec.region_height as u64) as u32;
            let x =
                (mix(seed ^ SALT_REGION, index, 2) % (spec.grid_width - width + 1) as u64) as u32;
            let y =
                (mix(seed ^ SALT_REGION, index, 3) % (spec.grid_height - height + 1) as u64) as u32;
            let duration = spec.duration_min
                + mix(seed ^ SALT_WINDOW, index, 0) % (spec.duration_max - spec.duration_min + 1);
            let start = mix(seed ^ SALT_WINDOW, index, 1) % rounds;
            let level = spec.multiplier_min
                + (spec.multiplier_max - spec.multiplier_min) * unit(seed ^ SALT_LEVEL, index, 0);
            events.push(ShockEvent {
                region: Region {
                    x,
                    y,
                    width,
                    height,
                },
                start,
                end: (start + duration).min(rounds),
                multiplier: level,
            });
        }
        ShockField {
            grid,
            events,
            home_seed: seed ^ SALT_HOME,
        }
    }

    /// The grid the field lives on.
    pub fn grid(&self) -> &CityGrid {
        &self.grid
    }

    /// The generated events.
    pub fn events(&self) -> &[ShockEvent] {
        &self.events
    }

    /// The deterministic home cell of `user`.
    pub fn home_cell(&self, user: u32) -> Cell {
        let index = mix(self.home_seed, user as u64, 0) % self.grid.cell_count() as u64;
        self.grid
            .cell(mcs_mobility::grid::LocationId::new(index as u32))
    }

    /// The compound multiplier over every event covering `(round, cell)`.
    pub fn multiplier(&self, round: u64, cell: Cell) -> f64 {
        self.events
            .iter()
            .filter(|event| event.covers(round, cell))
            .map(|event| event.multiplier)
            .product()
    }

    /// `pos` shocked for `user` in `round`: the true execution
    /// probability after the weather has had its say.
    pub fn shocked(&self, round: u64, user: u32, pos: f64) -> f64 {
        pos * self.multiplier(round, self.home_cell(user))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ShockSpec {
        ShockSpec {
            grid_width: 8,
            grid_height: 8,
            count: 4,
            multiplier_min: 0.2,
            multiplier_max: 0.8,
            duration_min: 2,
            duration_max: 5,
            region_width: 4,
            region_height: 4,
        }
    }

    #[test]
    fn events_fit_the_grid_the_window_and_the_multiplier_range() {
        let field = ShockField::generate(&spec(), 99, 16);
        assert_eq!(field.events().len(), 4);
        for event in field.events() {
            assert!(event.region.width >= 1 && event.region.width <= 4);
            assert!(event.region.x + event.region.width <= 8);
            assert!(event.region.y + event.region.height <= 8);
            assert!(event.start < event.end && event.end <= 16);
            assert!((0.2..=0.8).contains(&event.multiplier));
        }
    }

    #[test]
    fn multipliers_apply_only_inside_region_and_window() {
        let field = ShockField::generate(&spec(), 99, 16);
        let event = field.events()[0];
        let inside = Cell {
            x: event.region.x,
            y: event.region.y,
        };
        assert!(field.multiplier(event.start, inside) < 1.0);
        assert_eq!(field.multiplier(event.end, inside), {
            // Past this event's window only other events may bite.
            field
                .events()
                .iter()
                .filter(|e| e.covers(event.end, inside))
                .map(|e| e.multiplier)
                .product::<f64>()
        });
        let outside_all = (0..16).all(|round| field.multiplier(round, Cell { x: 7, y: 7 }) <= 1.0);
        assert!(outside_all);
    }

    #[test]
    fn homes_and_fields_are_seed_deterministic() {
        let a = ShockField::generate(&spec(), 99, 16);
        let b = ShockField::generate(&spec(), 99, 16);
        let c = ShockField::generate(&spec(), 100, 16);
        assert_eq!(a, b);
        assert_ne!(a.events(), c.events());
        for user in 0..64 {
            let home = a.home_cell(user);
            assert_eq!(home, b.home_cell(user));
            assert!(home.x < 8 && home.y < 8);
        }
    }

    #[test]
    fn shocked_pos_stays_a_probability() {
        let field = ShockField::generate(&spec(), 7, 16);
        for user in 0..32 {
            for round in 0..16 {
                let shocked = field.shocked(round, user, 0.9);
                assert!((0.0..=0.9).contains(&shocked));
            }
        }
    }
}
