//! Campaign execution: drive a faulted bid stream through a real
//! [`Engine`], mirror every accepted bid, and oracle-check every
//! surviving round.
//!
//! ## The mirror
//!
//! The engine never exposes the declared profile of a round it cleared,
//! and batch faults (delayed ticks) can split a logical round across
//! engine rounds — so the campaign runs a *mirror* [`Batcher`] with the
//! same policy, fed the exact same submissions and ticks. Because batching
//! and validation are deterministic, the mirror closes bitwise-identical
//! rounds with identical ids, giving the campaign a per-round
//! [`TypeProfile`] to hand the oracle and a ground truth for which bids
//! must be rejected. Any engine/mirror disagreement is itself reported as
//! an [`OracleViolation::StreamDesync`].
//!
//! ## Reproducibility
//!
//! A campaign is a pure function of `(CampaignConfig, FaultPlan)`: the
//! bid stream derives from the seed per round, faults arm by round id,
//! and the engine is bitwise deterministic across worker counts — so
//! [`CampaignOutcome::fingerprint`] must match for any `workers` /
//! `payment_threads` combination. The CI smoke test asserts exactly that.

use std::collections::BTreeMap;
use std::sync::{Arc, Once};

use mcs_core::types::{Task, TaskId, TypeProfile, UserId};
use mcs_obs::PostMortem;
use mcs_platform::admission::{Admission, AdmissionController};
use mcs_platform::batch::{Batcher, Round, RoundId};
use mcs_platform::config::{AdmissionConfig, EngineConfig, TraceConfig};
use mcs_platform::degrade::{QuarantinedRound, RoundError};
use mcs_platform::engine::Engine;
use mcs_platform::settle::RoundSettlement;
use mcs_platform::shard::ClearedRound;

use crate::inject::{PlanInjector, CHAOS_PREFIX};
use crate::oracle::{check_round, check_round_trace, OracleConfig, OracleViolation};
use crate::plan::{Fault, FaultPlan};
use crate::stream::{round_actions, Action};

/// Everything that parameterises one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed: drives the bid stream and the engine's execution
    /// draws.
    pub seed: u64,
    /// Number of logical rounds to synthesise.
    pub rounds: u64,
    /// Well-formed bids per logical round (also the batcher's bid
    /// capacity).
    pub bids_per_round: usize,
    /// Published tasks per round: 1 exercises the single-task FPTAS
    /// mechanism, more the multi-task greedy mechanism.
    pub task_count: usize,
    /// Shard worker count. Outcomes must not depend on it.
    pub workers: usize,
    /// Per-round payment fan-out. Outcomes must not depend on it.
    pub payment_threads: usize,
    /// Drain (clear + settle + oracle-check) every this many logical
    /// rounds.
    pub drain_every: u64,
    /// Admission control for the engine under test. The campaign runs a
    /// *mirror* [`AdmissionController`] with the same configuration, fed
    /// the same backlog, so every shed decision is independently
    /// predicted — a divergence is an
    /// [`OracleViolation::ShedUnaccounted`].
    pub admission: AdmissionConfig,
    /// Multiplies the computed trace-ring capacity. Leave at 1 for
    /// normal campaigns; overload soaks push ~10× the bids per logical
    /// round and need the headroom to keep the trace oracle armed.
    pub trace_headroom: usize,
    /// Oracle tuning.
    pub oracle: OracleConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            rounds: 20,
            bids_per_round: 8,
            task_count: 1,
            workers: 4,
            payment_threads: 1,
            drain_every: 4,
            admission: AdmissionConfig::default(),
            trace_headroom: 1,
            oracle: OracleConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// The engine configuration this campaign runs under. Tracing runs in
    /// logical-clock mode — timestamps are sequence numbers, so traces
    /// and post-mortems are bitwise deterministic and the campaign
    /// fingerprint stays independent of worker count.
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::default()
            .with_seed(self.seed)
            .with_workers(self.workers)
            .with_payment_threads(self.payment_threads);
        config.batch.max_bids = self.bids_per_round;
        config.admission = self.admission;
        config.trace = TraceConfig {
            capacity: self.trace_capacity(),
            logical_clock: true,
        };
        config
    }

    /// Ring capacity sized so the recorder never wraps mid-campaign: the
    /// trace-completeness oracle needs every round's events to survive
    /// until the final drain. Each logical round emits one event per
    /// admitted bid plus one per declared task, a handful of rejections,
    /// and a fixed budget of span/milestone events; doubled for headroom
    /// (delayed ticks split rounds) and clamped to keep the upfront
    /// allocation bounded.
    fn trace_capacity(&self) -> usize {
        let per_round = self.bids_per_round * (self.task_count + 2) + 32;
        ((self.rounds as usize + 2) * per_round * 2 * self.trace_headroom.max(1))
            .clamp(1024, 1 << 20)
    }

    /// The tasks every round publishes: requirement 0.8 for the
    /// single-task setting, 0.6 each for multi-task (so the synthetic
    /// streams stay feasible).
    pub fn published_tasks(&self) -> Vec<Task> {
        let requirement = if self.task_count <= 1 { 0.8 } else { 0.6 };
        (0..self.task_count.max(1) as u32)
            .map(|i| {
                Task::with_requirement(TaskId::new(i), requirement)
                    .expect("campaign requirements are valid probabilities")
            })
            .collect()
    }
}

/// Everything a finished campaign produced, accumulated across
/// mid-campaign engine rebuilds.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Every cleared round, keyed by engine round id.
    pub results: BTreeMap<RoundId, ClearedRound>,
    /// Every settlement, keyed by engine round id.
    pub settlements: BTreeMap<RoundId, RoundSettlement>,
    /// Every quarantined round, in settlement order.
    pub quarantine: Vec<QuarantinedRound>,
    /// One JSON-ready post-mortem per quarantined round, rebuilt from the
    /// flight recorder's trace (deliberately excluded from
    /// [`fingerprint`](CampaignOutcome::fingerprint): the quarantine
    /// records above already pin the observable outcome).
    pub post_mortems: Vec<PostMortem>,
    /// Final per-user ledger balances (carried across rebuilds).
    pub balances: BTreeMap<UserId, f64>,
    /// Final ledger total.
    pub total_paid: f64,
    /// Every oracle violation, in detection order. Empty means the
    /// campaign upheld all of the paper's invariants.
    pub violations: Vec<OracleViolation>,
    /// Bids rejected at ingest (each verified to reject identically on
    /// the engine and the mirror).
    pub rejections: u64,
    /// Bids shed by admission control (each verified to shed identically
    /// on the engine and the mirror controller).
    pub sheds: u64,
    /// Rounds that cleared only their admitted prefix because they
    /// exceeded the clearing budget.
    pub partial_rounds: u64,
    /// Bidders deferred (quarantined) by those partial clears.
    pub deferred: u64,
    /// The deepest engine backlog observed after any submission — under
    /// tail-drop admission this must never exceed the high watermark.
    pub max_backlog: usize,
    /// Mid-campaign checkpoint/drop/rebuild cycles executed.
    pub rebuilds: u64,
    /// Engine rounds closed over the whole campaign.
    pub rounds_closed: u64,
    /// Shard/settle/batch faults armed onto concrete engine rounds.
    pub faults_armed: u64,
    /// Events the final engine incarnation's flight recorder held at
    /// campaign end (rebuilds start a fresh ring).
    pub trace_events: u64,
    /// The recorder's fixed ring capacity — tracing never allocates past
    /// this, no matter how long the campaign runs.
    pub trace_capacity: usize,
    /// Whether the final recorder ever lapped its ring (the campaign
    /// sizes the ring so this stays `false`).
    pub trace_wrapped: bool,
}

impl CampaignOutcome {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// An FNV-1a digest over the campaign's observable outcomes: round
    /// ids, winners, quotes, reports, payouts, balances, quarantine
    /// records, and the rejection/shed/partial-clear/rebuild counters.
    /// Two campaigns with the same seed and plan must fingerprint
    /// identically for any worker or payment-thread count — with or
    /// without admission control engaged.
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = Fnv::new();
        for (id, round) in &self.results {
            fnv.write_u64(id.0);
            for winner in round.allocation.winners() {
                fnv.write_u64(winner.index() as u64);
            }
            for (user, quote) in &round.quotes {
                fnv.write_u64(user.index() as u64);
                fnv.write_u64(quote.success.to_bits());
                fnv.write_u64(quote.failure.to_bits());
            }
            for (user, &completed) in &round.reports {
                fnv.write_u64(user.index() as u64);
                fnv.write_u64(completed as u64);
            }
            fnv.write_u64(round.social_cost.to_bits());
        }
        for (id, settlement) in &self.settlements {
            fnv.write_u64(id.0);
            for (user, payout) in &settlement.payouts {
                fnv.write_u64(user.index() as u64);
                fnv.write_u64(payout.to_bits());
            }
            fnv.write_u64(settlement.total.to_bits());
        }
        for record in &self.quarantine {
            fnv.write_u64(record.id.0);
            fnv.write_u64(record.bidders as u64);
            fnv.write_bytes(record.error.to_string().as_bytes());
        }
        for (user, balance) in &self.balances {
            fnv.write_u64(user.index() as u64);
            fnv.write_u64(balance.to_bits());
        }
        fnv.write_u64(self.total_paid.to_bits());
        fnv.write_u64(self.rejections);
        fnv.write_u64(self.sheds);
        fnv.write_u64(self.partial_rounds);
        fnv.write_u64(self.deferred);
        fnv.write_u64(self.max_backlog as u64);
        fnv.write_u64(self.rebuilds);
        fnv.write_u64(self.rounds_closed);
        fnv.finish()
    }

    /// The quarantine log as human-readable lines, one per record.
    pub fn quarantine_log(&self) -> String {
        self.quarantine
            .iter()
            .map(|q| format!("{} ({} bidders): {}", q.id, q.bidders, q.error))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// FNV-1a, 64-bit — shared by every outcome fingerprint in this crate.
pub(crate) struct Fnv {
    hash: u64,
}

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.hash ^= byte as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.hash
    }
}

/// Installs (once per process) a panic hook that swallows panics whose
/// payload carries the [`CHAOS_PREFIX`] and delegates everything else to
/// the previous hook. Injected shard panics are *expected* — without
/// this, every campaign would spray backtraces over the test output.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !payload.contains(CHAOS_PREFIX) {
                previous(info);
            }
        }));
    });
}

/// Runs one campaign to completion. Pure in `(config, plan)`: see the
/// module docs for the reproducibility contract.
pub fn run_campaign(config: &CampaignConfig, plan: &FaultPlan) -> CampaignOutcome {
    silence_injected_panics();
    let engine_config = config.engine_config();
    let tasks = config.published_tasks();
    let injector = Arc::new(PlanInjector::new());
    let mut engine = Engine::with_injector(engine_config, tasks.clone(), injector.clone());
    let mut mirror = Batcher::new(engine_config.batch, tasks.clone());
    // The mirror's own admission controller: same config, fed the same
    // backlog, so it must predict every engine shed decision exactly.
    let mut admission = AdmissionController::new(engine_config.admission);
    // Bids in rounds the mirror closed that the engine has not drained
    // yet — the mirror-side equivalent of `Engine::backlog_bids`.
    let mut mirror_pending = 0usize;
    let mut tally = ShedTally::default();

    let mut profiles: BTreeMap<RoundId, TypeProfile> = BTreeMap::new();
    let mut outcome = CampaignOutcome {
        results: BTreeMap::new(),
        settlements: BTreeMap::new(),
        quarantine: Vec::new(),
        post_mortems: Vec::new(),
        balances: BTreeMap::new(),
        total_paid: 0.0,
        violations: Vec::new(),
        rejections: 0,
        sheds: 0,
        partial_rounds: 0,
        deferred: 0,
        max_backlog: 0,
        rebuilds: 0,
        rounds_closed: 0,
        faults_armed: 0,
        trace_events: 0,
        trace_capacity: 0,
        trace_wrapped: false,
    };
    let mut absorbed_quarantine = 0usize;
    let mut absorbed_post_mortems = 0usize;
    let mut pending_rebuild = false;

    for logical in 0..config.rounds {
        let faults = plan.faults_for(logical);
        if faults.contains(&Fault::DropAndRebuild) {
            pending_rebuild = true;
        }
        for action in round_actions(config, logical, faults) {
            match action {
                Action::Submit(bid) => {
                    tally.submitted += 1;
                    // The mirror controller decides first, on the
                    // mirror-side backlog; the engine must agree.
                    let backlog = mirror.pending_bids() + mirror_pending;
                    let (_, predicted) = admission.admit(backlog);
                    let engine_side = engine.submit(&bid);
                    outcome.max_backlog = outcome.max_backlog.max(engine.backlog_bids());
                    if let Admission::Shed(reason) = predicted {
                        // A shed bid never reaches the mirror batcher.
                        match engine_side {
                            Ok(Admission::Shed(_)) => {
                                tally.shed += 1;
                                outcome.sheds += 1;
                            }
                            other => {
                                outcome.violations.push(OracleViolation::ShedUnaccounted {
                                    detail: format!(
                                        "round {logical} user u{}: mirror shed ({reason}) \
                                         but engine returned {other:?}",
                                        bid.user
                                    ),
                                });
                            }
                        }
                        continue;
                    }
                    let mirror_side = mirror.submit(&bid);
                    match (engine_side, mirror_side) {
                        (Ok(Admission::Admitted), Ok(closed)) => {
                            tally.admitted += 1;
                            if let Some(round) = closed {
                                mirror_pending += round.profile.user_count();
                                register(round, faults, &injector, &mut profiles, &mut outcome);
                            }
                        }
                        // Compare rejections by rendered message, not
                        // PartialEq: a NaN-cost rejection carries the NaN
                        // in its payload, and NaN != NaN.
                        (Err(engine_error), Err(mirror_error))
                            if engine_error.to_string() == mirror_error.to_string() =>
                        {
                            tally.rejected += 1;
                            outcome.rejections += 1;
                        }
                        (Ok(Admission::Shed(reason)), _) => {
                            outcome.violations.push(OracleViolation::ShedUnaccounted {
                                detail: format!(
                                    "round {logical} user u{}: engine shed ({reason}) \
                                     a bid the mirror admitted",
                                    bid.user
                                ),
                            });
                        }
                        (engine_side, mirror_side) => {
                            outcome.violations.push(OracleViolation::StreamDesync {
                                detail: format!(
                                    "round {logical} user u{}: engine {engine_side:?} \
                                     vs mirror {:?}",
                                    bid.user,
                                    mirror_side.map(|r| r.map(|round| round.id))
                                ),
                            });
                        }
                    }
                }
                Action::Tick => {
                    engine.tick();
                    if let Some(round) = mirror.tick() {
                        mirror_pending += round.profile.user_count();
                        register(round, faults, &injector, &mut profiles, &mut outcome);
                    }
                }
            }
        }

        let at_drain_point = (logical + 1) % config.drain_every.max(1) == 0;
        if at_drain_point || pending_rebuild {
            engine.drain();
            mirror_pending = 0;
            absorb(
                config,
                &engine,
                &profiles,
                &mut outcome,
                &mut absorbed_quarantine,
                &mut absorbed_post_mortems,
            );
        }
        if pending_rebuild {
            // A checkpoint does not capture the partially filled batch, so
            // close it identically on both sides and drain it first.
            engine.flush();
            if let Some(round) = mirror.flush() {
                register(round, &[], &injector, &mut profiles, &mut outcome);
            }
            engine.drain();
            mirror_pending = 0;
            absorb(
                config,
                &engine,
                &profiles,
                &mut outcome,
                &mut absorbed_quarantine,
                &mut absorbed_post_mortems,
            );
            // This incarnation's books close here: every bid it received
            // must be exactly one of admitted/rejected/shed.
            check_conservation(&engine, &tally, &mut outcome);
            let checkpoint = engine.checkpoint();
            engine = Engine::restore(engine_config, tasks.clone(), checkpoint, injector.clone());
            // A restored engine starts a fresh admission controller (and
            // fresh metrics); the mirror must do the same.
            admission = AdmissionController::new(engine_config.admission);
            tally = ShedTally::default();
            absorbed_quarantine = 0;
            absorbed_post_mortems = 0;
            outcome.rebuilds += 1;
            pending_rebuild = false;
        }
    }

    engine.flush();
    if let Some(round) = mirror.flush() {
        register(round, &[], &injector, &mut profiles, &mut outcome);
    }
    engine.drain();
    check_conservation(&engine, &tally, &mut outcome);
    absorb(
        config,
        &engine,
        &profiles,
        &mut outcome,
        &mut absorbed_quarantine,
        &mut absorbed_post_mortems,
    );

    // Stream synchronisation: after identical drive sequences the engine
    // and the mirror must agree on the next round id.
    let engine_next = engine.checkpoint().next_round_id;
    if engine_next != mirror.next_round_id() {
        outcome.violations.push(OracleViolation::StreamDesync {
            detail: format!(
                "engine next round id {engine_next} != mirror {}",
                mirror.next_round_id()
            ),
        });
    }

    // Zero silent drops: every round the mirror closed must have been
    // cleared or quarantined.
    for &id in profiles.keys() {
        let cleared = outcome.results.contains_key(&id);
        let quarantined = outcome.quarantine.iter().any(|q| q.id == id);
        if !cleared && !quarantined {
            outcome
                .violations
                .push(OracleViolation::SilentDrop { round: id });
        }
    }

    // The injector observed exactly the quarantines the engine recorded.
    if injector.observed_quarantines() != outcome.quarantine {
        outcome.violations.push(OracleViolation::StreamDesync {
            detail: "quarantine observations diverge from engine records".to_string(),
        });
    }

    // Ledger conservation: balances equal summed payouts, in total and
    // per user, across every rebuild.
    let ledger = engine.ledger();
    let mut expected: BTreeMap<UserId, f64> = BTreeMap::new();
    let mut expected_total = 0.0;
    for settlement in outcome.settlements.values() {
        for (&user, &payout) in &settlement.payouts {
            *expected.entry(user).or_insert(0.0) += payout;
        }
        expected_total += settlement.total;
    }
    if (ledger.total_paid() - expected_total).abs() > 1e-9 {
        outcome.violations.push(OracleViolation::LedgerDrift {
            detail: format!(
                "ledger total {} != summed settlements {expected_total}",
                ledger.total_paid()
            ),
        });
    }
    if ledger.balances().keys().ne(expected.keys()) {
        outcome.violations.push(OracleViolation::LedgerDrift {
            detail: "ledger and settlements pay different user sets".to_string(),
        });
    }
    for (&user, &sum) in &expected {
        if (ledger.balance(user) - sum).abs() > 1e-9 {
            outcome.violations.push(OracleViolation::LedgerDrift {
                detail: format!(
                    "{user}: balance {} != summed payouts {sum}",
                    ledger.balance(user)
                ),
            });
        }
    }
    outcome.balances = ledger.balances().clone();
    outcome.total_paid = ledger.total_paid();
    outcome.trace_events = engine.recorder().recorded();
    outcome.trace_capacity = engine.recorder().capacity();
    outcome.trace_wrapped = engine.recorder().wrapped();

    outcome
}

/// Per-incarnation bid bookkeeping: what the campaign itself counted
/// while driving the current engine incarnation. Reset on rebuild,
/// because a restored engine starts fresh metrics.
#[derive(Debug, Default)]
struct ShedTally {
    submitted: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
}

/// The `ShedUnaccounted` conservation oracle: under any load (including
/// seeded 10× oversubscription) every bid submitted to this incarnation
/// must be exactly one of admitted / rejected / shed, and the engine's
/// own counters must agree with the campaign's independent tally.
fn check_conservation(engine: &Engine, tally: &ShedTally, outcome: &mut CampaignOutcome) {
    let snapshot = engine.metrics().snapshot();
    let checks = [
        ("bids_received", snapshot.bids_received, tally.submitted),
        ("bids_rejected", snapshot.bids_rejected, tally.rejected),
        ("bids_shed", snapshot.bids_shed, tally.shed),
        (
            "admitted + rejected + shed",
            tally.admitted + tally.rejected + tally.shed,
            tally.submitted,
        ),
    ];
    for (what, observed, expected) in checks {
        if observed != expected {
            outcome.violations.push(OracleViolation::ShedUnaccounted {
                detail: format!("{what}: observed {observed}, expected {expected}"),
            });
        }
    }
}

/// Records a round the mirror closed: stores its declared profile and
/// arms the logical round's shard/settle/batch faults onto the concrete
/// engine round id.
fn register(
    round: Round,
    faults: &[Fault],
    injector: &PlanInjector,
    profiles: &mut BTreeMap<RoundId, TypeProfile>,
    outcome: &mut CampaignOutcome,
) {
    for fault in faults {
        match fault {
            Fault::ShardPanic => {
                injector.arm_panic(round.id);
                outcome.faults_armed += 1;
            }
            Fault::FlipReports => {
                injector.arm_flip(round.id);
                outcome.faults_armed += 1;
            }
            Fault::ReorderPending => {
                injector.arm_reorder(round.id);
                outcome.faults_armed += 1;
            }
            _ => {}
        }
    }
    outcome.rounds_closed += 1;
    profiles.insert(round.id, round.profile);
}

/// Copies everything the engine produced since the last absorption into
/// the campaign accumulators, oracle-checking each newly cleared round's
/// results *and* its flight-recorder trace, and requiring a complete
/// post-mortem for each newly quarantined round.
fn absorb(
    config: &CampaignConfig,
    engine: &Engine,
    profiles: &BTreeMap<RoundId, TypeProfile>,
    outcome: &mut CampaignOutcome,
    absorbed_quarantine: &mut usize,
    absorbed_post_mortems: &mut usize,
) {
    let engine_config = engine.config();
    let recorder = engine.recorder();
    // A lapped ring legitimately loses old events; the campaign sizes the
    // ring to never wrap, so a wrap here only disables the trace oracle,
    // it is not itself a violation.
    let trace_intact = recorder.capacity() > 0 && !recorder.wrapped();
    for (&id, round) in engine.results() {
        if outcome.results.contains_key(&id) {
            continue;
        }
        let settlement = &engine.settlements()[&id];
        match profiles.get(&id) {
            Some(profile) => {
                // A round over the clearing budget cleared only its
                // admitted prefix; the oracle must replay exactly that
                // prefix. The trace still documents the whole round.
                let budget = engine_config.admission.clear_budget;
                let full_count = profile.user_count();
                let prefix;
                let checked = if budget > 0 && full_count > budget {
                    prefix = TypeProfile::new(
                        profile.users()[..budget].to_vec(),
                        profile.tasks().to_vec(),
                    )
                    .expect("a prefix of a valid profile is a valid profile");
                    let deferred = full_count - budget;
                    let accounted = engine.quarantine().iter().any(|q| {
                        q.id == id
                            && q.bidders == deferred
                            && matches!(q.error, RoundError::DeadlineExceeded {
                                budget: b, cleared, deferred: d,
                            } if b == budget && cleared == budget && d == deferred)
                    });
                    if !accounted {
                        outcome.violations.push(OracleViolation::ShedUnaccounted {
                            detail: format!(
                                "{id}: cleared {budget} of {full_count} bidders but the \
                                 {deferred} deferred are not quarantined as DeadlineExceeded"
                            ),
                        });
                    }
                    &prefix
                } else {
                    profile
                };
                outcome.violations.extend(check_round(
                    &config.oracle,
                    checked,
                    round,
                    settlement,
                    engine_config,
                ));
                if trace_intact {
                    outcome.violations.extend(check_round_trace(
                        id,
                        &recorder.round_trace(id.0),
                        full_count,
                        round.allocation.winner_count(),
                    ));
                }
            }
            None => outcome.violations.push(OracleViolation::StreamDesync {
                detail: format!("{id} cleared but was never mirrored"),
            }),
        }
        outcome.results.insert(id, round.clone());
        outcome.settlements.insert(id, settlement.clone());
    }
    for record in &engine.quarantine()[*absorbed_quarantine..] {
        if let RoundError::DeadlineExceeded { deferred, .. } = record.error {
            outcome.partial_rounds += 1;
            outcome.deferred += deferred as u64;
        }
        let post_mortem = engine
            .post_mortems()
            .iter()
            .find(|pm| pm.round == record.id.0);
        match post_mortem {
            Some(pm) if trace_intact && !pm.wrapped && !pm.complete => {
                outcome.violations.push(OracleViolation::TraceIncomplete {
                    round: record.id,
                    detail: format!(
                        "post-mortem rebuilt {} of {} bids",
                        pm.bids.len(),
                        record.bidders
                    ),
                });
            }
            Some(_) => {}
            None => outcome.violations.push(OracleViolation::TraceIncomplete {
                round: record.id,
                detail: "quarantined without a post-mortem".to_string(),
            }),
        }
        outcome.quarantine.push(record.clone());
    }
    *absorbed_quarantine = engine.quarantine().len();
    for pm in &engine.post_mortems()[*absorbed_post_mortems..] {
        outcome.post_mortems.push(pm.clone());
    }
    *absorbed_post_mortems = engine.post_mortems().len();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_campaign_is_clean_and_reproducible() {
        let config = CampaignConfig {
            rounds: 8,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&config, &FaultPlan::new());
        let b = run_campaign(&config, &FaultPlan::new());
        assert!(a.is_clean(), "{:?}", a.violations);
        assert_eq!(a.results.len(), 8);
        assert!(a.quarantine.is_empty());
        assert!(a.post_mortems.is_empty());
        assert_eq!(a.rejections, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_fingerprint_differently() {
        let base = CampaignConfig {
            rounds: 4,
            ..CampaignConfig::default()
        };
        let other = CampaignConfig {
            seed: 1,
            ..base.clone()
        };
        let a = run_campaign(&base, &FaultPlan::new());
        let b = run_campaign(&other, &FaultPlan::new());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn multi_task_campaigns_run_clean() {
        let config = CampaignConfig {
            rounds: 6,
            task_count: 3,
            bids_per_round: 6,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(&config, &FaultPlan::new());
        assert!(outcome.is_clean(), "{:?}", outcome.violations);
        assert_eq!(outcome.results.len(), 6);
    }

    #[test]
    fn quarantine_log_renders_one_line_per_record() {
        let config = CampaignConfig {
            rounds: 6,
            ..CampaignConfig::default()
        };
        let mut plan = FaultPlan::new();
        plan.schedule(2, Fault::ShardPanic)
            .schedule(4, Fault::InfeasibleRound);
        let outcome = run_campaign(&config, &plan);
        assert!(outcome.is_clean(), "{:?}", outcome.violations);
        assert_eq!(outcome.quarantine.len(), 2);
        let log = outcome.quarantine_log();
        assert_eq!(log.lines().count(), 2);
        assert!(log.contains("panicked"));
        assert!(log.contains("infeasible"));
    }

    #[test]
    fn every_quarantine_yields_a_complete_post_mortem() {
        let config = CampaignConfig {
            rounds: 6,
            ..CampaignConfig::default()
        };
        let mut plan = FaultPlan::new();
        plan.schedule(1, Fault::ShardPanic)
            .schedule(3, Fault::ShardPanic)
            .schedule(4, Fault::InfeasibleRound);
        let outcome = run_campaign(&config, &plan);
        assert!(outcome.is_clean(), "{:?}", outcome.violations);
        assert_eq!(outcome.post_mortems.len(), outcome.quarantine.len());
        for (record, pm) in outcome.quarantine.iter().zip(&outcome.post_mortems) {
            assert_eq!(pm.round, record.id.0);
            assert!(pm.complete, "{}", pm.to_json());
            assert_eq!(pm.bids.len(), record.bidders);
            assert!(pm.error.contains("panicked") || pm.error.contains("infeasible"));
        }
    }

    #[test]
    fn post_mortems_are_deterministic_and_unfingerprinted() {
        let config = CampaignConfig {
            rounds: 5,
            ..CampaignConfig::default()
        };
        let mut plan = FaultPlan::new();
        plan.schedule(2, Fault::ShardPanic);
        let a = run_campaign(&config, &plan);
        let b = run_campaign(
            &CampaignConfig {
                workers: 1,
                payment_threads: 2,
                ..config.clone()
            },
            &plan,
        );
        // Logical-clock traces make the JSON dumps bitwise identical for
        // any worker count, and the fingerprint never sees them.
        assert_eq!(a.fingerprint(), b.fingerprint());
        let dump_a: Vec<String> = a.post_mortems.iter().map(|pm| pm.to_json()).collect();
        let dump_b: Vec<String> = b.post_mortems.iter().map(|pm| pm.to_json()).collect();
        assert!(!dump_a.is_empty());
        assert_eq!(dump_a, dump_b);
    }
}
