//! Closed-loop campaign oracles: invariant checks over a whole
//! [`CampaignReport`] from `mcs-campaign`.
//!
//! The per-round oracles in [`crate::oracle`] judge a single cleared
//! round; these judge the *loop around* the rounds — the part the
//! closed-loop campaign engine adds on top of the paper's single-shot
//! mechanism:
//!
//! * **Residual monotonicity** — a task's residual requirement `Q_j'`
//!   never increases, neither within a round (absorption only
//!   subtracts) nor across the re-auction boundary (a re-published
//!   round may not inflate what the previous round left).
//! * **Termination** — every campaign ends by full coverage or by
//!   exhausting its round budget; `covered` must agree with the final
//!   residuals.
//! * **Calibration sanity** — the Laplace posterior stays a
//!   probability and is pinned to the empirical success frequency
//!   within the analytic prior bound `k / (n + k)`.
//! * **Payout conservation** — the campaign-scoped ledger totals, the
//!   per-round settlement payouts, and the per-user balances all tell
//!   the same story.
//!
//! Violations carry enough context to reproduce: re-run the campaign
//! with the same seed and the same round index shows up.

use std::fmt;

use mcs_campaign::prelude::{CampaignReport, PosCalibrator};
use mcs_core::types::{Pos, TaskId, UserId};

/// Absolute tolerance for residual/payout comparisons. Residuals are
/// log-domain contributions accumulated by subtraction, so drift is
/// bounded by a few ulps per round; 1e-9 matches the platform's
/// contribution tolerance.
const TOLERANCE: f64 = 1e-9;

/// A closed-loop invariant the campaign failed to uphold.
#[derive(Debug, Clone, PartialEq)]
pub enum ClosedLoopViolation {
    /// A task's residual grew within a single round: settlement
    /// absorption can only subtract.
    ResidualRegression {
        /// Campaign round index.
        round: u64,
        /// The offending task.
        task: TaskId,
        /// Residual when the round was published.
        before: f64,
        /// Residual after absorbing the round.
        after: f64,
    },
    /// A re-auctioned round published more residual requirement for a
    /// task than the previous round left uncovered.
    ResidualInflated {
        /// Campaign round index of the re-published round.
        round: u64,
        /// The offending task.
        task: TaskId,
        /// What the previous round left.
        carried: f64,
        /// What this round published.
        published: f64,
    },
    /// The campaign stopped early: neither covered nor out of budget.
    Unterminated {
        /// Rounds actually run.
        rounds_run: u64,
        /// The configured round budget.
        budget: u64,
    },
    /// The campaign ran more rounds than its budget allows.
    BudgetOverrun {
        /// Rounds actually run.
        rounds_run: u64,
        /// The configured round budget.
        budget: u64,
    },
    /// `covered` disagrees with the final residuals.
    CoverageMislabelled {
        /// The reported coverage flag.
        covered: bool,
        /// Total residual requirement left at the end.
        residual: f64,
    },
    /// A calibrated posterior left the unit interval.
    CalibrationOutOfRange {
        /// The user whose posterior misbehaved.
        user: UserId,
        /// The offending posterior value.
        posterior: f64,
    },
    /// A posterior strayed from the empirical success frequency by more
    /// than the Laplace prior can explain.
    CalibrationDiverged {
        /// The user whose posterior misbehaved.
        user: UserId,
        /// The computed posterior.
        posterior: f64,
        /// The empirical success frequency `s / n`.
        empirical: f64,
        /// The analytic bound `k / (n + k)`.
        bound: f64,
    },
    /// Round payouts, scoped ledger total, and user balances disagree.
    PayoutDrift {
        /// Which two quantities disagreed.
        detail: String,
    },
}

impl fmt::Display for ClosedLoopViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClosedLoopViolation::ResidualRegression {
                round,
                task,
                before,
                after,
            } => write!(
                f,
                "campaign round {round}: residual of {task} grew {before:.9} -> {after:.9}"
            ),
            ClosedLoopViolation::ResidualInflated {
                round,
                task,
                carried,
                published,
            } => write!(
                f,
                "campaign round {round}: re-published {task} at {published:.9} \
                 but the previous round left only {carried:.9}"
            ),
            ClosedLoopViolation::Unterminated { rounds_run, budget } => write!(
                f,
                "campaign stopped after {rounds_run} of {budget} rounds without full coverage"
            ),
            ClosedLoopViolation::BudgetOverrun { rounds_run, budget } => write!(
                f,
                "campaign ran {rounds_run} rounds against a budget of {budget}"
            ),
            ClosedLoopViolation::CoverageMislabelled { covered, residual } => write!(
                f,
                "campaign reports covered={covered} but {residual:.9} residual remains"
            ),
            ClosedLoopViolation::CalibrationOutOfRange { user, posterior } => write!(
                f,
                "calibrated PoS for {user} left the unit interval: {posterior}"
            ),
            ClosedLoopViolation::CalibrationDiverged {
                user,
                posterior,
                empirical,
                bound,
            } => write!(
                f,
                "posterior for {user} is {posterior:.6} but the empirical frequency \
                 is {empirical:.6}; the prior only explains +/-{bound:.6}"
            ),
            ClosedLoopViolation::PayoutDrift { detail } => {
                write!(f, "campaign payout accounting drifted: {detail}")
            }
        }
    }
}

/// Checks every closed-loop invariant over a finished campaign.
///
/// `budget` is the campaign's effective round budget
/// ([`CampaignConfig::round_budget`](mcs_campaign::prelude::CampaignConfig::round_budget)).
/// Returns every violation found; an empty vector means the campaign
/// upheld residual monotonicity, termination, calibration sanity, and
/// payout conservation.
pub fn check_campaign(report: &CampaignReport, budget: u64) -> Vec<ClosedLoopViolation> {
    let mut violations = Vec::new();
    residual_monotone(report, &mut violations);
    termination(report, budget, &mut violations);
    calibration_sane(report, &mut violations);
    payouts_conserved(report, &mut violations);
    violations
}

/// Residuals only shrink: within each round, and across the re-auction
/// boundary where the next round re-publishes what the last one left.
fn residual_monotone(report: &CampaignReport, violations: &mut Vec<ClosedLoopViolation>) {
    for round in &report.rounds {
        for (&task, &after) in &round.residual_after {
            let before = round.residual_before.get(&task).copied().unwrap_or(0.0);
            if after > before + TOLERANCE {
                violations.push(ClosedLoopViolation::ResidualRegression {
                    round: round.index,
                    task,
                    before,
                    after,
                });
            }
        }
    }
    for pair in report.rounds.windows(2) {
        let (previous, next) = (&pair[0], &pair[1]);
        for (&task, &published) in &next.residual_before {
            let carried = previous.residual_after.get(&task).copied().unwrap_or(0.0);
            if published > carried + TOLERANCE {
                violations.push(ClosedLoopViolation::ResidualInflated {
                    round: next.index,
                    task,
                    carried,
                    published,
                });
            }
        }
    }
}

/// A campaign ends covered or out of budget — never in between — and
/// the `covered` flag must agree with the final residuals.
fn termination(report: &CampaignReport, budget: u64, violations: &mut Vec<ClosedLoopViolation>) {
    let rounds_run = report.rounds_run();
    if rounds_run > budget {
        violations.push(ClosedLoopViolation::BudgetOverrun { rounds_run, budget });
    }
    if !report.covered && rounds_run < budget {
        violations.push(ClosedLoopViolation::Unterminated { rounds_run, budget });
    }
    let residual: f64 = report.residual_final.values().sum();
    if report.covered != (residual <= TOLERANCE) {
        violations.push(ClosedLoopViolation::CoverageMislabelled {
            covered: report.covered,
            residual,
        });
    }
}

/// Recomputes the Laplace posterior for every observed user and checks
/// it is a probability pinned to the empirical frequency within the
/// analytic prior bound `k / (n + k)` — the most a prior of strength
/// `k` can pull `n` observations, regardless of the declared value.
fn calibration_sane(report: &CampaignReport, violations: &mut Vec<ClosedLoopViolation>) {
    let calibrator = PosCalibrator::new(report.calibration);
    let prior_strength = report.calibration.prior_strength.max(0.0);
    for (user, record) in report.history.users() {
        let Some(empirical) = record.frequency() else {
            continue;
        };
        let bound = prior_strength / (record.attempts as f64 + prior_strength);
        // Probe the extremes of the declared range: the bound must hold
        // for any declaration a bidder could make.
        for declared in [0.01, 0.5, 0.99] {
            let posterior = calibrator.posterior(&report.history, user, Pos::saturating(declared));
            if !(0.0..=1.0).contains(&posterior) {
                violations.push(ClosedLoopViolation::CalibrationOutOfRange { user, posterior });
                continue;
            }
            if (posterior - empirical).abs() > bound + TOLERANCE {
                violations.push(ClosedLoopViolation::CalibrationDiverged {
                    user,
                    posterior,
                    empirical,
                    bound,
                });
            }
        }
    }
}

/// The scoped ledger total, the per-round settlement payouts, and the
/// per-user balances must agree.
fn payouts_conserved(report: &CampaignReport, violations: &mut Vec<ClosedLoopViolation>) {
    let from_rounds: f64 = report
        .rounds
        .iter()
        .filter(|round| !round.quarantined)
        .map(|round| round.payout)
        .sum();
    let from_balances: f64 = report.balances.values().sum();
    if (from_rounds - report.total_paid).abs() > 1e-6 {
        violations.push(ClosedLoopViolation::PayoutDrift {
            detail: format!(
                "round payouts sum to {from_rounds:.9} but the scoped ledger paid {:.9}",
                report.total_paid
            ),
        });
    }
    if (from_balances - report.total_paid).abs() > 1e-6 {
        violations.push(ClosedLoopViolation::PayoutDrift {
            detail: format!(
                "user balances sum to {from_balances:.9} but the scoped ledger paid {:.9}",
                report.total_paid
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_campaign::prelude::{CampaignConfig, CampaignRunner, SyntheticBidSource};
    use mcs_core::types::Task;
    use mcs_platform::config::EngineConfig;

    fn run(seed: u64, failure_rate: f64, max_rounds: u64) -> (CampaignReport, u64) {
        let tasks = vec![
            Task::with_requirement(TaskId::new(0), 0.95).unwrap(),
            Task::with_requirement(TaskId::new(1), 0.9).unwrap(),
            Task::with_requirement(TaskId::new(2), 0.85).unwrap(),
        ];
        let mut config =
            CampaignConfig::new(EngineConfig::default().with_seed(seed), tasks, max_rounds);
        config.failure_rate = failure_rate;
        config.failure_seed = seed ^ 0xC0FFEE;
        let budget = config.round_budget();
        let runner = CampaignRunner::new(config);
        let mut source = SyntheticBidSource::new(seed, 12);
        (runner.run(&mut source), budget)
    }

    #[test]
    fn healthy_campaigns_pass_every_oracle() {
        for (seed, rate) in [(1u64, 0.0), (7, 0.3), (42, 0.6)] {
            let (report, budget) = run(seed, rate, 24);
            let violations = check_campaign(&report, budget);
            assert!(
                violations.is_empty(),
                "seed {seed} rate {rate}: {violations:?}"
            );
        }
    }

    #[test]
    fn doctored_residual_growth_is_caught() {
        let (mut report, budget) = run(3, 0.2, 24);
        let first = &mut report.rounds[0];
        let task = *first.residual_after.keys().next().unwrap();
        let before = first.residual_before[&task];
        first.residual_after.insert(task, before + 1.0);
        let violations = check_campaign(&report, budget);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ClosedLoopViolation::ResidualRegression { .. })));
    }

    #[test]
    fn doctored_coverage_flag_is_caught() {
        let (mut report, budget) = run(3, 0.0, 24);
        assert!(report.covered);
        report.covered = false;
        let violations = check_campaign(&report, budget);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ClosedLoopViolation::CoverageMislabelled { .. })));
    }

    #[test]
    fn doctored_payouts_are_caught() {
        let (mut report, budget) = run(3, 0.2, 24);
        report.total_paid += 5.0;
        let violations = check_campaign(&report, budget);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ClosedLoopViolation::PayoutDrift { .. })));
    }

    #[test]
    fn truncated_campaigns_are_caught() {
        let (mut report, budget) = run(3, 0.6, 24);
        // Pretend the loop bailed early with work left.
        report.covered = false;
        report.residual_final.insert(TaskId::new(0), 1.0);
        report.rounds.truncate(1);
        let violations = check_campaign(&report, budget);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ClosedLoopViolation::Unterminated { .. })));
    }
}
