//! Cluster chaos: fault-injecting transports, the scenario→cluster
//! bridge, and the [`ClusterMirror`] oracle.
//!
//! The engine campaigns attack one engine's pipeline; this module
//! attacks the *deployment*. A [`FaultyTransport`] wraps any
//! [`NodeTransport`] and injects the three cluster faults from the
//! [`Fault`] taxonomy on their scheduled rounds:
//!
//! * [`Fault::NodeLoss`] — the node's primary answers its first `Clear`
//!   of the fault round, then drops off the network for good. The
//!   coordinator must promote the follower mid-round and the cluster
//!   fingerprint must be byte-identical to the fault-free run.
//! * [`Fault::NetPartition`] — the node (both replicas) is dark for the
//!   fault round and heals afterwards. The coordinator must quarantine
//!   the whole round with a typed cause and a complete post-mortem.
//! * [`Fault::DuplicateDelivery`] — every `Clear` of the fault round is
//!   delivered twice; the node-side idempotency cache must absorb the
//!   duplicates without a bit of drift.
//!
//! [`run_cluster_scenario`] drives any corpus scenario's bid stream
//! through a loopback cluster of N nodes under a fault plan, and
//! [`ClusterMirror`] recomputes the deployment-invariant ground truth
//! in-process for bitwise comparison.

use std::cell::{Cell as StdCell, RefCell};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use mcs_cluster::coordinator::{Cluster, ClusterError, ClusterOutcome, RoundReport};
use mcs_cluster::mirror::ground_truth;
use mcs_cluster::node::NodeServer;
use mcs_cluster::topology::{TaskSite, Topology};
use mcs_cluster::transport::{
    serve_node, Endpoint, LoopbackTransport, NodeTransport, Role, TcpTransport, TransportError,
};
use mcs_cluster::wire::{Request, Response};
use mcs_cluster::{ClusterConfig, ClusterParams};
use mcs_mobility::grid::{Cell, CityGrid};
use mcs_platform::ingest::Bid;

use crate::plan::{Fault, FaultPlan};
use crate::scenario::{ArrivalCurve, Population, Scenario, ShockField};
use crate::stream::splitmix64;

/// Grid width (cells) of the synthetic cluster geography.
const GRID_WIDTH: u32 = 8;
/// Grid height (cells) of the synthetic cluster geography.
const GRID_HEIGHT: u32 = 4;

/// A [`NodeTransport`] wrapper injecting the cluster faults of a
/// [`FaultPlan`]. Drive [`set_round`](FaultyTransport::set_round) before
/// each coordinator round so the schedule lines up.
#[derive(Debug)]
pub struct FaultyTransport<T: NodeTransport> {
    inner: T,
    plan: FaultPlan,
    round: StdCell<u64>,
    /// Endpoints that died permanently (node loss fired).
    lost: RefCell<BTreeSet<(u32, u8)>>,
}

fn endpoint_key(endpoint: Endpoint) -> (u32, u8) {
    (
        endpoint.node,
        match endpoint.role {
            Role::Primary => 0,
            Role::Follower => 1,
        },
    )
}

impl<T: NodeTransport> FaultyTransport<T> {
    /// Wraps `inner` with the cluster faults scheduled in `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            round: StdCell::new(0),
            lost: RefCell::new(BTreeSet::new()),
        }
    }

    /// Aligns the injector with the coordinator's next round.
    pub fn set_round(&self, round: u64) {
        self.round.set(round);
    }

    /// Endpoints the injector has permanently killed so far.
    pub fn lost_endpoints(&self) -> usize {
        self.lost.borrow().len()
    }
}

impl<T: NodeTransport> NodeTransport for FaultyTransport<T> {
    fn call(&self, endpoint: Endpoint, request: &Request) -> Result<Response, TransportError> {
        let round = self.round.get();
        if self.lost.borrow().contains(&endpoint_key(endpoint)) {
            return Err(TransportError::Unreachable(endpoint));
        }
        let faults = self.plan.faults_for(round);
        for fault in faults {
            match *fault {
                Fault::NetPartition(node) if node == endpoint.node => {
                    // Dark for this round only; heals on the next
                    // set_round.
                    return Err(TransportError::Unreachable(endpoint));
                }
                Fault::NodeLoss(node)
                    if node == endpoint.node
                        && endpoint.role == Role::Primary
                        && matches!(request, Request::Clear { .. }) =>
                {
                    // The primary serves its first Clear of the fault
                    // round, then the machine is gone — every later call
                    // (this round or any after) is unreachable.
                    let response = self.inner.call(endpoint, request);
                    self.lost.borrow_mut().insert(endpoint_key(endpoint));
                    return response;
                }
                Fault::DuplicateDelivery if matches!(request, Request::Clear { .. }) => {
                    // The network delivers the Clear twice back to back;
                    // the caller sees the second copy's response.
                    let _first = self.inner.call(endpoint, request)?;
                    return self.inner.call(endpoint, request);
                }
                _ => {}
            }
        }
        self.inner.call(endpoint, request)
    }
}

/// The deterministic cluster geography of a scenario: every published
/// task scattered over a fixed grid by a seed-derived hash, partitioned
/// into `bands` vertical bands. A pure function of `(scenario seed,
/// task ids, bands)` — node counts never enter.
///
/// # Panics
///
/// Panics if `bands` doesn't partition the grid (caller bug).
pub fn scenario_topology(scenario: &Scenario, bands: u32) -> Topology {
    let grid = CityGrid::new(GRID_WIDTH, GRID_HEIGHT, 1.0);
    let cells = u64::from(GRID_WIDTH * GRID_HEIGHT);
    let sites = scenario
        .published_tasks()
        .into_iter()
        .map(|task| {
            let id = task.id().index() as u64;
            let slot =
                splitmix64(scenario.seed, (id + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % cells;
            TaskSite {
                task,
                cell: Cell {
                    x: (slot % u64::from(GRID_WIDTH)) as u32,
                    y: (slot / u64::from(GRID_WIDTH)) as u32,
                },
            }
        })
        .collect();
    Topology::bands(grid, bands as usize, sites).expect("band partition of the scenario grid")
}

/// The shared shard parameters of a scenario's cluster runs, lifted
/// from its engine knobs.
pub fn scenario_params(scenario: &Scenario) -> ClusterParams {
    let engine = scenario.engine_config();
    ClusterParams {
        seed: engine.seed,
        workers: engine.workers,
        payment_threads: engine.payment_threads,
        alpha: engine.alpha,
        epsilon: engine.epsilon,
        trace_capacity: 4096,
    }
}

/// The full bid stream of a scenario, one entry per round — the exact
/// stream `run_cluster_scenario` submits.
pub fn scenario_rounds(scenario: &Scenario) -> Vec<Vec<Bid>> {
    let curve = ArrivalCurve::generate(&scenario.arrival, scenario.seed, scenario.rounds);
    let field = scenario
        .shocks
        .as_ref()
        .map(|spec| ShockField::generate(spec, scenario.seed, scenario.rounds));
    let population = Population::new(scenario, &curve, field.as_ref());
    (0..scenario.rounds)
        .map(|round| population.round(round, false).bids)
        .collect()
}

/// What a cluster run of a scenario produced.
#[derive(Debug)]
pub struct ClusterRun {
    /// The deployment-invariant fingerprint.
    pub fingerprint: u64,
    /// Per-round reports, in order.
    pub reports: Vec<RoundReport>,
    /// The full outcome (results, settlements, quarantines, ledger).
    pub outcome: ClusterOutcome,
}

impl ClusterRun {
    /// Rounds that were quarantined wholesale (partition).
    pub fn quarantined_rounds(&self) -> usize {
        self.reports.iter().filter(|r| r.quarantined).count()
    }

    /// Nodes that failed over at any point, ascending.
    pub fn promoted_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .reports
            .iter()
            .flat_map(|r| r.promoted.iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Runs a scenario's bid stream through a loopback cluster of `nodes`
/// nodes under `plan`'s cluster faults.
///
/// # Errors
///
/// [`ClusterError`] only on protocol violations — injected faults are
/// survived (failover) or quarantined, never raised.
pub fn run_cluster_scenario(
    scenario: &Scenario,
    nodes: u32,
    bands: u32,
    plan: &FaultPlan,
) -> Result<ClusterRun, ClusterError> {
    let topology = scenario_topology(scenario, bands);
    let params = scenario_params(scenario);
    let config = ClusterConfig::new(nodes).with_params(params);
    let servers = (0..nodes)
        .map(|node| {
            (
                node,
                NodeServer::new(&topology, params, nodes, node, true),
                NodeServer::new(&topology, params, nodes, node, false),
            )
        })
        .collect();
    let transport = FaultyTransport::new(LoopbackTransport::new(servers), plan.clone());
    let mut cluster = Cluster::new(topology, config, transport);

    let mut reports = Vec::new();
    for (round, bids) in scenario_rounds(scenario).iter().enumerate() {
        cluster.transport().set_round(round as u64);
        reports.push(cluster.run_round(bids)?);
    }
    Ok(ClusterRun {
        fingerprint: cluster.fingerprint(),
        reports,
        outcome: cluster.outcome().clone(),
    })
}

/// Runs a scenario's bid stream through a *real-socket* cluster: every
/// replica behind its own ephemeral-port listener, the coordinator
/// reaching them over [`TcpTransport`]. Byte-for-byte the same protocol
/// as loopback — the CI transport-equivalence tier pins
/// `run_cluster_scenario` and `run_cluster_scenario_tcp` to the same
/// fingerprint.
///
/// # Errors
///
/// [`ClusterError`] on protocol violations; listener bind failures also
/// surface as a protocol error (the harness has nowhere else to put an
/// `io::Error`).
pub fn run_cluster_scenario_tcp(
    scenario: &Scenario,
    nodes: u32,
    bands: u32,
) -> Result<ClusterRun, ClusterError> {
    let topology = scenario_topology(scenario, bands);
    let params = scenario_params(scenario);
    let config = ClusterConfig::new(nodes).with_params(params);
    let mut transport = TcpTransport::new();
    let mut listeners = Vec::new();
    for node in 0..nodes {
        for (role, primary) in [(Role::Primary, true), (Role::Follower, false)] {
            let server = Arc::new(Mutex::new(NodeServer::new(
                &topology, params, nodes, node, primary,
            )));
            let listener = serve_node(server).map_err(|error| ClusterError::Protocol {
                node,
                message: format!("cannot serve node {node} {role:?}: {error}"),
            })?;
            transport.register(Endpoint { node, role }, listener.addr());
            listeners.push(listener);
        }
    }
    let mut cluster = Cluster::new(topology, config, transport);
    let mut reports = Vec::new();
    for bids in &scenario_rounds(scenario) {
        reports.push(cluster.run_round(bids)?);
    }
    let run = ClusterRun {
        fingerprint: cluster.fingerprint(),
        reports,
        outcome: cluster.outcome().clone(),
    };
    for listener in &mut listeners {
        listener.shutdown();
    }
    Ok(run)
}

/// The single-process oracle for cluster runs: records the same bid
/// stream a deployment cleared and recomputes the outcome with no
/// nodes, no transports, and no replication in the loop.
#[derive(Debug)]
pub struct ClusterMirror {
    topology: Topology,
    params: ClusterParams,
    rounds: Vec<Vec<Bid>>,
}

impl ClusterMirror {
    /// An empty mirror over the same topology and parameters as the
    /// deployment under test.
    pub fn new(topology: Topology, params: ClusterParams) -> Self {
        ClusterMirror {
            topology,
            params,
            rounds: Vec::new(),
        }
    }

    /// A mirror pre-loaded with a scenario's full bid stream.
    pub fn of_scenario(scenario: &Scenario, bands: u32) -> Self {
        let mut mirror = ClusterMirror::new(
            scenario_topology(scenario, bands),
            scenario_params(scenario),
        );
        mirror.rounds = scenario_rounds(scenario);
        mirror
    }

    /// Records one round of submitted bids.
    pub fn record(&mut self, bids: &[Bid]) {
        self.rounds.push(bids.to_vec());
    }

    /// The ground-truth outcome of everything recorded.
    pub fn outcome(&self) -> ClusterOutcome {
        ground_truth(&self.topology, self.params, &self.rounds)
    }

    /// The ground-truth fingerprint of everything recorded.
    pub fn fingerprint(&self) -> u64 {
        self.outcome().fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::load;

    fn small_scenario() -> Scenario {
        // The smallest corpus scenario keeps this suite fast.
        load("calm-baseline").expect("corpus scenario calm-baseline")
    }

    /// The node hosting the first active region — a fault target that is
    /// guaranteed to actually receive traffic.
    fn busy_node(scenario: &Scenario, nodes: u32, bands: u32) -> u32 {
        let topology = scenario_topology(scenario, bands);
        let region = topology
            .active_regions()
            .next()
            .expect("scenario publishes tasks");
        topology.node_of_region(region, nodes)
    }

    #[test]
    fn scenario_topology_is_deterministic() {
        let scenario = small_scenario();
        let a = scenario_topology(&scenario, 4);
        let b = scenario_topology(&scenario, 4);
        assert_eq!(a.sites(), b.sites());
        assert_eq!(a.regions().len(), 4);
        assert!(a.active_regions().count() >= 1);
    }

    #[test]
    fn fault_free_cluster_matches_the_mirror() {
        let scenario = small_scenario();
        let run = run_cluster_scenario(&scenario, 2, 4, &FaultPlan::new()).unwrap();
        let mirror = ClusterMirror::of_scenario(&scenario, 4);
        assert_eq!(run.fingerprint, mirror.fingerprint());
        assert_eq!(run.quarantined_rounds(), 0);
        assert!(run.promoted_nodes().is_empty());
    }

    #[test]
    fn node_loss_fails_over_without_changing_the_fingerprint() {
        let scenario = small_scenario();
        let baseline = run_cluster_scenario(&scenario, 3, 6, &FaultPlan::new()).unwrap();
        let target = busy_node(&scenario, 3, 6);
        let mut plan = FaultPlan::new();
        plan.schedule(1, Fault::NodeLoss(target));
        let run = run_cluster_scenario(&scenario, 3, 6, &plan).unwrap();
        assert_eq!(run.promoted_nodes(), vec![target]);
        assert_eq!(run.fingerprint, baseline.fingerprint);
        assert_eq!(run.outcome.results, baseline.outcome.results);
    }

    #[test]
    fn partition_quarantines_the_round_with_a_post_mortem() {
        let scenario = small_scenario();
        let target = busy_node(&scenario, 2, 4);
        let mut plan = FaultPlan::new();
        plan.schedule(1, Fault::NetPartition(target));
        let run = run_cluster_scenario(&scenario, 2, 4, &plan).unwrap();
        assert_eq!(run.quarantined_rounds(), 1);
        let quarantine = run
            .outcome
            .quarantines
            .iter()
            .find(|q| q.round == 1)
            .expect("round 1 quarantined");
        assert!(quarantine.post_mortem.contains("\"cause\":\"partition\""));
    }

    #[test]
    fn tcp_and_loopback_deployments_agree_bitwise() {
        let scenario = small_scenario();
        let loopback = run_cluster_scenario(&scenario, 2, 4, &FaultPlan::new()).unwrap();
        let tcp = run_cluster_scenario_tcp(&scenario, 2, 4).unwrap();
        assert_eq!(tcp.fingerprint, loopback.fingerprint);
        assert_eq!(tcp.outcome.results, loopback.outcome.results);
        assert_eq!(
            tcp.outcome.ledger.balances(),
            loopback.outcome.ledger.balances()
        );
    }

    #[test]
    fn duplicate_delivery_is_absorbed() {
        let scenario = small_scenario();
        let baseline = run_cluster_scenario(&scenario, 2, 4, &FaultPlan::new()).unwrap();
        let mut plan = FaultPlan::new();
        plan.schedule(0, Fault::DuplicateDelivery);
        plan.schedule(2, Fault::DuplicateDelivery);
        let run = run_cluster_scenario(&scenario, 2, 4, &plan).unwrap();
        assert_eq!(run.fingerprint, baseline.fingerprint);
    }
}
