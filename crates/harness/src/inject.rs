//! The campaign's [`FaultInjector`]: plan-armed hooks for the shard,
//! settle, and batch stages.
//!
//! Logical campaign rounds and engine [`RoundId`]s drift apart once a
//! batch fault splits a round, so the injector cannot be armed up front
//! from the plan. Instead the campaign arms it *online*: whenever its
//! mirror batcher closes an engine round during a faulty logical round, it
//! arms that concrete round id here. Between drains the armed sets are
//! constant, so every hook is a pure function of its arguments while the
//! shard workers run — the determinism contract of
//! [`mcs_platform::fault`] holds and campaigns stay bitwise reproducible
//! across worker counts.

use std::collections::BTreeSet;
use std::sync::Mutex;

use mcs_core::types::UserId;
use mcs_platform::batch::{Round, RoundId};
use mcs_platform::degrade::QuarantinedRound;
use mcs_platform::fault::FaultInjector;

/// The prefix of every panic message this injector raises; the campaign's
/// panic-hook filter recognises injected panics by it.
pub const CHAOS_PREFIX: &str = "chaos:";

/// A [`FaultInjector`] armed round-by-round from a
/// [`FaultPlan`](crate::plan::FaultPlan) as the campaign maps logical
/// rounds onto engine round ids.
#[derive(Debug, Default)]
pub struct PlanInjector {
    panic_rounds: Mutex<BTreeSet<RoundId>>,
    flip_rounds: Mutex<BTreeSet<RoundId>>,
    reorder_rounds: Mutex<BTreeSet<RoundId>>,
    quarantined: Mutex<Vec<QuarantinedRound>>,
}

impl PlanInjector {
    /// A fully disarmed injector.
    pub fn new() -> Self {
        PlanInjector::default()
    }

    /// Arms a shard panic for engine round `id`.
    pub fn arm_panic(&self, id: RoundId) {
        self.panic_rounds.lock().unwrap().insert(id);
    }

    /// Arms report flipping for engine round `id`.
    pub fn arm_flip(&self, id: RoundId) {
        self.flip_rounds.lock().unwrap().insert(id);
    }

    /// Arms a pending-queue reversal for the drain containing round `id`.
    pub fn arm_reorder(&self, id: RoundId) {
        self.reorder_rounds.lock().unwrap().insert(id);
    }

    /// Every quarantined round observed so far, in observation order.
    pub fn observed_quarantines(&self) -> Vec<QuarantinedRound> {
        self.quarantined.lock().unwrap().clone()
    }
}

impl FaultInjector for PlanInjector {
    fn reorder_pending(&self, pending: &mut [Round]) {
        let armed = self.reorder_rounds.lock().unwrap();
        if pending.iter().any(|round| armed.contains(&round.id)) {
            pending.reverse();
        }
    }

    fn shard_panic(&self, round: RoundId) -> Option<String> {
        self.panic_rounds
            .lock()
            .unwrap()
            .contains(&round)
            .then(|| format!("{CHAOS_PREFIX} injected shard panic in {round}"))
    }

    fn flip_report(&self, round: RoundId, _user: UserId, completed: bool) -> bool {
        if self.flip_rounds.lock().unwrap().contains(&round) {
            !completed
        } else {
            completed
        }
    }

    fn on_quarantine(&self, round: &QuarantinedRound) {
        self.quarantined.lock().unwrap().push(round.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_platform::degrade::RoundError;

    #[test]
    fn armed_hooks_fire_only_for_their_rounds() {
        let injector = PlanInjector::new();
        injector.arm_panic(RoundId(2));
        injector.arm_flip(RoundId(3));
        assert!(injector.shard_panic(RoundId(1)).is_none());
        let message = injector.shard_panic(RoundId(2)).unwrap();
        assert!(message.starts_with(CHAOS_PREFIX));
        assert!(!injector.flip_report(RoundId(3), UserId::new(0), true));
        assert!(injector.flip_report(RoundId(1), UserId::new(0), true));
    }

    #[test]
    fn reorder_reverses_only_when_an_armed_round_is_pending() {
        let injector = PlanInjector::new();
        injector.arm_reorder(RoundId(1));
        // No fixture rounds here: an empty queue must stay empty and the
        // call must not panic.
        injector.reorder_pending(&mut []);
    }

    #[test]
    fn quarantine_observations_accumulate() {
        let injector = PlanInjector::new();
        injector.on_quarantine(&QuarantinedRound {
            id: RoundId(5),
            bidders: 3,
            error: RoundError::Infeasible {
                task: mcs_core::types::TaskId::new(0),
            },
        });
        let seen = injector.observed_quarantines();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].id, RoundId(5));
    }
}
