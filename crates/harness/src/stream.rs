//! Deterministic bid-stream synthesis, with faults woven in.
//!
//! Each *logical* campaign round expands into a sequence of [`Action`]s —
//! bid submissions and engine ticks — derived purely from
//! `(campaign seed, round index, scheduled faults)`. Round `r`'s RNG
//! stream is seeded from a SplitMix64 mix of the campaign seed and `r`,
//! so removing or adding a fault in one round can never shift the random
//! draws of any other round. That per-round isolation is what lets the
//! quarantine-regression tests assert "only the faulted round changed".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mcs_platform::ingest::Bid;

use crate::campaign::CampaignConfig;
use crate::plan::Fault;

/// One step of the campaign's drive sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Submit this bid to the engine (and the mirror batcher).
    Submit(Bid),
    /// Advance the engine's (and the mirror's) batch clock one tick.
    Tick,
}

/// SplitMix64: the same per-round stream derivation the platform's shard
/// stage uses, so harness streams inherit its isolation property.
pub fn splitmix64(seed: u64, round: u64) -> u64 {
    let mut z = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User ids from here up are reserved for overload-fault bids, so a
/// burst can never collide with a round's base bidders (or with the
/// fresh ids ingest faults use).
pub const OVERLOAD_USER_BASE: u32 = 10_000;

/// Expands logical round `round` into its drive sequence.
///
/// The fault-free shape is `bids_per_round` well-formed bids from users
/// `0..bids_per_round`, costs in `[1, 5)` and per-task PoS in
/// `[0.3, 0.8)` — always feasible for the campaign's published
/// requirements. Ingest faults insert one malformed bid just before the
/// round's last base bid (so the rejection cannot move the
/// capacity-close); [`Fault::DelayedTicks`] inserts ticks halfway;
/// [`Fault::InfeasibleRound`] replaces the whole round with a single
/// too-weak bidder plus enough ticks to force the round closed.
///
/// Overload faults synthesise *well-formed* extra bids from the reserved
/// [`OVERLOAD_USER_BASE`] id space, drawn from the same per-round RNG
/// stream after the base bids (so they perturb no other round):
/// [`Fault::BurstArrival`] prepends `factor × bids_per_round` bids
/// back-to-back; [`Fault::Oversubscribe`] interleaves `factor − 1` extra
/// bids after every base bid, sustaining the pressure across the whole
/// round.
pub fn round_actions(config: &CampaignConfig, round: u64, faults: &[Fault]) -> Vec<Action> {
    let mut rng = StdRng::seed_from_u64(splitmix64(config.seed, round));
    let task_ids: Vec<u32> = (0..config.task_count as u32).collect();

    if faults.contains(&Fault::InfeasibleRound) {
        // One bidder far too weak for any requirement, then force the
        // round closed on its tick budget so it cannot bleed into the
        // next logical round.
        let mut actions = vec![Action::Submit(Bid {
            user: 0,
            cost: 1.0,
            tasks: task_ids.iter().map(|&t| (t, 0.05)).collect(),
        })];
        for _ in 0..config.engine_config().batch.max_ticks {
            actions.push(Action::Tick);
        }
        return actions;
    }

    let mut actions: Vec<Action> = (0..config.bids_per_round as u32)
        .map(|user| {
            Action::Submit(Bid {
                user,
                cost: rng.gen_range(1.0..5.0),
                tasks: task_ids
                    .iter()
                    .map(|&t| (t, rng.gen_range(0.3..0.8)))
                    .collect(),
            })
        })
        .collect();

    // Overload bids draw from the round's RNG *after* the base bids, so
    // scheduling an overload fault never changes the base draws.
    let mut overload_user = OVERLOAD_USER_BASE;
    let mut overload_bid = |rng: &mut StdRng| {
        let bid = Bid {
            user: overload_user,
            cost: rng.gen_range(1.0..5.0),
            tasks: task_ids
                .iter()
                .map(|&t| (t, rng.gen_range(0.3..0.8)))
                .collect(),
        };
        overload_user += 1;
        bid
    };

    for fault in faults {
        match fault {
            Fault::BurstArrival(factor) => {
                let extra: Vec<Action> = (0..*factor as usize * config.bids_per_round)
                    .map(|_| Action::Submit(overload_bid(&mut rng)))
                    .collect();
                actions.splice(0..0, extra);
            }
            Fault::Oversubscribe(factor) => {
                let per_base = factor.saturating_sub(1) as usize;
                let mut sustained = Vec::with_capacity(actions.len() * (per_base + 1));
                for action in actions.drain(..) {
                    let is_submit = matches!(action, Action::Submit(_));
                    sustained.push(action);
                    if is_submit {
                        for _ in 0..per_base {
                            sustained.push(Action::Submit(overload_bid(&mut rng)));
                        }
                    }
                }
                actions = sustained;
            }
            Fault::DelayedTicks(ticks) => {
                let at = actions.len() / 2;
                for _ in 0..*ticks {
                    actions.insert(at, Action::Tick);
                }
            }
            fault if fault.is_ingest() => {
                let bad = malformed_bid(config, *fault);
                // Just before the final base bid: the reject never
                // disturbs which bid closes the round at capacity.
                let at = actions.len().saturating_sub(1);
                actions.insert(at, Action::Submit(bad));
            }
            _ => {}
        }
    }
    actions
}

/// The malformed bid an ingest-stage fault materialises as. Each is
/// crafted to trip exactly one [`IngestError`](mcs_platform::ingest::IngestError)
/// variant.
fn malformed_bid(config: &CampaignConfig, fault: Fault) -> Bid {
    // A fresh user id so rejection (not user-dedup) is what's tested —
    // except for DuplicateUserBid, which reuses user 0 on purpose.
    let fresh = config.bids_per_round as u32 + 7;
    match fault {
        Fault::NanCostBid => Bid {
            user: fresh,
            cost: f64::NAN,
            tasks: vec![(0, 0.5)],
        },
        Fault::NegativeCostBid => Bid {
            user: fresh,
            cost: -2.0,
            tasks: vec![(0, 0.5)],
        },
        Fault::OutOfRangePosBid => Bid {
            user: fresh,
            cost: 2.0,
            tasks: vec![(0, 1.5)],
        },
        Fault::EmptyTaskSetBid => Bid {
            user: fresh,
            cost: 2.0,
            tasks: Vec::new(),
        },
        Fault::UnknownTaskBid => Bid {
            user: fresh,
            cost: 2.0,
            tasks: vec![(9_999, 0.5)],
        },
        Fault::DuplicateTaskBid => Bid {
            user: fresh,
            cost: 2.0,
            tasks: vec![(0, 0.5), (0, 0.6)],
        },
        Fault::DuplicateUserBid => Bid {
            user: 0,
            cost: 2.0,
            tasks: vec![(0, 0.5)],
        },
        Fault::OversizedBid => Bid {
            user: fresh,
            cost: 2.0,
            tasks: (0..256).map(|i| (10_000 + i, 0.5)).collect(),
        },
        other => unreachable!("{other:?} is not an ingest fault"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;

    fn config() -> CampaignConfig {
        CampaignConfig::default()
    }

    #[test]
    fn fault_free_rounds_are_reproducible_and_well_formed() {
        let a = round_actions(&config(), 3, &[]);
        let b = round_actions(&config(), 3, &[]);
        assert_eq!(a, b);
        assert_eq!(a.len(), config().bids_per_round);
        for action in &a {
            match action {
                Action::Submit(bid) => {
                    assert!(bid.cost.is_finite());
                    assert_eq!(bid.tasks.len(), config().task_count);
                }
                Action::Tick => panic!("no ticks in a fault-free round"),
            }
        }
    }

    #[test]
    fn rounds_draw_independent_streams() {
        let a = round_actions(&config(), 0, &[]);
        let b = round_actions(&config(), 1, &[]);
        assert_ne!(a, b);
    }

    #[test]
    fn a_fault_in_one_round_leaves_other_rounds_bitwise_identical() {
        let clean = round_actions(&config(), 4, &[]);
        // Round 3 carrying a fault must not change round 4's draws.
        let _ = round_actions(&config(), 3, &[Fault::ShardPanic]);
        assert_eq!(round_actions(&config(), 4, &[]), clean);
    }

    #[test]
    fn ingest_faults_insert_one_extra_bid_before_the_last() {
        let actions = round_actions(&config(), 0, &[Fault::NanCostBid]);
        assert_eq!(actions.len(), config().bids_per_round + 1);
        let Action::Submit(bad) = &actions[actions.len() - 2] else {
            panic!("expected the malformed bid second-to-last");
        };
        assert!(bad.cost.is_nan());
    }

    #[test]
    fn delayed_ticks_appear_mid_round() {
        let actions = round_actions(&config(), 0, &[Fault::DelayedTicks(3)]);
        assert_eq!(
            actions.iter().filter(|a| matches!(a, Action::Tick)).count(),
            3
        );
    }

    #[test]
    fn burst_arrival_prepends_factor_rounds_of_fresh_bids() {
        let cfg = config();
        let actions = round_actions(&cfg, 2, &[Fault::BurstArrival(3)]);
        assert_eq!(actions.len(), 4 * cfg.bids_per_round);
        // The burst comes first, from the reserved id space, well-formed.
        for action in &actions[..3 * cfg.bids_per_round] {
            let Action::Submit(bid) = action else {
                panic!("bursts are back-to-back submissions");
            };
            assert!(bid.user >= OVERLOAD_USER_BASE);
            assert!(bid.cost.is_finite());
        }
        // The base bids are bitwise those of the fault-free round.
        let clean = round_actions(&cfg, 2, &[]);
        assert_eq!(&actions[3 * cfg.bids_per_round..], clean.as_slice());
    }

    #[test]
    fn oversubscription_interleaves_extras_after_every_base_bid() {
        let cfg = config();
        let actions = round_actions(&cfg, 5, &[Fault::Oversubscribe(10)]);
        assert_eq!(actions.len(), 10 * cfg.bids_per_round);
        let clean = round_actions(&cfg, 5, &[]);
        for (i, chunk) in actions.chunks(10).enumerate() {
            assert_eq!(chunk[0], clean[i], "base bid {i} must be undisturbed");
            for extra in &chunk[1..] {
                let Action::Submit(bid) = extra else {
                    panic!("oversubscription submits, never ticks");
                };
                assert!(bid.user >= OVERLOAD_USER_BASE);
            }
        }
        // All overload user ids are unique within the round.
        let mut users: Vec<u32> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Submit(bid) if bid.user >= OVERLOAD_USER_BASE => Some(bid.user),
                _ => None,
            })
            .collect();
        users.sort_unstable();
        users.dedup();
        assert_eq!(users.len(), 9 * cfg.bids_per_round);
    }

    #[test]
    fn infeasible_round_is_one_weak_bid_plus_forced_close() {
        let cfg = config();
        let actions = round_actions(&cfg, 0, &[Fault::InfeasibleRound]);
        let ticks = cfg.engine_config().batch.max_ticks as usize;
        assert_eq!(actions.len(), 1 + ticks);
        let Action::Submit(weak) = &actions[0] else {
            panic!("expected the weak bid first");
        };
        assert!(weak.tasks.iter().all(|&(_, p)| p < 0.1));
    }
}
