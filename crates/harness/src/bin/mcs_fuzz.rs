//! `mcs-fuzz` — seeded chaos campaigns against the auction platform.
//!
//! Synthesizes a faulted bid stream from a seed, drives it through a real
//! engine, and oracle-checks every surviving round against the paper's
//! economic invariants. Exits non-zero on any violation, so it slots
//! straight into CI.
//!
//! ```text
//! mcs-fuzz [--seed S] [--rounds N] [--faults F] [--tasks T] [--bids B]
//!          [--workers W] [--payment-threads P] [--drain-every D]
//!          [--verify-determinism] [--ci-smoke] [--soak] [--campaign]
//!          [--scenario NAME|PATH|all] [--record-trace FILE]
//!          [--replay-trace FILE] [--print-baseline]
//!          [--cluster] [--nodes N] [--bands B]
//! ```
//!
//! * `--seed`    campaign seed: bid stream, fault plan, execution draws (default 1)
//! * `--rounds`  logical rounds to synthesize (default 60)
//! * `--faults`  fault intensity: per-round fault probability in [0, 1] (default 0.35)
//! * `--tasks`   published tasks per round; 1 = FPTAS, >1 = greedy (default 1)
//! * `--bids`    well-formed bids per round (default 8)
//! * `--workers` shard workers (default 4)
//! * `--payment-threads` per-round payment fan-out (default 1)
//! * `--drain-every`     drain cadence in logical rounds (default 4)
//! * `--verify-determinism` re-run at several worker/payment-thread
//!   combinations and require identical fingerprints
//! * `--ci-smoke` run the fixed CI campaign matrix (<30 s) and exit
//!   non-zero on any violation or fingerprint mismatch
//! * `--soak` sustained-overload mode: every logical round arrives 10×
//!   oversubscribed against tail-drop admission and a clearing budget.
//!   Asserts the memory proxies stay bounded (backlog never exceeds the
//!   high watermark, the trace ring never wraps), that sheds happen and
//!   are fully accounted, that over-budget rounds partially clear, and
//!   that fingerprints stay bitwise identical across worker counts.
//!   Combine with `--ci-smoke` for the shortened CI variant.
//! * `--campaign` closed-loop mode: drives seeded *auction* campaigns
//!   (`mcs-campaign` residual re-auction loops) across a matrix of
//!   execution-failure rates, with and without chaos faults (report
//!   flips, shard panics, queue reorders) layered on top, and asserts
//!   the closed-loop oracles — residual monotonicity, termination,
//!   calibration sanity, payout conservation — plus bitwise fingerprint
//!   determinism across worker/payment-thread counts. Combine with
//!   `--ci-smoke` for the shortened CI variant.
//! * `--scenario` corpus mode: runs a named scenario from `scenarios/`
//!   (or a `.toml` path, or `all` for the whole corpus) through the
//!   scenario driver — diurnal/bursty arrivals, regional PoS shocks,
//!   strategic populations — and checks the outcome against the
//!   scenario's pinned `[baseline]` (missing baseline = failure).
//!   Scenarios with a `[strategy]` section also run the online SP twin
//!   sweep. Add `--verify-determinism` for the worker × payment-thread
//!   fingerprint matrix.
//! * `--cluster` deployment mode: runs every pinned corpus scenario
//!   through `mcs-cluster` deployments and requires (a) 1-node and
//!   `--nodes`-node loopback runs to produce bitwise-identical
//!   fingerprints, (b) the in-process `ClusterMirror` ground truth to
//!   agree, and (c) the three cluster chaos campaigns to hold: node
//!   loss fails over with an unchanged fingerprint, partition
//!   quarantines the round with a complete post-mortem, duplicate
//!   delivery is absorbed bit for bit. Add `--verify-determinism` to
//!   widen the node matrix and run the loopback-vs-TCP transport
//!   equivalence check over real ephemeral-port sockets.
//! * `--nodes` cluster node count for `--cluster` (default 3)
//! * `--bands` region bands (= shards) for `--cluster` (default 6)
//! * `--record-trace FILE` write the run's checksummed drive log
//! * `--replay-trace FILE` replay a recorded log instead of generating
//!   bids; the outcome must still match the pinned baseline bitwise
//! * `--print-baseline` print the observed `[baseline]` block (for
//!   pinning new or re-versioned scenarios) instead of enforcing one
//!
//! A failing campaign is reproduced by re-running with the same `--seed`,
//! `--rounds`, `--faults`, and `--tasks`; the fingerprint printed at the
//! end must match bitwise.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mcs_campaign::prelude::{CampaignRunner, SyntheticBidSource};
use mcs_core::types::{Task, TaskId};
use mcs_harness::prelude::*;
use mcs_obs::replay::ReplayLog;
use mcs_platform::batch::RoundId;
use mcs_platform::config::{AdmissionConfig, EngineConfig, ShedPolicy};

// mcs-campaign's config — aliased because the chaos harness already
// says `CampaignConfig` for a *fault* campaign.
use mcs_campaign::prelude::CampaignConfig as LoopConfig;

struct Options {
    seed: u64,
    rounds: u64,
    faults: f64,
    tasks: usize,
    bids: usize,
    workers: usize,
    payment_threads: usize,
    drain_every: u64,
    verify_determinism: bool,
    ci_smoke: bool,
    soak: bool,
    campaign_loop: bool,
    scenario: Option<String>,
    record_trace: Option<String>,
    replay_trace: Option<String>,
    print_baseline: bool,
    cluster: bool,
    nodes: u32,
    bands: u32,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut options = Options {
            seed: 1,
            rounds: 60,
            faults: 0.35,
            tasks: 1,
            bids: 8,
            workers: 4,
            payment_threads: 1,
            drain_every: 4,
            verify_determinism: false,
            ci_smoke: false,
            soak: false,
            campaign_loop: false,
            scenario: None,
            record_trace: None,
            replay_trace: None,
            print_baseline: false,
            cluster: false,
            nodes: 3,
            bands: 6,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value =
                |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
            match arg.as_str() {
                "--seed" => options.seed = parse(&value("--seed")?)?,
                "--rounds" => options.rounds = parse(&value("--rounds")?)?,
                "--faults" => options.faults = parse(&value("--faults")?)?,
                "--tasks" => options.tasks = parse(&value("--tasks")?)?,
                "--bids" => options.bids = parse(&value("--bids")?)?,
                "--workers" => options.workers = parse(&value("--workers")?)?,
                "--payment-threads" => {
                    options.payment_threads = parse(&value("--payment-threads")?)?
                }
                "--drain-every" => options.drain_every = parse(&value("--drain-every")?)?,
                "--verify-determinism" => options.verify_determinism = true,
                "--ci-smoke" => options.ci_smoke = true,
                "--soak" => options.soak = true,
                "--campaign" => options.campaign_loop = true,
                "--scenario" => options.scenario = Some(value("--scenario")?),
                "--record-trace" => options.record_trace = Some(value("--record-trace")?),
                "--replay-trace" => options.replay_trace = Some(value("--replay-trace")?),
                "--print-baseline" => options.print_baseline = true,
                "--cluster" => options.cluster = true,
                "--nodes" => options.nodes = parse(&value("--nodes")?)?,
                "--bands" => options.bands = parse(&value("--bands")?)?,
                "--help" | "-h" => {
                    return Err("usage: mcs-fuzz [--seed S] [--rounds N] [--faults F] \
                         [--tasks T] [--bids B] [--workers W] [--payment-threads P] \
                         [--drain-every D] [--verify-determinism] [--ci-smoke] [--soak] \
                         [--campaign] [--scenario NAME|PATH|all] [--record-trace FILE] \
                         [--replay-trace FILE] [--print-baseline] \
                         [--cluster] [--nodes N] [--bands B]"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if !(0.0..=1.0).contains(&options.faults) {
            return Err(format!(
                "--faults expects a probability in [0, 1], got {}",
                options.faults
            ));
        }
        Ok(options)
    }

    fn campaign(&self) -> CampaignConfig {
        CampaignConfig {
            seed: self.seed,
            rounds: self.rounds,
            bids_per_round: self.bids,
            task_count: self.tasks,
            workers: self.workers,
            payment_threads: self.payment_threads,
            drain_every: self.drain_every,
            admission: AdmissionConfig::default(),
            trace_headroom: 1,
            oracle: OracleConfig::default(),
        }
    }
}

fn parse<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("could not parse {text:?}"))
}

/// Runs one campaign and prints its summary. Returns the outcome.
fn run_one(config: &CampaignConfig, plan: &FaultPlan, label: &str) -> CampaignOutcome {
    let start = Instant::now();
    let outcome = run_campaign(config, plan);
    println!(
        "{label}: seed {} · {} logical rounds · {} faults planned · \
         {} cleared, {} quarantined, {} bids rejected, {} shed, {} rebuilds · \
         fingerprint {:016x} · {:.2?}",
        config.seed,
        config.rounds,
        plan.fault_count(),
        outcome.results.len(),
        outcome.quarantine.len(),
        outcome.rejections,
        outcome.sheds,
        outcome.rebuilds,
        outcome.fingerprint(),
        start.elapsed()
    );
    println!(
        "  trace: {} events into a {}-slot ring (wrapped: {}) · {} post-mortems",
        outcome.trace_events,
        outcome.trace_capacity,
        outcome.trace_wrapped,
        outcome.post_mortems.len(),
    );
    for violation in &outcome.violations {
        eprintln!("  VIOLATION: {violation}");
    }
    outcome
}

/// Observability contract: the flight recorder stays inside its fixed
/// allocation (it never wrapped, so no round's evidence was lost), and
/// every injected shard panic produced a complete JSON post-mortem.
fn observability_holds(config: &CampaignConfig, outcome: &CampaignOutcome) -> bool {
    let mut ok = true;
    let configured = config.engine_config().trace.capacity;
    if outcome.trace_capacity != configured {
        eprintln!(
            "  OBSERVABILITY: ring capacity {} != configured {configured}",
            outcome.trace_capacity
        );
        ok = false;
    }
    if outcome.trace_wrapped {
        eprintln!(
            "  OBSERVABILITY: ring wrapped ({} events into {} slots) — undersized",
            outcome.trace_events, outcome.trace_capacity
        );
        ok = false;
    }
    for record in &outcome.quarantine {
        let error = record.error.to_string();
        if !error.contains("panicked") {
            continue;
        }
        match outcome
            .post_mortems
            .iter()
            .find(|pm| pm.round == record.id.0)
        {
            Some(pm) if pm.complete => {}
            Some(pm) => {
                eprintln!(
                    "  OBSERVABILITY: {} post-mortem incomplete ({} of {} bids)",
                    record.id,
                    pm.bids.len(),
                    record.bidders
                );
                ok = false;
            }
            None => {
                eprintln!(
                    "  OBSERVABILITY: injected panic on {} left no post-mortem",
                    record.id
                );
                ok = false;
            }
        }
    }
    ok
}

/// Re-runs a campaign at several worker/payment-thread combinations and
/// checks the fingerprints agree bitwise. Returns whether they did.
fn determinism_holds(config: &CampaignConfig, plan: &FaultPlan, reference: u64) -> bool {
    let mut ok = true;
    for (workers, payment_threads) in [(1, 1), (2, 3), (8, 2)] {
        let variant = CampaignConfig {
            workers,
            payment_threads,
            ..config.clone()
        };
        let fingerprint = run_campaign(&variant, plan).fingerprint();
        if fingerprint != reference {
            eprintln!(
                "  DETERMINISM BROKEN: workers={workers} payment_threads={payment_threads} \
                 fingerprint {fingerprint:016x} != reference {reference:016x}"
            );
            ok = false;
        }
    }
    ok
}

/// Sustained-overload soak: every logical round arrives 10×
/// oversubscribed against tail-drop admission with a clearing budget two
/// bids under round capacity, so both sheds and deadline-aware partial
/// clears fire continuously. Asserts the conservation oracle held (the
/// campaign is clean), that the memory proxies stayed bounded — backlog
/// never above the high watermark, trace ring never wrapped — and that
/// fingerprints are bitwise identical across worker counts with
/// shedding engaged.
fn soak(options: &Options) -> ExitCode {
    const FACTOR: u32 = 10;
    let mut config = options.campaign();
    if options.ci_smoke {
        config.rounds = 16;
    }
    config.admission = AdmissionConfig {
        high_watermark: 4 * config.bids_per_round,
        low_watermark: 2 * config.bids_per_round,
        policy: ShedPolicy::TailDrop,
        clear_budget: config.bids_per_round.saturating_sub(2).max(2),
    };
    let mut plan = FaultPlan::new();
    for round in 0..config.rounds {
        plan.schedule(round, Fault::Oversubscribe(FACTOR));
    }
    config.trace_headroom = plan.trace_headroom(config.rounds);

    let outcome = run_one(&config, &plan, "soak");
    println!(
        "  overload: {} shed, max backlog {} (watermark {}), \
         {} partial rounds deferring {} bidders",
        outcome.sheds,
        outcome.max_backlog,
        config.admission.high_watermark,
        outcome.partial_rounds,
        outcome.deferred,
    );
    let mut ok = outcome.is_clean();
    if !observability_holds(&config, &outcome) {
        ok = false;
    }
    if outcome.sheds == 0 {
        eprintln!("  SOAK: {FACTOR}x oversubscription shed no bids");
        ok = false;
    }
    if outcome.max_backlog > config.admission.high_watermark {
        eprintln!(
            "  SOAK: backlog reached {} — tail-drop must bound it at {}",
            outcome.max_backlog, config.admission.high_watermark
        );
        ok = false;
    }
    if outcome.partial_rounds == 0 {
        eprintln!("  SOAK: no round exceeded the clearing budget");
        ok = false;
    }
    if !determinism_holds(&config, &plan, outcome.fingerprint()) {
        ok = false;
    }
    if ok {
        println!("soak: overload stayed bounded, accounted, and deterministic");
        ExitCode::SUCCESS
    } else {
        eprintln!("soak: FAILED");
        ExitCode::FAILURE
    }
}

/// The published task set every closed-loop fuzz campaign pursues.
fn loop_config(seed: u64, failure_rate: f64) -> LoopConfig {
    let tasks = vec![
        Task::with_requirement(TaskId::new(0), 0.95).unwrap(),
        Task::with_requirement(TaskId::new(1), 0.9).unwrap(),
        Task::with_requirement(TaskId::new(2), 0.85).unwrap(),
    ];
    let mut config = LoopConfig::new(EngineConfig::default().with_seed(seed), tasks, 24);
    config.failure_rate = failure_rate;
    config.failure_seed = seed ^ 0xFA11_FA11;
    config
}

/// A campaign runner, optionally with chaos faults layered over the
/// execution-failure stream. One campaign round is exactly one engine
/// round and a fresh run's ids start at 0, so the chaos rounds can be
/// armed up front.
fn loop_runner(config: LoopConfig, chaos: bool) -> CampaignRunner {
    if chaos {
        let injector = Arc::new(PlanInjector::new());
        injector.arm_flip(RoundId(1));
        injector.arm_reorder(RoundId(2));
        injector.arm_panic(RoundId(3));
        CampaignRunner::with_injector(config, injector)
    } else {
        CampaignRunner::new(config)
    }
}

/// Runs one closed-loop campaign, oracle-checks it, and verifies its
/// fingerprint is bitwise identical across worker/payment-thread
/// combinations. Returns whether everything held.
fn run_closed_loop(seed: u64, failure_rate: f64, chaos: bool) -> bool {
    const BIDDERS: u32 = 12;
    let start = Instant::now();
    let config = loop_config(seed, failure_rate);
    let budget = config.round_budget();
    let runner = loop_runner(config, chaos);
    let mut source = SyntheticBidSource::new(seed, BIDDERS);
    let report = runner.run(&mut source);
    let violations = check_campaign(&report, budget);
    println!(
        "campaign[seed={seed} rate={failure_rate} chaos={chaos}]: \
         {} rounds · covered {} · paid {:.3} · {} bids gated · \
         fingerprint {:016x} · {:.2?}",
        report.rounds_run(),
        report.covered,
        report.total_paid,
        report.rounds.iter().map(|r| r.bids_gated).sum::<usize>(),
        report.fingerprint(),
        start.elapsed()
    );
    let mut ok = violations.is_empty();
    for violation in &violations {
        eprintln!("  VIOLATION: {violation}");
    }
    if !chaos && !report.covered {
        eprintln!("  CAMPAIGN: residual re-auctions failed to reach coverage in {budget} rounds");
        ok = false;
    }
    let reference = report.fingerprint();
    for (workers, payment_threads) in [(1usize, 1usize), (2, 3), (8, 2)] {
        let mut variant = loop_config(seed, failure_rate);
        variant.engine = variant
            .engine
            .with_workers(workers)
            .with_payment_threads(payment_threads);
        let runner = loop_runner(variant, chaos);
        let mut source = SyntheticBidSource::new(seed, BIDDERS);
        let fingerprint = runner.run(&mut source).fingerprint();
        if fingerprint != reference {
            eprintln!(
                "  DETERMINISM BROKEN: workers={workers} payment_threads={payment_threads} \
                 fingerprint {fingerprint:016x} != reference {reference:016x}"
            );
            ok = false;
        }
    }
    ok
}

/// Closed-loop mode: a seeds × failure-rates × chaos matrix of auction
/// campaigns, each oracle-checked and determinism-verified.
fn closed_loop_fuzz(options: &Options) -> ExitCode {
    silence_injected_panics();
    let seeds: &[u64] = if options.ci_smoke {
        &[1, 7]
    } else {
        &[1, 7, 42, 99, 123]
    };
    let mut failed = false;
    for &seed in seeds {
        for rate in [0.0, 0.3, 0.6] {
            for chaos in [false, true] {
                if !run_closed_loop(seed, rate, chaos) {
                    failed = true;
                }
            }
        }
    }
    if failed {
        eprintln!("campaign: FAILED");
        ExitCode::FAILURE
    } else {
        println!("campaign: every closed loop covered, clean, and deterministic");
        ExitCode::SUCCESS
    }
}

/// Runs one corpus scenario end to end: drive (or replay a recorded
/// trace), enforce the pinned baseline, optionally sweep the
/// determinism matrix, and — when the scenario schedules strategic
/// bidders — run the online strategy-proofness twins. Returns whether
/// everything held.
fn run_scenario_cli(scenario: &Scenario, options: &Options) -> bool {
    let start = Instant::now();
    let outcome = if let Some(path) = &options.replay_trace {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(error) => {
                eprintln!("scenario[{}]: cannot read {path}: {error}", scenario.name);
                return false;
            }
        };
        let log = match ReplayLog::from_bytes(&bytes) {
            Ok(log) => log,
            Err(error) => {
                eprintln!("scenario[{}]: corrupt trace {path}: {error}", scenario.name);
                return false;
            }
        };
        match replay_scenario(scenario, &log) {
            Ok(outcome) => outcome,
            Err(error) => {
                eprintln!("scenario[{}]: replay failed: {error}", scenario.name);
                return false;
            }
        }
    } else {
        match run_scenario(scenario) {
            Ok(outcome) => outcome,
            Err(error) => {
                eprintln!("scenario[{}]: run failed: {error}", scenario.name);
                return false;
            }
        }
    };
    println!(
        "scenario[{} v{}]: {} rounds cleared · {} submitted, {} admitted, {} shed, \
         {} rejected, {} quarantined · paid {:.3} · fingerprint {:016x} · {:.2?}",
        scenario.name,
        scenario.version,
        outcome.rounds_cleared,
        outcome.bids_submitted,
        outcome.admitted,
        outcome.sheds,
        outcome.rejections,
        outcome.quarantined,
        outcome.payment_total,
        outcome.fingerprint(),
        start.elapsed()
    );
    let mut ok = outcome.is_clean();
    for violation in &outcome.violations {
        eprintln!("  VIOLATION: {violation}");
    }
    for violation in &outcome.campaign_violations {
        eprintln!("  VIOLATION: {violation}");
    }

    if let Some(path) = &options.record_trace {
        if let Err(error) = std::fs::write(path, outcome.log.to_bytes()) {
            eprintln!("  TRACE: cannot write {path}: {error}");
            ok = false;
        } else {
            println!(
                "  trace: {} ops ({} submits) recorded to {path}",
                outcome.log.ops.len(),
                outcome.log.submit_count()
            );
        }
    }

    if options.print_baseline {
        println!("{}", outcome.baseline().to_toml());
        return ok;
    }
    match &scenario.baseline {
        Some(pinned) => {
            if let Err(error) = pinned.check(&scenario.name, &outcome.baseline()) {
                eprintln!("  BASELINE: {error}");
                ok = false;
            }
        }
        None => {
            eprintln!(
                "  BASELINE: scenario {:?} has no pinned [baseline]; run \
                 `mcs-fuzz --scenario {} --print-baseline` and commit the block",
                scenario.name, scenario.name
            );
            ok = false;
        }
    }

    if options.verify_determinism {
        let reference = outcome.fingerprint();
        for (workers, payment_threads) in [(1usize, 1usize), (2, 4), (8, 1), (8, 4)] {
            let run = run_scenario_with(
                scenario,
                &RunOptions {
                    workers: Some(workers),
                    payment_threads: Some(payment_threads),
                    deviate: false,
                    profiling: true,
                },
            );
            match run {
                Ok(variant) => {
                    if variant.fingerprint() != reference {
                        eprintln!(
                            "  DETERMINISM BROKEN: workers={workers} \
                             payment_threads={payment_threads} fingerprint {:016x} \
                             != reference {reference:016x}",
                            variant.fingerprint()
                        );
                        ok = false;
                    }
                    // Fingerprints alone once hid a profiled-cell gap:
                    // every sweep cell must ALSO reproduce the pinned
                    // totals bit for bit, profiling on or off.
                    if variant.payment_total.to_bits() != outcome.payment_total.to_bits() {
                        eprintln!(
                            "  DETERMINISM BROKEN: workers={workers} \
                             payment_threads={payment_threads} payment total \
                             {:?} != reference {:?}",
                            variant.payment_total, outcome.payment_total
                        );
                        ok = false;
                    }
                    if let Some(pinned) = &scenario.baseline {
                        if let Err(error) = pinned.check(&scenario.name, &variant.baseline()) {
                            eprintln!(
                                "  BASELINE (workers={workers} \
                                 payment_threads={payment_threads}): {error}"
                            );
                            ok = false;
                        }
                    }
                }
                Err(error) => {
                    eprintln!("  DETERMINISM: variant run failed: {error}");
                    ok = false;
                }
            }
        }
    }

    if scenario.strategy.is_some() && options.replay_trace.is_none() {
        match check_online_sp(scenario, 1e-6) {
            Ok(report) => {
                println!(
                    "  online SP: {} deviations played, {} profitable",
                    report.checked,
                    report.violations.len()
                );
                for violation in &report.violations {
                    eprintln!("  SP VIOLATION: {violation}");
                }
                if !report.is_clean() || !report.deviating.is_clean() {
                    ok = false;
                }
            }
            Err(error) => {
                eprintln!("  SP: twin sweep failed: {error}");
                ok = false;
            }
        }
    }
    ok
}

/// Corpus mode: resolve `--scenario` to one file or the whole corpus
/// and run each through [`run_scenario_cli`].
fn scenario_fuzz(options: &Options) -> ExitCode {
    let target = options.scenario.as_deref().expect("dispatched on Some");
    let paths = if target == "all" {
        match mcs_harness::scenario::corpus_paths() {
            Ok(paths) => paths,
            Err(error) => {
                eprintln!("scenario: {error}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };
    let mut failed = false;
    let mut ran = 0usize;
    if target == "all" {
        for path in &paths {
            match mcs_harness::scenario::load(&path.display().to_string()) {
                Ok(scenario) => {
                    ran += 1;
                    if !run_scenario_cli(&scenario, options) {
                        failed = true;
                    }
                }
                Err(error) => {
                    eprintln!("scenario[{}]: {error}", path.display());
                    failed = true;
                }
            }
        }
        if ran == 0 {
            eprintln!("scenario: corpus is empty");
            failed = true;
        }
    } else {
        match mcs_harness::scenario::load(target) {
            Ok(scenario) => {
                if !run_scenario_cli(&scenario, options) {
                    failed = true;
                }
            }
            Err(error) => {
                eprintln!("scenario[{target}]: {error}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("scenario: FAILED");
        ExitCode::FAILURE
    } else {
        println!("scenario: corpus clean, baselines pinned, mechanism truthful");
        ExitCode::SUCCESS
    }
}

/// The node hosting a scenario topology's first active region — a chaos
/// target that is guaranteed to actually receive traffic.
fn cluster_busy_node(scenario: &Scenario, nodes: u32, bands: u32) -> u32 {
    let topology = scenario_topology(scenario, bands);
    let region = topology
        .active_regions()
        .next()
        .expect("scenario publishes tasks");
    topology.node_of_region(region, nodes)
}

/// Runs one scenario through the full cluster battery: 1-node vs N-node
/// equivalence, the mirror oracle, the three chaos campaigns, and (with
/// `--verify-determinism`) a wider node matrix plus loopback-vs-TCP
/// transport equivalence. Returns whether everything held.
fn run_cluster_cli(scenario: &Scenario, options: &Options) -> bool {
    let (nodes, bands) = (options.nodes.max(1), options.bands.max(1));
    let start = Instant::now();
    let single = match run_cluster_scenario(scenario, 1, bands, &FaultPlan::new()) {
        Ok(run) => run,
        Err(error) => {
            eprintln!("cluster[{}]: 1-node run failed: {error}", scenario.name);
            return false;
        }
    };
    let deployed = match run_cluster_scenario(scenario, nodes, bands, &FaultPlan::new()) {
        Ok(run) => run,
        Err(error) => {
            eprintln!(
                "cluster[{}]: {nodes}-node run failed: {error}",
                scenario.name
            );
            return false;
        }
    };
    println!(
        "cluster[{} v{}]: {} rounds · {} bands · 1-node {:016x} vs {nodes}-node {:016x} · {:.2?}",
        scenario.name,
        scenario.version,
        scenario.rounds,
        bands,
        single.fingerprint,
        deployed.fingerprint,
        start.elapsed()
    );
    let mut ok = true;
    if deployed.fingerprint != single.fingerprint {
        eprintln!(
            "  EQUIVALENCE BROKEN: {nodes}-node fingerprint {:016x} != 1-node {:016x}",
            deployed.fingerprint, single.fingerprint
        );
        ok = false;
    }
    let mirror = ClusterMirror::of_scenario(scenario, bands).fingerprint();
    if mirror != single.fingerprint {
        eprintln!(
            "  MIRROR DISAGREES: ground truth {mirror:016x} != deployment {:016x}",
            single.fingerprint
        );
        ok = false;
    }

    // Chaos: node loss must fail over with an unchanged fingerprint.
    let target = cluster_busy_node(scenario, nodes, bands);
    let mut plan = FaultPlan::new();
    plan.schedule(1, Fault::NodeLoss(target));
    match run_cluster_scenario(scenario, nodes, bands, &plan) {
        Ok(run) => {
            if !run.promoted_nodes().contains(&target) {
                eprintln!("  NODE LOSS: node {target} never failed over to its follower");
                ok = false;
            }
            if run.fingerprint != single.fingerprint {
                eprintln!(
                    "  NODE LOSS: post-failover fingerprint {:016x} != fault-free {:016x}",
                    run.fingerprint, single.fingerprint
                );
                ok = false;
            } else {
                println!("  node loss: node {target} promoted its follower, fingerprint unchanged");
            }
        }
        Err(error) => {
            eprintln!("  NODE LOSS: campaign failed: {error}");
            ok = false;
        }
    }

    // Chaos: a partition must quarantine the round with a post-mortem,
    // never silently diverge.
    let mut plan = FaultPlan::new();
    plan.schedule(1, Fault::NetPartition(target));
    match run_cluster_scenario(scenario, nodes, bands, &plan) {
        Ok(run) => {
            let quarantine = run
                .outcome
                .quarantines
                .iter()
                .find(|q| q.round == 1 && q.post_mortem.contains("\"cause\":\"partition\""));
            if run.quarantined_rounds() == 0 || quarantine.is_none() {
                eprintln!(
                    "  PARTITION: round 1 was not quarantined with a typed partition post-mortem"
                );
                ok = false;
            } else {
                println!(
                    "  partition: {} round(s) quarantined with complete post-mortems",
                    run.quarantined_rounds()
                );
            }
        }
        Err(error) => {
            eprintln!("  PARTITION: campaign failed: {error}");
            ok = false;
        }
    }

    // Chaos: duplicate delivery must be absorbed by the idempotency
    // cache.
    let mut plan = FaultPlan::new();
    plan.schedule(0, Fault::DuplicateDelivery);
    plan.schedule(2, Fault::DuplicateDelivery);
    match run_cluster_scenario(scenario, nodes, bands, &plan) {
        Ok(run) if run.fingerprint == single.fingerprint => {
            println!("  duplicate delivery: absorbed, fingerprint unchanged");
        }
        Ok(run) => {
            eprintln!(
                "  DUPLICATE DELIVERY: fingerprint drifted to {:016x} (expected {:016x})",
                run.fingerprint, single.fingerprint
            );
            ok = false;
        }
        Err(error) => {
            eprintln!("  DUPLICATE DELIVERY: campaign failed: {error}");
            ok = false;
        }
    }

    if options.verify_determinism {
        for other in [2u32, 4, 8] {
            if other == nodes {
                continue;
            }
            match run_cluster_scenario(scenario, other, bands, &FaultPlan::new()) {
                Ok(run) if run.fingerprint == single.fingerprint => {}
                Ok(run) => {
                    eprintln!(
                        "  EQUIVALENCE BROKEN: {other}-node fingerprint {:016x} != {:016x}",
                        run.fingerprint, single.fingerprint
                    );
                    ok = false;
                }
                Err(error) => {
                    eprintln!("  EQUIVALENCE: {other}-node run failed: {error}");
                    ok = false;
                }
            }
        }
        match run_cluster_scenario_tcp(scenario, nodes, bands) {
            Ok(run) if run.fingerprint == single.fingerprint => {
                println!("  transport: TCP deployment matches loopback bitwise");
            }
            Ok(run) => {
                eprintln!(
                    "  TRANSPORT DIVERGED: TCP fingerprint {:016x} != loopback {:016x}",
                    run.fingerprint, single.fingerprint
                );
                ok = false;
            }
            Err(error) => {
                eprintln!("  TRANSPORT: TCP run failed: {error}");
                ok = false;
            }
        }
    }
    ok
}

/// Deployment mode: the whole pinned corpus through the cluster battery.
fn cluster_fuzz(options: &Options) -> ExitCode {
    let paths = match mcs_harness::scenario::corpus_paths() {
        Ok(paths) => paths,
        Err(error) => {
            eprintln!("cluster: {error}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    let mut ran = 0usize;
    for path in &paths {
        match mcs_harness::scenario::load(&path.display().to_string()) {
            Ok(scenario) => {
                ran += 1;
                if !run_cluster_cli(&scenario, options) {
                    failed = true;
                }
            }
            Err(error) => {
                eprintln!("cluster[{}]: {error}", path.display());
                failed = true;
            }
        }
    }
    if ran == 0 {
        eprintln!("cluster: corpus is empty");
        failed = true;
    }
    if failed {
        eprintln!("cluster: FAILED");
        ExitCode::FAILURE
    } else {
        println!("cluster: {ran} scenarios deployment-invariant, chaos survived, mirrors agree");
        ExitCode::SUCCESS
    }
}

/// The fixed CI smoke matrix: a few seeds over both mechanism families,
/// each verified clean and bitwise identical across worker counts.
fn ci_smoke() -> ExitCode {
    let mut failed = false;
    for seed in [1u64, 7, 42] {
        for tasks in [1usize, 3] {
            let config = CampaignConfig {
                seed,
                rounds: 40,
                bids_per_round: 8,
                task_count: tasks,
                workers: 1,
                payment_threads: 1,
                drain_every: 4,
                admission: AdmissionConfig::default(),
                trace_headroom: 1,
                oracle: OracleConfig::default(),
            };
            let plan = FaultPlan::generate(seed, config.rounds, 0.35);
            let mut config = config;
            config.trace_headroom = plan.trace_headroom(config.rounds);
            let label = format!("smoke[seed={seed} tasks={tasks}]");
            let outcome = run_one(&config, &plan, &label);
            if !outcome.is_clean() {
                failed = true;
            }
            if !observability_holds(&config, &outcome) {
                failed = true;
            }
            if !determinism_holds(&config, &plan, outcome.fingerprint()) {
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("ci-smoke: FAILED");
        ExitCode::FAILURE
    } else {
        println!("ci-smoke: all campaigns clean and deterministic");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let options = match Options::parse() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if options.cluster {
        return cluster_fuzz(&options);
    }
    if options.scenario.is_some() {
        return scenario_fuzz(&options);
    }
    if options.campaign_loop {
        return closed_loop_fuzz(&options);
    }
    if options.soak {
        return soak(&options);
    }
    if options.ci_smoke {
        return ci_smoke();
    }

    let mut config = options.campaign();
    let plan = FaultPlan::generate(options.seed, options.rounds, options.faults);
    config.trace_headroom = plan.trace_headroom(config.rounds);
    let outcome = run_one(&config, &plan, "campaign");
    let mut ok = outcome.is_clean();
    if !observability_holds(&config, &outcome) {
        ok = false;
    }
    if options.verify_determinism && !determinism_holds(&config, &plan, outcome.fingerprint()) {
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
