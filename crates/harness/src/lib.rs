//! # mcs-harness — deterministic chaos campaigns for the auction platform
//!
//! The paper's whole premise is *execution uncertainty*: users fail
//! probabilistically and the mechanism must stay feasible, individually
//! rational, and truthful anyway. This crate attacks the *platform* the
//! same way the world would — malformed bids, worker panics, delayed
//! round closes, flipped execution reports, mid-stream crashes — and
//! checks after every surviving round that the paper's economic
//! guarantees still hold.
//!
//! The moving parts:
//!
//! * [`plan`] — the fault taxonomy ([`Fault`](plan::Fault)) and per-round
//!   schedules ([`FaultPlan`](plan::FaultPlan)), derivable from a seed.
//! * [`stream`] — deterministic bid-stream synthesis with faults woven
//!   in; every round draws from its own seed-derived stream.
//! * [`inject`] — the [`FaultInjector`](mcs_platform::fault::FaultInjector)
//!   implementation that arms shard panics, report flips, and queue
//!   reorders onto concrete engine round ids.
//! * [`oracle`] — the economic-invariant checks: coverage feasibility,
//!   allocation fidelity, quote structure, ex-post IR, critical-bid
//!   monotonicity, and settlement/ledger conservation.
//! * [`campaign`] — the runner tying it together; a campaign is a pure
//!   function of `(CampaignConfig, FaultPlan)` whose
//!   [`fingerprint`](campaign::CampaignOutcome::fingerprint) is identical
//!   for any worker or payment-thread count.
//! * [`closed_loop`] — oracles over the *auction* campaigns run by
//!   `mcs-campaign` (residual monotonicity, termination, calibration
//!   sanity, payout conservation); `mcs-fuzz --campaign` drives those
//!   loops under the same fault flavors.
//! * [`cluster`] — chaos at the deployment layer: a fault-injecting
//!   [`NodeTransport`](mcs_cluster::transport::NodeTransport) wrapper
//!   (node loss, partition, duplicate delivery), the scenario→cluster
//!   bridge, and the [`ClusterMirror`](cluster::ClusterMirror) ground-
//!   truth oracle; `mcs-fuzz --cluster` drives it.
//!
//! The `mcs-fuzz` binary drives campaigns from the command line; see
//! `scripts/ci.sh` (smoke) and `scripts/fuzz.sh` (long campaigns).
//!
//! ## Reproducing a failure
//!
//! Every campaign is identified by `(seed, rounds, intensity, tasks)`.
//! Re-run `mcs-fuzz --seed S --rounds N --faults F --tasks T` with the
//! reported values and the identical campaign — same bids, same faults,
//! same round ids, same fingerprint — replays.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod closed_loop;
pub mod cluster;
pub mod inject;
pub mod oracle;
pub mod plan;
pub mod scenario;
pub mod stream;

/// Convenient glob import: `use mcs_harness::prelude::*;`.
pub mod prelude {
    pub use crate::campaign::{
        run_campaign, silence_injected_panics, CampaignConfig, CampaignOutcome,
    };
    pub use crate::closed_loop::{check_campaign, ClosedLoopViolation};
    pub use crate::cluster::{
        run_cluster_scenario, run_cluster_scenario_tcp, scenario_params, scenario_rounds,
        scenario_topology, ClusterMirror, ClusterRun, FaultyTransport,
    };
    pub use crate::inject::{PlanInjector, CHAOS_PREFIX};
    pub use crate::oracle::{check_round, OracleConfig, OracleViolation};
    pub use crate::plan::{Fault, FaultPlan};
    pub use crate::scenario::{
        check_online_sp, replay_scenario, run_scenario, run_scenario_with, RunOptions, Scenario,
        ScenarioError, ScenarioOutcome, SpReport,
    };
    pub use crate::stream::{round_actions, splitmix64, Action};
}
