//! Fault taxonomy and per-round campaign schedules.
//!
//! A [`FaultPlan`] maps *logical* campaign rounds to the [`Fault`]s a
//! campaign injects there. Plans are plain data: build one by hand to pin
//! a regression, or derive one from a seed with [`FaultPlan::generate`] so
//! an entire campaign is reproducible from `(seed, rounds, intensity)`
//! alone.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injectable fault, tagged by the pipeline stage it attacks.
///
/// Ingest faults materialise as deliberately malformed bids inserted into
/// the round's bid stream; the engine must reject each with the matching
/// typed [`IngestError`](mcs_platform::ingest::IngestError). Batch faults
/// perturb round-closing (extra ticks, pending-queue reorder). Shard and
/// settle faults arm the campaign's
/// [`PlanInjector`](crate::inject::PlanInjector) for the engine rounds the
/// logical round closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fault {
    /// Ingest: a bid whose declared cost is NaN.
    NanCostBid,
    /// Ingest: a bid whose declared cost is negative.
    NegativeCostBid,
    /// Ingest: a bid declaring a PoS outside `[0, 1)`.
    OutOfRangePosBid,
    /// Ingest: a bid declaring no tasks at all.
    EmptyTaskSetBid,
    /// Ingest: a bid referencing an unpublished task.
    UnknownTaskBid,
    /// Ingest: a bid declaring the same task twice.
    DuplicateTaskBid,
    /// Ingest: a second bid from a user already in the round.
    DuplicateUserBid,
    /// Ingest: a bid declaring 256 task entries (all unpublished).
    OversizedBid,
    /// Batch: inject this many extra engine ticks mid-round, possibly
    /// closing the round early on its tick budget and splitting it.
    DelayedTicks(u32),
    /// Batch: reverse the closed-but-undrained round queue before the
    /// shard pool sees it. Results are keyed by round id, so outcomes
    /// must not change.
    ReorderPending,
    /// Shard: panic the worker clearing the round; the degrade path must
    /// quarantine it and every other round must be untouched.
    ShardPanic,
    /// Shard: replace the round's bids with a single bidder too weak to
    /// meet any requirement, forcing an `Infeasible` quarantine.
    InfeasibleRound,
    /// Settle: flip every execution report of the round before payout.
    FlipReports,
    /// Settle: after the next drain, checkpoint the engine, drop it, and
    /// rebuild from the checkpoint mid-campaign.
    DropAndRebuild,
    /// Admission: a burst of this-many× the round's base bids arrives
    /// back-to-back before the round's own bids, spiking the backlog.
    BurstArrival(u32),
    /// Admission: sustain this-many× oversubscription across the round —
    /// after every base bid, `factor − 1` extra bids arrive.
    Oversubscribe(u32),
    /// Cluster: the node's primary replica dies mid-round — its first
    /// `Clear` of the fault round still lands, every later call is
    /// unreachable. The coordinator must promote the follower and the
    /// cluster fingerprint must not change.
    NodeLoss(u32),
    /// Cluster: the node is fully partitioned for the fault round (both
    /// replicas unreachable); the round must quarantine with a typed
    /// cause and a complete post-mortem, never a silent partial clear.
    NetPartition(u32),
    /// Cluster: every `Clear` of the fault round is delivered twice; the
    /// node-side idempotency cache must absorb the duplicates bit-free.
    DuplicateDelivery,
}

impl Fault {
    /// The pipeline stage this fault attacks.
    pub fn stage(&self) -> &'static str {
        match self {
            Fault::NanCostBid
            | Fault::NegativeCostBid
            | Fault::OutOfRangePosBid
            | Fault::EmptyTaskSetBid
            | Fault::UnknownTaskBid
            | Fault::DuplicateTaskBid
            | Fault::DuplicateUserBid
            | Fault::OversizedBid => "ingest",
            Fault::DelayedTicks(_) | Fault::ReorderPending => "batch",
            Fault::ShardPanic | Fault::InfeasibleRound => "shard",
            Fault::FlipReports | Fault::DropAndRebuild => "settle",
            Fault::BurstArrival(_) | Fault::Oversubscribe(_) => "admission",
            // Cluster faults attack the coordinator/node layer, never the
            // single-engine pipeline; `FaultPlan::generate` deliberately
            // excludes them so existing engine campaigns are unchanged.
            Fault::NodeLoss(_) | Fault::NetPartition(_) | Fault::DuplicateDelivery => "cluster",
        }
    }

    /// Whether this fault inserts a malformed bid the engine must reject.
    pub fn is_ingest(&self) -> bool {
        self.stage() == "ingest"
    }
}

/// A per-round fault schedule for one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan: the campaign runs fault-free.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `fault` for logical round `round`.
    pub fn schedule(&mut self, round: u64, fault: Fault) -> &mut Self {
        self.faults.entry(round).or_default().push(fault);
        self
    }

    /// The faults scheduled for logical round `round`.
    pub fn faults_for(&self, round: u64) -> &[Fault] {
        self.faults.get(&round).map_or(&[], Vec::as_slice)
    }

    /// The rounds with at least one scheduled fault, ascending.
    pub fn rounds(&self) -> impl Iterator<Item = u64> + '_ {
        self.faults.keys().copied()
    }

    /// Total number of scheduled faults.
    pub fn fault_count(&self) -> usize {
        self.faults.values().map(Vec::len).sum()
    }

    /// The trace-ring headroom multiplier a campaign over `rounds`
    /// logical rounds needs for this plan: 1 with no overload faults,
    /// otherwise enough extra capacity to hold every burst and
    /// oversubscribed bid without the ring wrapping.
    pub fn trace_headroom(&self, rounds: u64) -> usize {
        let extra: u64 = self
            .faults
            .values()
            .flatten()
            .map(|fault| match fault {
                Fault::BurstArrival(factor) => *factor as u64,
                Fault::Oversubscribe(factor) => (*factor as u64).saturating_sub(1),
                _ => 0,
            })
            .sum();
        if extra == 0 {
            return 1;
        }
        let rounds = rounds.max(1);
        (rounds + extra).div_ceil(rounds) as usize
    }

    /// Derives a plan from a seed: each of the `rounds` logical rounds
    /// draws one uniformly chosen fault with probability `intensity`.
    /// Identical `(seed, rounds, intensity)` always yields an identical
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not in `[0, 1]`.
    pub fn generate(seed: u64, rounds: u64, intensity: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for round in 0..rounds {
            if !rng.gen_bool(intensity) {
                continue;
            }
            let fault = match rng.gen_range(0u32..16) {
                0 => Fault::NanCostBid,
                1 => Fault::NegativeCostBid,
                2 => Fault::OutOfRangePosBid,
                3 => Fault::EmptyTaskSetBid,
                4 => Fault::UnknownTaskBid,
                5 => Fault::DuplicateTaskBid,
                6 => Fault::DuplicateUserBid,
                7 => Fault::OversizedBid,
                8 => Fault::DelayedTicks(rng.gen_range(1u32..6)),
                9 => Fault::ReorderPending,
                10 => Fault::ShardPanic,
                11 => Fault::InfeasibleRound,
                12 => Fault::FlipReports,
                13 => Fault::DropAndRebuild,
                14 => Fault::BurstArrival(rng.gen_range(2u32..6)),
                _ => Fault::Oversubscribe(rng.gen_range(2u32..11)),
            };
            plan.schedule(round, fault);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_lookup() {
        let mut plan = FaultPlan::new();
        plan.schedule(3, Fault::ShardPanic)
            .schedule(3, Fault::FlipReports)
            .schedule(7, Fault::NanCostBid);
        assert_eq!(plan.faults_for(3), &[Fault::ShardPanic, Fault::FlipReports]);
        assert_eq!(plan.faults_for(4), &[] as &[Fault]);
        assert_eq!(plan.rounds().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(plan.fault_count(), 3);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = FaultPlan::generate(99, 200, 0.5);
        let b = FaultPlan::generate(99, 200, 0.5);
        assert_eq!(a, b);
        assert!(a.fault_count() > 0, "intensity 0.5 over 200 rounds");
        let c = FaultPlan::generate(100, 200, 0.5);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn trace_headroom_scales_with_scheduled_overload() {
        let mut plan = FaultPlan::new();
        assert_eq!(plan.trace_headroom(20), 1);
        plan.schedule(0, Fault::ShardPanic);
        assert_eq!(plan.trace_headroom(20), 1);
        // 10× oversubscription on every one of 20 rounds: 180 extra
        // round-equivalents → 10× the baseline capacity.
        for round in 0..20 {
            plan.schedule(round, Fault::Oversubscribe(10));
        }
        assert_eq!(plan.trace_headroom(20), 10);
    }

    #[test]
    fn cluster_faults_are_typed_but_never_generated() {
        assert_eq!(Fault::NodeLoss(2).stage(), "cluster");
        assert_eq!(Fault::NetPartition(0).stage(), "cluster");
        assert_eq!(Fault::DuplicateDelivery.stage(), "cluster");
        // Engine campaigns must never draw a cluster fault: the stage
        // census below (`every_stage_is_reachable_from_generation`)
        // would catch one, but check directly too.
        let plan = FaultPlan::generate(7, 2000, 1.0);
        assert!(plan
            .rounds()
            .flat_map(|r| plan.faults_for(r).iter())
            .all(|fault| fault.stage() != "cluster"));
    }

    #[test]
    fn zero_intensity_is_the_empty_plan() {
        assert_eq!(FaultPlan::generate(1, 50, 0.0), FaultPlan::new());
    }

    #[test]
    fn every_stage_is_reachable_from_generation() {
        let plan = FaultPlan::generate(7, 2000, 1.0);
        let stages: std::collections::BTreeSet<&str> = plan
            .rounds()
            .flat_map(|r| plan.faults_for(r).iter().map(Fault::stage))
            .collect();
        assert_eq!(
            stages.into_iter().collect::<Vec<_>>(),
            vec!["admission", "batch", "ingest", "settle", "shard"]
        );
    }
}
