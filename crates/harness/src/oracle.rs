//! Economic-invariant oracles: the paper's guarantees, checked round by
//! round against what the platform actually produced.
//!
//! After every surviving round a campaign calls [`check_round`] with the
//! round's declared profile (from the campaign's mirror batcher), the
//! engine's [`ClearedRound`], and its [`RoundSettlement`]. The oracle
//! re-derives what the mechanism *should* have done and reports every
//! discrepancy as a typed [`OracleViolation`]:
//!
//! * **Coverage feasibility** — winners jointly meet `Σ q_i^j ≥ Q_j` for
//!   every published task.
//! * **Allocation fidelity** — re-running winner determination on the
//!   declared profile reproduces the engine's allocation exactly.
//! * **Quote structure** — `success − failure = α` for every quote (both
//!   branches price the same critical bid).
//! * **Ex-post individual rationality** — each winner's expected utility
//!   from her quoted rewards is non-negative.
//! * **Critical-bid monotonicity** — padding a winner's declared PoS
//!   toward the critical value implied by her quote keeps her winning at
//!   an unchanged payment.
//! * **Settlement consistency** — each payout equals the quoted branch of
//!   the stored report, and the round total adds up.
//! * **Trace completeness** ([`check_round_trace`]) — the flight
//!   recorder's per-round trace holds every admitted bid, a balanced and
//!   correctly nested stage-span tree, and the clearing/settlement
//!   milestones with the right payloads.
//!
//! Campaign-level checks (ledger conservation, zero silent round drops,
//! stream synchronisation) live in [`crate::campaign`] and reuse the same
//! violation type.

use std::fmt;

use mcs_obs::{EventKind, Stage, TraceEvent};

use mcs_core::analysis::{
    check_critical_bid_padding, expected_utility_from_quotes, implied_critical_pos,
    meets_all_requirements, social_cost, CriticalPadViolation,
};
use mcs_core::multi_task::MultiTaskMechanism;
use mcs_core::single_task::SingleTaskMechanism;
use mcs_core::types::{TypeProfile, UserId};
use mcs_platform::batch::RoundId;
use mcs_platform::config::EngineConfig;
use mcs_platform::settle::RoundSettlement;
use mcs_platform::shard::ClearedRound;

/// Oracle tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Absolute tolerance for payment and utility comparisons.
    pub tolerance: f64,
    /// Pad fractions for the critical-bid monotonicity check: each moves
    /// the winner's declaration this fraction of the way toward her
    /// critical value.
    pub pads: Vec<f64>,
    /// How many winners per round get the (mechanism-re-running)
    /// critical-bid check; the cheap checks always cover all of them.
    pub max_padded_winners: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            tolerance: 1e-6,
            pads: vec![0.5, 0.9],
            max_padded_winners: 2,
        }
    }
}

/// One violated invariant, attributed to a round (and user, where it
/// applies).
#[derive(Debug, Clone, PartialEq)]
pub enum OracleViolation {
    /// The winner set does not cover some task's PoS requirement.
    CoverageShortfall {
        /// The offending round.
        round: RoundId,
    },
    /// Re-running winner determination disagrees with the engine's
    /// allocation.
    AllocationMismatch {
        /// The offending round.
        round: RoundId,
        /// Winners the engine recorded.
        engine: Vec<UserId>,
        /// Winners the oracle recomputed.
        oracle: Vec<UserId>,
    },
    /// The recorded social cost drifted from `Σ c_i` over the winners.
    SocialCostDrift {
        /// The offending round.
        round: RoundId,
        /// The engine's recorded social cost.
        recorded: f64,
        /// The oracle's recomputed social cost.
        recomputed: f64,
    },
    /// A quote's branches are not exactly `α` apart.
    QuoteSpread {
        /// The offending round.
        round: RoundId,
        /// The quoted winner.
        user: UserId,
        /// The observed `success − failure` spread.
        spread: f64,
    },
    /// A winner's expected utility from her quotes is negative.
    IrViolation {
        /// The offending round.
        round: RoundId,
        /// The losing winner.
        user: UserId,
        /// Her expected utility.
        utility: f64,
    },
    /// Padding a winner toward her critical value demoted her.
    Demoted {
        /// The offending round.
        round: RoundId,
        /// The demoted winner.
        user: UserId,
        /// The pad fraction that demoted her.
        pad: f64,
    },
    /// Padding a winner toward her critical value moved her payment.
    PaymentChanged {
        /// The offending round.
        round: RoundId,
        /// The affected winner.
        user: UserId,
        /// The pad fraction at which the payment moved.
        pad: f64,
        /// The truthful success reward.
        reference: f64,
        /// The padded success reward.
        padded: f64,
    },
    /// A payout disagrees with the quoted branch of the stored report.
    ReportPayoutMismatch {
        /// The offending round.
        round: RoundId,
        /// The mis-paid winner.
        user: UserId,
    },
    /// Money created or destroyed between settlements and the ledger.
    LedgerDrift {
        /// What drifted and by how much.
        detail: String,
    },
    /// A closed round vanished: neither cleared nor quarantined.
    SilentDrop {
        /// The dropped round.
        round: RoundId,
    },
    /// The campaign's mirror batcher and the engine disagreed — an
    /// accepted/rejected bid mismatch or a round-id drift.
    StreamDesync {
        /// What went out of sync.
        detail: String,
    },
    /// Bid conservation broke under load shedding: the engine's
    /// admitted/rejected/shed counters do not partition the submitted
    /// bids, or a shed decision diverged from the mirror's.
    ShedUnaccounted {
        /// Which counter (or decision) broke and by how much.
        detail: String,
    },
    /// The round's flight-recorder trace is missing events or its span
    /// tree is malformed.
    TraceIncomplete {
        /// The offending round.
        round: RoundId,
        /// What the trace is missing or got wrong.
        detail: String,
    },
    /// The clearing-kernel profiling counters do not satisfy their
    /// conservation laws (see [`check_kernel`]) — the profiler is
    /// miscounting, or a drain lost part of a round's counts.
    KernelUnbalanced {
        /// Which conservation law broke and the numbers involved.
        detail: String,
    },
    /// The oracle itself failed to evaluate an invariant.
    OracleError {
        /// The offending round.
        round: RoundId,
        /// The rendered error.
        detail: String,
    },
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::CoverageShortfall { round } => {
                write!(f, "{round}: winners do not cover every task requirement")
            }
            OracleViolation::AllocationMismatch {
                round,
                engine,
                oracle,
            } => write!(
                f,
                "{round}: engine allocation {engine:?} != recomputed {oracle:?}"
            ),
            OracleViolation::SocialCostDrift {
                round,
                recorded,
                recomputed,
            } => write!(
                f,
                "{round}: social cost {recorded} != recomputed {recomputed}"
            ),
            OracleViolation::QuoteSpread {
                round,
                user,
                spread,
            } => write!(
                f,
                "{round}: {user} quote spread {spread} is not the reward scale α"
            ),
            OracleViolation::IrViolation {
                round,
                user,
                utility,
            } => write!(f, "{round}: {user} has negative expected utility {utility}"),
            OracleViolation::Demoted { round, user, pad } => write!(
                f,
                "{round}: {user} padded {pad} of the way to critical stopped winning"
            ),
            OracleViolation::PaymentChanged {
                round,
                user,
                pad,
                reference,
                padded,
            } => write!(
                f,
                "{round}: {user} payment moved {reference} -> {padded} at pad {pad}"
            ),
            OracleViolation::ReportPayoutMismatch { round, user } => {
                write!(f, "{round}: {user} payout disagrees with quoted branch")
            }
            OracleViolation::LedgerDrift { detail } => write!(f, "ledger drift: {detail}"),
            OracleViolation::SilentDrop { round } => {
                write!(f, "{round}: closed but neither cleared nor quarantined")
            }
            OracleViolation::StreamDesync { detail } => write!(f, "stream desync: {detail}"),
            OracleViolation::ShedUnaccounted { detail } => {
                write!(f, "shed unaccounted: {detail}")
            }
            OracleViolation::TraceIncomplete { round, detail } => {
                write!(f, "{round}: trace incomplete: {detail}")
            }
            OracleViolation::KernelUnbalanced { detail } => {
                write!(f, "kernel counters unbalanced: {detail}")
            }
            OracleViolation::OracleError { round, detail } => {
                write!(f, "{round}: oracle error: {detail}")
            }
        }
    }
}

/// Checks the clearing-kernel profiling counters' conservation laws
/// over a drained [`KernelSnapshot`](mcs_platform::metrics::KernelSnapshot):
///
/// * every bisection probe is accounted for exactly once —
///   `probes_saved_warm_start + probes_saved_loss_scan + probes_run ==
///   probes_requested`;
/// * every prepare resolved to exactly one sync mode —
///   `reuse_hits + sync_patched + sync_reflattened == prepares`
///   (which also gives `reuse_hits ≤ prepares`, the checkout bound);
/// * a stale-bound re-evaluation implies a pop —
///   `stale_reevals ≤ heap_pops`.
///
/// The counters are pure telemetry, so a broken law never means wrong
/// payments — it means the profiler itself is lying, which would poison
/// every perf conclusion drawn from it.
pub fn check_kernel(kernel: &mcs_platform::metrics::KernelSnapshot) -> Vec<OracleViolation> {
    let mut violations = Vec::new();
    let probes_accounted =
        kernel.probes_saved_warm_start + kernel.probes_saved_loss_scan + kernel.probes_run;
    if probes_accounted != kernel.probes_requested {
        violations.push(OracleViolation::KernelUnbalanced {
            detail: format!(
                "probes: saved_warm_start {} + saved_loss_scan {} + run {} = {probes_accounted} \
                 != requested {}",
                kernel.probes_saved_warm_start,
                kernel.probes_saved_loss_scan,
                kernel.probes_run,
                kernel.probes_requested
            ),
        });
    }
    let prepares_accounted = kernel.reuse_hits + kernel.sync_patched + kernel.sync_reflattened;
    if prepares_accounted != kernel.prepares {
        violations.push(OracleViolation::KernelUnbalanced {
            detail: format!(
                "prepares: reuse_hits {} + sync_patched {} + sync_reflattened {} = \
                 {prepares_accounted} != prepares {}",
                kernel.reuse_hits, kernel.sync_patched, kernel.sync_reflattened, kernel.prepares
            ),
        });
    }
    if kernel.stale_reevals > kernel.heap_pops {
        violations.push(OracleViolation::KernelUnbalanced {
            detail: format!(
                "stale_reevals {} exceeds heap_pops {}",
                kernel.stale_reevals, kernel.heap_pops
            ),
        });
    }
    violations
}

/// Checks every per-round invariant; see the module docs for the list.
/// Returns all violations found (empty = the round is clean).
pub fn check_round(
    oracle: &OracleConfig,
    profile: &TypeProfile,
    cleared: &ClearedRound,
    settlement: &RoundSettlement,
    engine: &EngineConfig,
) -> Vec<OracleViolation> {
    let round = cleared.id;
    let mut violations = Vec::new();

    if !meets_all_requirements(profile, &cleared.allocation) {
        violations.push(OracleViolation::CoverageShortfall { round });
    }

    match social_cost(profile, &cleared.allocation) {
        Ok(recomputed) if (recomputed - cleared.social_cost).abs() > 1e-9 => {
            violations.push(OracleViolation::SocialCostDrift {
                round,
                recorded: cleared.social_cost,
                recomputed,
            });
        }
        Ok(_) => {}
        Err(error) => violations.push(OracleViolation::OracleError {
            round,
            detail: error.to_string(),
        }),
    }

    // The engine picks the mechanism by the round's task count; rebuild
    // the same one to replay its decisions.
    let single;
    let multi;
    let mechanism: &dyn ReplayMechanism = if profile.is_single_task() {
        match SingleTaskMechanism::new(engine.epsilon, engine.alpha) {
            Ok(m) => {
                single = m;
                &single
            }
            Err(error) => {
                violations.push(OracleViolation::OracleError {
                    round,
                    detail: error.to_string(),
                });
                return violations;
            }
        }
    } else {
        match MultiTaskMechanism::new(engine.alpha) {
            Ok(m) => {
                multi = m;
                &multi
            }
            Err(error) => {
                violations.push(OracleViolation::OracleError {
                    round,
                    detail: error.to_string(),
                });
                return violations;
            }
        }
    };

    match mechanism.winners(profile) {
        Ok(oracle_winners) => {
            let engine_winners: Vec<UserId> = cleared.allocation.winners().collect();
            if engine_winners != oracle_winners {
                violations.push(OracleViolation::AllocationMismatch {
                    round,
                    engine: engine_winners,
                    oracle: oracle_winners,
                });
            }
        }
        Err(error) => violations.push(OracleViolation::OracleError {
            round,
            detail: error.to_string(),
        }),
    }

    for (padded_so_far, (&user, quote)) in cleared.quotes.iter().enumerate() {
        let spread = quote.success - quote.failure;
        if (spread - engine.alpha).abs() > oracle.tolerance {
            violations.push(OracleViolation::QuoteSpread {
                round,
                user,
                spread,
            });
        }

        let user_type = match profile.user(user) {
            Ok(t) => t,
            Err(error) => {
                violations.push(OracleViolation::OracleError {
                    round,
                    detail: error.to_string(),
                });
                continue;
            }
        };
        let cost = user_type.cost().value();
        let utility = expected_utility_from_quotes(
            user_type.any_task_pos().value(),
            quote.success,
            quote.failure,
            cost,
        );
        if utility < -oracle.tolerance {
            violations.push(OracleViolation::IrViolation {
                round,
                user,
                utility,
            });
        }

        if let Some(&completed) = cleared.reports.get(&user) {
            let paid = settlement.payouts.get(&user).copied();
            if paid != Some(quote.payout(completed)) {
                violations.push(OracleViolation::ReportPayoutMismatch { round, user });
            }
        } else {
            violations.push(OracleViolation::ReportPayoutMismatch { round, user });
        }

        if padded_so_far < oracle.max_padded_winners {
            match implied_critical_pos(engine.alpha, quote.success, cost) {
                Ok(critical) => {
                    match mechanism.padding(
                        profile,
                        user,
                        critical,
                        quote.success,
                        &oracle.pads,
                        oracle.tolerance,
                    ) {
                        Ok(pad_violations) => {
                            for violation in pad_violations {
                                violations.push(match violation {
                                    CriticalPadViolation::Demoted { user, pad } => {
                                        OracleViolation::Demoted { round, user, pad }
                                    }
                                    CriticalPadViolation::PaymentChanged {
                                        user,
                                        pad,
                                        reference,
                                        padded,
                                    } => OracleViolation::PaymentChanged {
                                        round,
                                        user,
                                        pad,
                                        reference,
                                        padded,
                                    },
                                });
                            }
                        }
                        Err(error) => violations.push(OracleViolation::OracleError {
                            round,
                            detail: error.to_string(),
                        }),
                    }
                }
                Err(error) => violations.push(OracleViolation::OracleError {
                    round,
                    detail: error.to_string(),
                }),
            }
        }
    }

    let paid_total: f64 = settlement.payouts.values().sum();
    if (paid_total - settlement.total).abs() > 1e-9 {
        violations.push(OracleViolation::LedgerDrift {
            detail: format!(
                "{round}: settlement total {} != summed payouts {paid_total}",
                settlement.total
            ),
        });
    }

    violations
}

/// Validates a cleared round's flight-recorder trace: every admitted bid
/// was recorded, the stage span tree is balanced and correctly nested
/// (`Allocate` and `Pay` inside the `Shard` span, `Settle` strictly after
/// it), and the clearing/settlement milestones carry the right payloads.
///
/// Callers must pass a per-round trace (e.g. `FlightRecorder::round_trace`)
/// from a recorder that has **not** wrapped — a lapped ring legitimately
/// loses old events and would produce false positives here.
pub fn check_round_trace(
    round: RoundId,
    events: &[TraceEvent],
    bidders: usize,
    winners: usize,
) -> Vec<OracleViolation> {
    let mut defects: Vec<String> = Vec::new();
    let mut admitted = 0usize;
    let mut closed: Option<u64> = None;
    let mut cleared: Option<u64> = None;
    let mut settled = false;
    let mut enters = [0usize; Stage::ALL.len()];
    let mut exits = [0usize; Stage::ALL.len()];
    let mut shard_open = false;
    let mut shard_done = false;

    for event in events {
        if event.round != round.0 {
            defects.push(format!(
                "event for round {} leaked into this round's trace",
                event.round
            ));
            continue;
        }
        match event.kind {
            EventKind::BidAdmitted => admitted += 1,
            EventKind::RoundClosed => closed = Some(event.a),
            EventKind::RoundCleared => cleared = Some(event.a),
            EventKind::RoundSettled => settled = true,
            EventKind::StageEnter | EventKind::StageExit => {
                let Some(stage) = event.stage else {
                    defects.push("span event without a stage".to_string());
                    continue;
                };
                let index = stage.index();
                if event.kind == EventKind::StageEnter {
                    enters[index] += 1;
                    match stage {
                        Stage::Shard => shard_open = true,
                        Stage::Allocate | Stage::Pay if !shard_open => defects.push(format!(
                            "{} span opened outside the shard span",
                            stage.name()
                        )),
                        Stage::Settle if !shard_done => defects
                            .push("settle span opened before the shard span closed".to_string()),
                        _ => {}
                    }
                } else {
                    exits[index] += 1;
                    if exits[index] > enters[index] {
                        defects.push(format!("{} span exited before entering", stage.name()));
                    }
                    if stage == Stage::Shard {
                        shard_open = false;
                        shard_done = true;
                    }
                }
            }
            _ => {}
        }
    }

    if admitted != bidders {
        defects.push(format!(
            "recorded {admitted} admitted bids, round held {bidders}"
        ));
    }
    match closed {
        None => defects.push("no RoundClosed event".to_string()),
        Some(count) if count != bidders as u64 => {
            defects.push(format!(
                "RoundClosed counted {count} bidders, round held {bidders}"
            ));
        }
        Some(_) => {}
    }
    for stage in [Stage::Shard, Stage::Allocate, Stage::Pay, Stage::Settle] {
        let index = stage.index();
        if enters[index] != 1 || exits[index] != 1 {
            defects.push(format!(
                "{} span unbalanced: {} enter(s), {} exit(s)",
                stage.name(),
                enters[index],
                exits[index]
            ));
        }
    }
    match cleared {
        None => defects.push("no RoundCleared event".to_string()),
        Some(count) if count != winners as u64 => {
            defects.push(format!(
                "RoundCleared counted {count} winners, round had {winners}"
            ));
        }
        Some(_) => {}
    }
    if !settled {
        defects.push("no RoundSettled event".to_string());
    }

    defects
        .into_iter()
        .map(|detail| OracleViolation::TraceIncomplete { round, detail })
        .collect()
}

/// Object-safe facade over the two concrete mechanisms, so [`check_round`]
/// can hold either behind one reference.
trait ReplayMechanism {
    fn winners(&self, profile: &TypeProfile) -> mcs_core::Result<Vec<UserId>>;

    #[allow(clippy::too_many_arguments)]
    fn padding(
        &self,
        profile: &TypeProfile,
        user: UserId,
        critical: mcs_core::types::Pos,
        reference_success: f64,
        pads: &[f64],
        tolerance: f64,
    ) -> mcs_core::Result<Vec<CriticalPadViolation>>;
}

impl<M: mcs_core::mechanism::Mechanism> ReplayMechanism for M {
    fn winners(&self, profile: &TypeProfile) -> mcs_core::Result<Vec<UserId>> {
        Ok(self.select_winners(profile)?.winners().collect())
    }

    fn padding(
        &self,
        profile: &TypeProfile,
        user: UserId,
        critical: mcs_core::types::Pos,
        reference_success: f64,
        pads: &[f64],
        tolerance: f64,
    ) -> mcs_core::Result<Vec<CriticalPadViolation>> {
        check_critical_bid_padding(
            self,
            profile,
            user,
            critical,
            reference_success,
            pads,
            tolerance,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::types::{Task, TaskId};
    use mcs_platform::engine::Engine;
    use mcs_platform::ingest::Bid;

    /// Runs one real engine round and returns everything the oracle needs.
    fn cleared_round() -> (TypeProfile, ClearedRound, RoundSettlement, EngineConfig) {
        let mut config = EngineConfig::default().with_seed(5);
        config.batch.max_bids = 4;
        let tasks = vec![Task::with_requirement(TaskId::new(0), 0.8).unwrap()];
        let mut engine = Engine::new(config, tasks.clone());
        let bids = [
            (0u32, 2.0, 0.6),
            (1, 2.5, 0.7),
            (2, 3.0, 0.5),
            (3, 1.5, 0.6),
        ];
        let mut queue = mcs_platform::ingest::IngestQueue::new(tasks.iter().map(|t| t.id()));
        for &(user, cost, pos) in &bids {
            let bid = Bid {
                user,
                cost,
                tasks: vec![(0, pos)],
            };
            engine.submit(&bid).unwrap();
            queue.push(&bid).unwrap();
        }
        engine.drain();
        let profile = TypeProfile::new(queue.drain(), tasks).unwrap();
        let cleared = engine.results().values().next().unwrap().clone();
        let settlement = engine.settlements().values().next().unwrap().clone();
        (profile, cleared, settlement, config)
    }

    #[test]
    fn a_real_round_passes_every_check() {
        let (profile, cleared, settlement, config) = cleared_round();
        let violations = check_round(
            &OracleConfig::default(),
            &profile,
            &cleared,
            &settlement,
            &config,
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn doctored_quotes_are_caught() {
        let (profile, mut cleared, settlement, config) = cleared_round();
        let user = *cleared.quotes.keys().next().unwrap();
        cleared.quotes.get_mut(&user).unwrap().success += 3.0;
        let violations = check_round(
            &OracleConfig::default(),
            &profile,
            &cleared,
            &settlement,
            &config,
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, OracleViolation::QuoteSpread { .. })));
        // The inflated success branch also breaks report/payout agreement
        // when the user succeeded, or survives when she failed — either
        // way the spread check alone must have fired.
        assert!(!violations.is_empty());
    }

    #[test]
    fn doctored_allocation_is_caught() {
        let (profile, mut cleared, settlement, config) = cleared_round();
        // Claim an empty allocation while keeping the quotes.
        cleared.allocation = mcs_core::mechanism::Allocation::from_winners(Vec::<UserId>::new());
        cleared.social_cost = 0.0;
        let violations = check_round(
            &OracleConfig::default(),
            &profile,
            &cleared,
            &settlement,
            &config,
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, OracleViolation::CoverageShortfall { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, OracleViolation::AllocationMismatch { .. })));
    }

    #[test]
    fn violations_render_for_humans() {
        let text = OracleViolation::SilentDrop { round: RoundId(9) }.to_string();
        assert!(text.contains("r9"));
        let text = OracleViolation::TraceIncomplete {
            round: RoundId(3),
            detail: "no RoundSettled event".to_string(),
        }
        .to_string();
        assert!(text.contains("r3") && text.contains("RoundSettled"));
    }

    /// Runs one traced engine round and returns its per-round trace.
    fn traced_round() -> Vec<mcs_obs::TraceEvent> {
        let mut config = EngineConfig::default().with_seed(5);
        config.batch.max_bids = 4;
        config.trace = mcs_platform::config::TraceConfig {
            capacity: 256,
            logical_clock: true,
        };
        let tasks = vec![Task::with_requirement(TaskId::new(0), 0.8).unwrap()];
        let mut engine = Engine::new(config, tasks);
        for (user, cost, pos) in [
            (0u32, 2.0, 0.6),
            (1, 2.5, 0.7),
            (2, 3.0, 0.5),
            (3, 1.5, 0.6),
        ] {
            engine
                .submit(&Bid {
                    user,
                    cost,
                    tasks: vec![(0, pos)],
                })
                .unwrap();
        }
        engine.drain();
        assert!(!engine.recorder().wrapped());
        engine.recorder().round_trace(0)
    }

    #[test]
    fn a_real_round_trace_is_complete() {
        let trace = traced_round();
        let winners = trace
            .iter()
            .find(|e| e.kind == mcs_obs::EventKind::RoundCleared)
            .map(|e| e.a as usize)
            .unwrap();
        let violations = check_round_trace(RoundId(0), &trace, 4, winners);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn truncated_and_doctored_traces_are_caught() {
        let trace = traced_round();
        let winners = trace
            .iter()
            .find(|e| e.kind == mcs_obs::EventKind::RoundCleared)
            .map(|e| e.a as usize)
            .unwrap();

        // Drop the tail: settle span and RoundSettled vanish.
        let truncated = &trace[..trace.len() - 3];
        let violations = check_round_trace(RoundId(0), truncated, 4, winners);
        assert!(violations
            .iter()
            .any(|v| v.to_string().contains("RoundSettled")));
        assert!(violations
            .iter()
            .any(|v| v.to_string().contains("settle span unbalanced")));

        // Claim one more bidder than the trace recorded.
        let violations = check_round_trace(RoundId(0), &trace, 5, winners);
        assert!(violations
            .iter()
            .any(|v| matches!(v, OracleViolation::TraceIncomplete { .. })));

        // Claim the wrong winner count.
        let violations = check_round_trace(RoundId(0), &trace, 4, winners + 1);
        assert!(violations
            .iter()
            .any(|v| v.to_string().contains("RoundCleared")));
    }
}
