//! Figure 4: the empirical PDF of predicted PoS values.
//!
//! Paper shape: because location transitions are scarce, most predicted
//! PoS values are very low — the bulk of the mass sits in `[0, 0.2]`. That
//! scarcity is what forces the platform to recruit redundantly.

use mcs_mobility::predict::{predict_all, predicted_pos_values};

use crate::experiments::Repro;
use crate::population::Dataset;
use crate::report::{Chart, Series};
use crate::stats::Histogram;

/// Number of histogram bins over `[0, 1]`.
pub const BINS: usize = 20;

/// Runs the experiment.
pub fn run(repro: &Repro) -> Chart {
    let dataset = repro.dataset();
    let predictions = predict_all(dataset.models(), dataset.train(), Dataset::MAX_PREDICTIONS);
    let values = predicted_pos_values(&predictions);
    let mut histogram = Histogram::new(0.0, 1.0, BINS);
    histogram.extend(values);
    Chart::new(
        "Figure 4: PDF of predicted PoS",
        "predicted PoS",
        "probability density",
        vec![Series::new("predicted PoS", histogram.density())],
    )
}

/// The fraction of predicted PoS values at or below `threshold` — the
/// headline statistic of the figure (paper: most mass in `[0, 0.2]`).
pub fn mass_below(repro: &Repro, threshold: f64) -> f64 {
    let dataset = repro.dataset();
    let predictions = predict_all(dataset.models(), dataset.train(), Dataset::MAX_PREDICTIONS);
    let values = predicted_pos_values(&predictions);
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&p| p <= threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    #[test]
    fn pos_mass_concentrates_below_0_2() {
        let mass = mass_below(quick_repro(), 0.2);
        assert!(mass > 0.7, "only {mass} of predicted PoS ≤ 0.2");
    }

    #[test]
    fn density_integrates_to_one() {
        let chart = run(quick_repro());
        let integral: f64 = chart.series[0]
            .points
            .iter()
            .map(|&(_, d)| d * (1.0 / BINS as f64))
            .sum();
        assert!(
            (integral - 1.0).abs() < 1e-9,
            "density integrates to {integral}"
        );
    }
}
