//! Figures 5(a)–(c): social cost of the mechanisms against the optimal
//! solution and the greedy baseline.
//!
//! * 5(a): single task, `n ∈ [20, 100]` — FPTAS (ε = 0.5 and a finer
//!   ε = 0.1) vs OPT vs Min-Greedy. Paper shape: cost drops sharply then
//!   flattens as competition grows; FPTAS ≈ OPT, strictly below Min-Greedy.
//! * 5(b): multi-task, `n ∈ [10, 100]`, `t = 15` (Table III setting 1) —
//!   greedy vs OPT. Paper shape: decreasing in `n`, greedy close to OPT.
//! * 5(c): multi-task, `n = 30`, `t ∈ [10, 50]` (setting 2) — increasing
//!   in `t`.

use mcs_core::baselines::{MinGreedy, OptimalMultiTask, OptimalSingleTask};
use mcs_core::mechanism::WinnerDetermination;
use mcs_core::multi_task::GreedyWinnerDetermination;
use mcs_core::single_task::FptasWinnerDetermination;

use crate::config::{table3_setting1, table3_setting2};
use crate::experiments::{trial_average, Repro};
use crate::population::Population;
use crate::report::{Chart, Series};

/// Social cost of `algorithm` on `population`, or `None` if it fails
/// (infeasible instance or exhausted search budget) — the trial is then
/// resampled or dropped.
fn social_cost<W: WinnerDetermination>(algorithm: &W, population: &Population) -> Option<f64> {
    let allocation = algorithm.select_winners(&population.profile).ok()?;
    Some(allocation.social_cost(&population.profile).ok()?.value())
}

/// Figure 5(a): single-task social cost vs number of users.
pub fn run_5a(repro: &Repro) -> Chart {
    let task = repro.single_task_location();
    let fptas_05 = FptasWinnerDetermination::new(0.5).expect("valid epsilon");
    let fptas_01 = FptasWinnerDetermination::new(0.1).expect("valid epsilon");
    let optimal = OptimalSingleTask::new();
    let min_greedy = MinGreedy::new();

    let ns: Vec<usize> = (20..=100).step_by(10).collect();
    let mut curves: Vec<(&str, Vec<(f64, f64)>)> = vec![
        ("FPTAS (eps=0.5)", Vec::new()),
        ("FPTAS (eps=0.1)", Vec::new()),
        ("OPT", Vec::new()),
        ("Min-Greedy", Vec::new()),
    ];
    for &n in &ns {
        let algorithms: [&dyn WinnerDetermination; 4] =
            [&fptas_05, &fptas_01, &optimal, &min_greedy];
        for (curve, algorithm) in curves.iter_mut().zip(algorithms) {
            let mean = trial_average(
                repro,
                0x5A,
                n as u64,
                |rng| repro.builder().single_task(task, n, rng).ok(),
                |population| social_cost(&algorithm, population),
            );
            curve.1.push((n as f64, mean));
        }
    }
    Chart::new(
        "Figure 5(a): social cost, single task",
        "number of users",
        "social cost",
        curves
            .into_iter()
            .map(|(label, points)| Series::new(label, points))
            .collect(),
    )
}

/// Figure 5(b): multi-task social cost vs number of users (t = 15).
pub fn run_5b(repro: &Repro) -> Chart {
    let setting = table3_setting1();
    let t = setting.task_counts[0];
    let greedy = GreedyWinnerDetermination::new();
    let optimal = OptimalMultiTask::new();

    let mut greedy_curve = Vec::new();
    let mut optimal_curve = Vec::new();
    for &n in &setting.user_counts {
        greedy_curve.push((
            n as f64,
            trial_average(
                repro,
                0x5B,
                n as u64,
                |rng| repro.builder().multi_task(t, n, rng).ok(),
                |population| social_cost(&greedy, population),
            ),
        ));
        optimal_curve.push((
            n as f64,
            trial_average(
                repro,
                0x5B,
                n as u64,
                |rng| repro.builder().multi_task(t, n, rng).ok(),
                |population| social_cost(&optimal, population),
            ),
        ));
    }
    Chart::new(
        "Figure 5(b): social cost, multi-task, t = 15",
        "number of users",
        "social cost",
        vec![
            Series::new("Greedy (ours)", greedy_curve),
            Series::new("OPT", optimal_curve),
        ],
    )
}

/// Figure 5(c): multi-task social cost vs number of tasks (n = 30).
pub fn run_5c(repro: &Repro) -> Chart {
    let setting = table3_setting2();
    let n = setting.user_counts[0];
    let greedy = GreedyWinnerDetermination::new();
    let optimal = OptimalMultiTask::new();

    let mut greedy_curve = Vec::new();
    let mut optimal_curve = Vec::new();
    for &t in &setting.task_counts {
        greedy_curve.push((
            t as f64,
            trial_average(
                repro,
                0x5C,
                t as u64,
                |rng| repro.builder().multi_task(t, n, rng).ok(),
                |population| social_cost(&greedy, population),
            ),
        ));
        optimal_curve.push((
            t as f64,
            trial_average(
                repro,
                0x5C,
                t as u64,
                |rng| repro.builder().multi_task(t, n, rng).ok(),
                |population| social_cost(&optimal, population),
            ),
        ));
    }
    Chart::new(
        "Figure 5(c): social cost, multi-task, n = 30",
        "number of tasks",
        "social cost",
        vec![
            Series::new("Greedy (ours)", greedy_curve),
            Series::new("OPT", optimal_curve),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    /// The defining relations of Figure 5(a): OPT ≤ FPTAS ≤ (1+ε)·OPT and
    /// OPT ≤ Min-Greedy, wherever all were feasible.
    #[test]
    fn fig5a_orderings_hold() {
        let chart = run_5a(quick_repro());
        let by_label = |label: &str| chart.series_containing(label).unwrap();
        let mut compared = 0;
        for x in chart.xs() {
            let (Some(opt), Some(fptas)) = (by_label("OPT").y_at(x), by_label("eps=0.5").y_at(x))
            else {
                continue;
            };
            // Means over identical instance sets preserve the per-instance
            // guarantee.
            assert!(opt <= fptas + 1e-9, "OPT above FPTAS at n={x}");
            assert!(fptas <= 1.5 * opt + 1e-9, "FPTAS ratio violated at n={x}");
            if let Some(greedy) = by_label("Min-Greedy").y_at(x) {
                assert!(opt <= greedy + 1e-9, "OPT above Min-Greedy at n={x}");
            }
            compared += 1;
        }
        assert!(compared >= 3, "too few feasible points to compare");
    }

    #[test]
    fn fig5c_cost_increases_with_tasks() {
        let chart = run_5c(quick_repro());
        let greedy = &chart.series[0];
        let feasible: Vec<(f64, f64)> = greedy
            .points
            .iter()
            .copied()
            .filter(|(_, y)| !y.is_nan())
            .collect();
        assert!(feasible.len() >= 2, "too few feasible points");
        // More tasks cannot get cheaper on average: check the endpoints.
        let first = feasible.first().unwrap();
        let last = feasible.last().unwrap();
        assert!(
            last.1 >= first.1 - 1e-9,
            "cost decreased from t={} to t={}",
            first.0,
            last.0
        );
    }
}
