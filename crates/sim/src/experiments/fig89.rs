//! Figures 8 and 9: the effect of the PoS requirement on the number of
//! selected users (Figure 8) and on the social cost (Figure 9), with
//! `n = 100` users and `t = 50` tasks in the multi-task setting.
//!
//! Paper shape: both curves grow with the requirement, accelerating at
//! high requirements because individual PoS values are low (recruiting
//! enough redundancy gets expensive fast). Costs track the user counts
//! since costs are i.i.d.

use mcs_core::mechanism::WinnerDetermination;
use mcs_core::multi_task::GreedyWinnerDetermination;
use mcs_core::single_task::FptasWinnerDetermination;

use crate::config::SimParams;
use crate::experiments::{trial_average, Repro};
use crate::population::Population;
use crate::report::{Chart, Series};

/// The PoS requirements the figures sweep (paper: `[0.5, 0.9]` in 0.05
/// steps).
pub fn requirements() -> Vec<f64> {
    (0..=8).map(|i| 0.5 + 0.05 * f64::from(i)).collect()
}

/// Users per instance (paper: fixed at 100).
pub const USERS: usize = 100;
/// Tasks in the multi-task instances (paper: 50).
pub const TASKS: usize = 50;

/// What to measure per instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    WinnerCount,
    SocialCost,
}

/// One `(x, y)` curve, as consumed by [`Series`].
type Curve = Vec<(f64, f64)>;

fn sweep(repro: &Repro, metric: Metric) -> (Curve, Curve) {
    let task_location = repro.single_task_location();
    let fptas = FptasWinnerDetermination::new(repro.params().epsilon).expect("valid epsilon");
    let greedy = GreedyWinnerDetermination::new();

    let measure = |algorithm: &dyn WinnerDetermination, population: &Population| -> Option<f64> {
        let allocation = algorithm.select_winners(&population.profile).ok()?;
        Some(match metric {
            Metric::WinnerCount => allocation.winner_count() as f64,
            Metric::SocialCost => allocation.social_cost(&population.profile).ok()?.value(),
        })
    };

    let mut single = Vec::new();
    let mut multi = Vec::new();
    for (idx, t) in requirements().into_iter().enumerate() {
        let params = SimParams {
            pos_requirement: t,
            ..*repro.params()
        };
        single.push((
            t,
            trial_average(
                repro,
                0x80,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .single_task(task_location, USERS, rng)
                        .ok()
                },
                |population| measure(&fptas, population),
            ),
        ));
        multi.push((
            t,
            trial_average(
                repro,
                0x81,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .multi_task(TASKS, USERS, rng)
                        .ok()
                },
                |population| measure(&greedy, population),
            ),
        ));
    }
    (single, multi)
}

/// Figure 8: number of selected users vs PoS requirement.
pub fn run_fig8(repro: &Repro) -> Chart {
    let (single, multi) = sweep(repro, Metric::WinnerCount);
    Chart::new(
        "Figure 8: selected users vs PoS requirement",
        "PoS requirement",
        "number of selected users",
        vec![
            Series::new("single task", single),
            Series::new("multi-task", multi),
        ],
    )
}

/// Figure 9: social cost vs PoS requirement.
pub fn run_fig9(repro: &Repro) -> Chart {
    let (single, multi) = sweep(repro, Metric::SocialCost);
    Chart::new(
        "Figure 9: social cost vs PoS requirement",
        "PoS requirement",
        "social cost",
        vec![
            Series::new("single task", single),
            Series::new("multi-task", multi),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    fn feasible(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
        points
            .iter()
            .copied()
            .filter(|(_, y)| !y.is_nan())
            .collect()
    }

    #[test]
    fn selected_users_grow_with_requirement() {
        let chart = run_fig8(quick_repro());
        let single = feasible(&chart.series[0].points);
        assert!(single.len() >= 3, "too few feasible single-task points");
        let first = single.first().unwrap();
        let last = single.last().unwrap();
        assert!(
            last.1 >= first.1,
            "selected users fell from {} at T={} to {} at T={}",
            first.1,
            first.0,
            last.1,
            last.0
        );
    }

    #[test]
    fn social_cost_tracks_user_count() {
        let users = run_fig8(quick_repro());
        let costs = run_fig9(quick_repro());
        // Same sweep, same instances: whenever one is feasible so is the
        // other, and cost ≈ count × mean cost (15), loosely.
        for (series_u, series_c) in users.series.iter().zip(&costs.series) {
            for (&(x, u), &(x2, c)) in series_u.points.iter().zip(&series_c.points) {
                assert_eq!(x, x2);
                assert_eq!(u.is_nan(), c.is_nan());
                if !u.is_nan() && u > 0.0 {
                    // Winner determination prefers cheap users, so the
                    // per-winner cost sits below the population mean (15)
                    // but must stay a plausible cost.
                    let per_user = c / u;
                    assert!(
                        (1.0..30.0).contains(&per_user),
                        "cost per selected user {per_user} implausible"
                    );
                }
            }
        }
    }
}
