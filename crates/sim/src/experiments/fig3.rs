//! Figure 3: location-prediction accuracy of the learned Markov mobility
//! models, as a function of the number of predicted locations `k = 3…15`.
//!
//! Paper shape: accuracy rises quickly with `k` and reaches ≈ 0.9 around
//! `k = 9`, validating that a handful of predicted cells captures a taxi's
//! next move.

use mcs_mobility::predict::accuracy_curve;

use crate::experiments::Repro;
use crate::report::{Chart, Series};

/// The `k` range the paper sweeps.
pub const K_RANGE: std::ops::RangeInclusive<usize> = 3..=15;

/// Runs the experiment.
pub fn run(repro: &Repro) -> Chart {
    let dataset = repro.dataset();
    let curve = accuracy_curve(dataset.models(), dataset.test(), K_RANGE);
    let points = curve.into_iter().map(|(k, a)| (k as f64, a)).collect();
    Chart::new(
        "Figure 3: location prediction accuracy",
        "predicted locations k",
        "correct prediction fraction",
        vec![Series::new("Markov model (Laplace-smoothed MLE)", points)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    #[test]
    fn accuracy_is_monotone_in_k_and_substantial() {
        let chart = run(quick_repro());
        let points = &chart.series[0].points;
        assert_eq!(points.len(), 13); // k = 3..=15
        for pair in points.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-12,
                "accuracy dropped from k={} to k={}",
                pair[0].0,
                pair[1].0
            );
        }
        // Even the reduced data set beats random guessing by an order of
        // magnitude (random over 400 cells at k=9 would be ~2%).
        let at_9 = chart.series[0].y_at(9.0).unwrap();
        assert!(at_9 > 0.3, "accuracy@9 = {at_9}");
    }
}
