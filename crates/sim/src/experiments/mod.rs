//! One module per paper figure: each builds the workload, runs the
//! mechanisms and baselines, and returns a [`Chart`] shaped like the
//! figure it reproduces.
//!
//! | Module | Paper figure | What it shows |
//! |---|---|---|
//! | [`fig3`] | Figure 3 | top-k location-prediction accuracy |
//! | [`fig4`] | Figure 4 | PDF of predicted PoS values |
//! | [`fig5`] | Figures 5(a)–(c) | social cost vs n and t, against OPT |
//! | [`fig6`] | Figure 6 | ECDF of winners' expected utilities |
//! | [`fig7`] | Figure 7 | achieved vs required task PoS (incl. VCG) |
//! | [`fig89`] | Figures 8 & 9 | selected users / social cost vs requirement |
//! | [`ext_strategy`] | extension | max gain from PoS misreporting (incl. Algorithm 5 ablation) |
//! | [`ext_budget`] | extension | coverage under a hard payment budget |
//! | [`ext_calibration`] | extension | model-expected vs ground-truth completion |
//! | [`verify`] | meta | claim-vs-measured verdict table (`repro verify`) |

pub mod ext_budget;
pub mod ext_calibration;
pub mod ext_strategy;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig89;
pub mod verify;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{DatasetParams, SimParams};
use crate::population::{Dataset, Population, PopulationBuilder};
use crate::report::Chart;

/// Shared experiment context: the (expensive, built-once) data set plus
/// run parameters.
#[derive(Debug)]
pub struct Repro {
    dataset: Dataset,
    params: SimParams,
    /// Instances averaged per data point.
    trials: usize,
    /// Master seed; every `(experiment, x, trial)` derives its own stream.
    seed: u64,
}

impl Repro {
    /// Builds a context with explicit parameters.
    pub fn new(dataset: DatasetParams, params: SimParams, trials: usize, seed: u64) -> Self {
        Repro {
            dataset: Dataset::build(dataset),
            params,
            trials,
            seed,
        }
    }

    /// Paper-scale context: 1692 taxis, a month of slots, 20 trials per
    /// point. Building takes a couple of seconds; experiments minutes.
    pub fn full() -> Self {
        Repro::new(DatasetParams::default(), SimParams::default(), 20, 0xC0FFEE)
    }

    /// Reduced context for tests and smoke runs.
    pub fn quick() -> Self {
        Repro::new(DatasetParams::small(), SimParams::default(), 3, 0xC0FFEE)
    }

    /// The built data set.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The simulation parameters (Table II).
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Trials per data point.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// A population builder with possibly overridden parameters.
    pub fn builder_with(&self, params: SimParams) -> PopulationBuilder<'_> {
        PopulationBuilder::new(&self.dataset, params)
    }

    /// A population builder with the default parameters.
    pub fn builder(&self) -> PopulationBuilder<'_> {
        self.builder_with(self.params)
    }

    /// The location used by every single-task experiment: the hardest
    /// cell that still has enough candidate users for the largest sweep
    /// (n = 100 plus head-room).
    pub fn single_task_location(&self) -> mcs_mobility::grid::LocationId {
        self.dataset
            .single_task_location(120)
            .or_else(|| self.dataset.single_task_location(40))
            .expect("data set has no adequately covered cell")
    }

    /// A deterministic RNG for `(experiment, x, trial)`.
    pub fn rng(&self, experiment: u64, x: u64, trial: u64) -> StdRng {
        // SplitMix-style mixing of the coordinates into one seed.
        let mut z = self
            .seed
            .wrapping_add(experiment.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(x.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(trial.wrapping_mul(0x94D0_49BB_1331_11EB));
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        StdRng::seed_from_u64(z)
    }
}

/// Averages `metric` over the context's trials, retrying each trial's
/// population up to 8 seeds when the instance is infeasible for the
/// mechanisms (low PoS draws can undersupply a task). Returns NaN when no
/// trial produced a value — the charts render that as "-".
pub(crate) fn trial_average<B, M>(
    repro: &Repro,
    experiment: u64,
    x: u64,
    mut build: B,
    mut metric: M,
) -> f64
where
    B: FnMut(&mut StdRng) -> Option<Population>,
    M: FnMut(&Population) -> Option<f64>,
{
    let mut values = Vec::with_capacity(repro.trials());
    for trial in 0..repro.trials() as u64 {
        for attempt in 0..8u64 {
            let mut rng = repro.rng(experiment, x, trial * 8 + attempt);
            let Some(population) = build(&mut rng) else {
                continue;
            };
            if let Some(value) = metric(&population) {
                values.push(value);
                break;
            }
        }
    }
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Runs every paper experiment and returns the charts in paper order.
pub fn run_all(repro: &Repro) -> Vec<Chart> {
    vec![
        fig3::run(repro),
        fig4::run(repro),
        fig5::run_5a(repro),
        fig5::run_5b(repro),
        fig5::run_5c(repro),
        fig6::run(repro),
        fig7::run(repro),
        fig89::run_fig8(repro),
        fig89::run_fig9(repro),
    ]
}

/// Runs the extension experiments (not figures of the paper).
pub fn run_extensions(repro: &Repro) -> Vec<Chart> {
    vec![
        ext_strategy::run(repro),
        ext_budget::run(repro),
        ext_calibration::run(repro),
    ]
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::OnceLock;

    /// One shared quick context for all experiment tests (the data-set
    /// build is the expensive part).
    pub fn quick_repro() -> &'static Repro {
        static REPRO: OnceLock<Repro> = OnceLock::new();
        REPRO.get_or_init(Repro::quick)
    }
}
