//! Extension experiment: ground-truth calibration of the whole pipeline.
//!
//! Everywhere else, "execution" draws a Bernoulli from each winner's
//! *learned* PoS — i.e. the model audits itself. This experiment closes
//! the loop against reality: selected winners are rolled forward under
//! the synthetic city's **true** mixture kernel (the process the learned
//! models only estimate), and a task counts as completed when some winner
//! actually drives through its cell within the sensing window.
//!
//! Three curves against the PoS requirement `T`:
//!
//! * `required` — the target,
//! * `model-expected` — achieved PoS computed from the learned PoS values
//!   (what Figure 7 reports),
//! * `ground-truth realized` — Monte-Carlo completion frequency under the
//!   true kernel.
//!
//! If the sensing-PoS estimator were perfectly calibrated the last two
//! would coincide. **Finding**: they do not — the add-one smoothing's
//! unseen-transition floor (`1/(x_i+l)` per step) compounds over the
//! sensing window into substantial fictional visit mass, and the
//! single-task experiments deliberately pick the *hardest* adequately
//! supplied cell, where that floor dominates. The realized completion
//! frequency lands far below the model's expectation: the platform's
//! "guarantee" is only as good as its PoS estimator. The paper shares
//! this limitation (its evaluation also scores achieved PoS with the
//! learned values themselves); `Smoothing::AddLambda` with a small λ is
//! the mitigation knob this library ships.

use mcs_core::analysis::achieved_pos;
use mcs_core::mechanism::WinnerDetermination;
use mcs_core::single_task::FptasWinnerDetermination;
use mcs_core::types::TaskId;

use crate::config::SimParams;
use crate::experiments::{trial_average, Repro};
use crate::report::{Chart, Series};

/// The requirements swept.
pub fn requirements() -> Vec<f64> {
    vec![0.6, 0.7, 0.8, 0.9]
}

/// Users per instance.
pub const USERS: usize = 60;
/// Ground-truth rollouts per instance.
pub const ROLLOUTS: usize = 300;

/// Runs the experiment.
pub fn run(repro: &Repro) -> Chart {
    let task_location = repro.single_task_location();
    let fptas = FptasWinnerDetermination::new(repro.params().epsilon).expect("valid epsilon");
    let horizon = repro.dataset().params().sensing_horizon;

    let mut required = Vec::new();
    let mut model_expected = Vec::new();
    let mut realized = Vec::new();

    for (idx, t) in requirements().into_iter().enumerate() {
        let params = SimParams {
            pos_requirement: t,
            ..*repro.params()
        };
        required.push((t, t));

        model_expected.push((
            t,
            trial_average(
                repro,
                0xCA,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .single_task(task_location, USERS, rng)
                        .ok()
                },
                |population| {
                    let allocation = fptas.select_winners(&population.profile).ok()?;
                    Some(achieved_pos(&population.profile, &allocation, TaskId::new(0)).value())
                },
            ),
        ));

        realized.push((
            t,
            trial_average(
                repro,
                0xCA,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .single_task(task_location, USERS, rng)
                        .ok()
                },
                |population| {
                    let allocation = fptas.select_winners(&population.profile).ok()?;
                    // Winners with their true-process starting points.
                    let walkers: Vec<_> = allocation
                        .winners()
                        .map(|user| {
                            let taxi = population.taxis[user.index()];
                            let origin = repro
                                .dataset()
                                .origin_of(taxi)
                                .expect("winners have prediction origins");
                            (taxi, origin)
                        })
                        .collect();
                    // Monte-Carlo rollouts under the true kernel. The
                    // rollout stream is derived from the instance so the
                    // experiment stays seed-deterministic.
                    let mut rng = repro.rng(0xCB, idx as u64, 7);
                    let mut completions = 0usize;
                    for _ in 0..ROLLOUTS {
                        let done = walkers.iter().any(|&(taxi, origin)| {
                            repro
                                .dataset()
                                .city()
                                .walk(taxi, origin, horizon, &mut rng)
                                .contains(&task_location)
                        });
                        if done {
                            completions += 1;
                        }
                    }
                    Some(completions as f64 / ROLLOUTS as f64)
                },
            ),
        ));
    }

    Chart::new(
        "ExtCalibration: ground-truth calibration (single task)",
        "required PoS",
        "completion probability",
        vec![
            Series::new("required", required),
            Series::new("model-expected", model_expected),
            Series::new("ground-truth realized", realized),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    #[test]
    fn realized_completion_is_in_range_and_tracks_the_model() {
        let chart = run(quick_repro());
        let model = &chart.series[1];
        let realized = &chart.series[2];
        let mut compared = 0;
        for x in chart.xs() {
            let (Some(m), Some(r)) = (model.y_at(x), realized.y_at(x)) else {
                continue;
            };
            assert!((0.0..=1.0).contains(&r), "realized {r} out of range");
            assert!(m >= x - 1e-6, "model-expected below requirement at T={x}");
            // The documented finding: on the hardest cell, the smoothed
            // estimator is *optimistic* — ground truth does not exceed the
            // model's expectation (any run where it did would falsify the
            // module-level analysis).
            assert!(
                r <= m + 0.1,
                "ground truth {r} above model expectation {m} at T={x} — \
                 the optimism finding no longer holds"
            );
            compared += 1;
        }
        assert!(compared >= 3, "too few comparable requirement points");
    }
}
