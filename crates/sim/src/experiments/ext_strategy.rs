//! Extension experiment: *quantified* strategic resistance.
//!
//! The paper claims its mechanisms "resist the strategic behaviours of
//! users" but does not plot it. This experiment makes the claim (and our
//! correction to Algorithm 5) measurable: for a grid of uniform PoS
//! misreporting factors, it records the **largest expected-utility gain**
//! any user can realize, under
//!
//! * the single-task mechanism,
//! * the multi-task mechanism with the robust (bisection) critical bid, and
//! * the multi-task mechanism with the paper's original Algorithm 5
//!   critical bid.
//!
//! The first two curves must hug 0 from below; the Algorithm 5 curve goes
//! *positive* for exaggeration factors on cap-heavy instances — the defect
//! documented in `mcs_core::multi_task::reward`.

use mcs_core::analysis::expected_utility;
use mcs_core::mechanism::WinnerDetermination;
use mcs_core::multi_task::{
    algorithm5_critical_contribution, GreedyWinnerDetermination, MultiTaskMechanism,
};
use mcs_core::single_task::SingleTaskMechanism;
use mcs_core::types::{TypeProfile, UserId};

use crate::experiments::Repro;
use crate::report::{Chart, Series};

/// The deviation factors swept (declared contribution = factor × truth).
pub fn factors() -> Vec<f64> {
    vec![0.25, 0.5, 0.75, 0.9, 1.1, 1.5, 2.0, 3.0, 5.0]
}

/// Users per instance (kept modest: each deviation costs a full reward
/// evaluation).
pub const USERS: usize = 16;
/// Tasks per multi-task instance.
pub const TASKS: usize = 8;

/// Expected utility of `user` under the multi-task EC reward with the
/// *paper's* Algorithm 5 critical bid (the ablation arm).
fn algorithm5_utility(
    alpha: f64,
    declared: &TypeProfile,
    truth: &TypeProfile,
    user: UserId,
) -> Option<f64> {
    let wd = GreedyWinnerDetermination::new();
    let allocation = wd.select_winners(declared).ok()?;
    if !allocation.contains(user) {
        return Some(0.0);
    }
    let critical = algorithm5_critical_contribution(&wd, declared, user).ok()?;
    let p_any = truth.user(user).ok()?.any_task_pos().value();
    Some((p_any - critical.pos().value()) * alpha)
}

/// Runs the experiment: for each factor, the maximum gain over all users
/// and trial instances (0 clamped from below for readability — losses are
/// the common case).
pub fn run(repro: &Repro) -> Chart {
    let alpha = repro.params().alpha;
    let single_mechanism =
        SingleTaskMechanism::new(repro.params().epsilon, alpha).expect("valid params");
    let multi_mechanism = MultiTaskMechanism::new(alpha).expect("valid alpha");
    let task = repro.single_task_location();

    let mut single_curve = Vec::new();
    let mut multi_curve = Vec::new();
    let mut algorithm5_curve = Vec::new();

    for (idx, factor) in factors().into_iter().enumerate() {
        let mut single_gain: f64 = f64::NEG_INFINITY;
        let mut multi_gain: f64 = f64::NEG_INFINITY;
        let mut algo5_gain: f64 = f64::NEG_INFINITY;

        for trial in 0..repro.trials() as u64 {
            // Single task.
            let mut rng = repro.rng(0xE1, idx as u64, trial);
            if let Ok(population) = repro.builder().single_task(task, USERS, &mut rng) {
                let truth = &population.profile;
                if single_mechanism.select_winners(truth).is_ok() {
                    for user in truth.user_ids() {
                        let honest =
                            expected_utility(&single_mechanism, truth, truth, user).unwrap_or(0.0);
                        let lie = truth.user(user).unwrap().with_scaled_contributions(factor);
                        let declared = truth.with_user_type(lie).unwrap();
                        let lying = expected_utility(&single_mechanism, &declared, truth, user)
                            .unwrap_or(0.0);
                        single_gain = single_gain.max(lying - honest);
                    }
                }
            }
            // Multi-task (both reward arms share instances).
            let mut rng = repro.rng(0xE2, idx as u64, trial);
            if let Ok(population) = repro.builder().multi_task(TASKS, USERS, &mut rng) {
                let truth = &population.profile;
                if multi_mechanism.select_winners(truth).is_ok() {
                    for user in truth.user_ids() {
                        let honest =
                            expected_utility(&multi_mechanism, truth, truth, user).unwrap_or(0.0);
                        let honest5 = algorithm5_utility(alpha, truth, truth, user)
                            .unwrap_or(0.0)
                            .max(0.0);
                        let lie = truth.user(user).unwrap().with_scaled_contributions(factor);
                        let declared = truth.with_user_type(lie).unwrap();
                        let lying = expected_utility(&multi_mechanism, &declared, truth, user)
                            .unwrap_or(0.0);
                        multi_gain = multi_gain.max(lying - honest);
                        if let Some(lying5) = algorithm5_utility(alpha, &declared, truth, user) {
                            algo5_gain = algo5_gain.max(lying5 - honest5);
                        }
                    }
                }
            }
        }

        let clamp = |g: f64| if g.is_finite() { g } else { f64::NAN };
        single_curve.push((factor, clamp(single_gain)));
        multi_curve.push((factor, clamp(multi_gain)));
        algorithm5_curve.push((factor, clamp(algo5_gain)));
    }

    Chart::new(
        "ExtStrategy: maximum gain from PoS misreporting",
        "declared/true contribution factor",
        "max expected-utility gain",
        vec![
            Series::new("single task (ours)", single_curve),
            Series::new("multi-task (robust critical bid)", multi_curve),
            Series::new("multi-task (paper Algorithm 5)", algorithm5_curve),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    #[test]
    fn our_mechanisms_never_reward_deviation_but_algorithm5_can() {
        let chart = run(quick_repro());
        let single = &chart.series[0];
        let multi = &chart.series[1];
        let algo5 = &chart.series[2];
        for &(factor, gain) in &single.points {
            if gain.is_nan() {
                continue;
            }
            assert!(gain <= 1e-6, "single task: gain {gain} at factor {factor}");
        }
        for &(factor, gain) in &multi.points {
            if gain.is_nan() {
                continue;
            }
            assert!(
                gain <= 1e-6,
                "multi-task robust: gain {gain} at factor {factor}"
            );
        }
        // Algorithm 5's exploit shows up as a positive gain for some
        // exaggeration factor on the cap-heavy pipeline instances.
        let exploited = algo5
            .points
            .iter()
            .any(|&(factor, gain)| factor > 1.0 && gain > 1e-3);
        assert!(
            exploited,
            "expected the Algorithm 5 arm to show a profitable exaggeration; got {:?}",
            algo5.points
        );
    }
}
