//! Figure 7: achieved task PoS versus the requirement, for our mechanisms
//! and the VCG-like baselines.
//!
//! Paper shape: both our mechanisms meet the requirement — the single-task
//! mechanism just barely (it stops as soon as coverage is reached), the
//! multi-task mechanism with slack (a selected single-minded user keeps
//! contributing to already-satisfied tasks). ST-VCG and MT-VCG recruit as
//! if declared PoS were 1 and fall far short.

use mcs_core::analysis::{achieved_pos, average_achieved_pos};
use mcs_core::baselines::{MtVcg, StVcg};
use mcs_core::mechanism::WinnerDetermination;
use mcs_core::multi_task::GreedyWinnerDetermination;
use mcs_core::single_task::FptasWinnerDetermination;
use mcs_core::types::TaskId;

use crate::config::SimParams;
use crate::experiments::{trial_average, Repro};
use crate::report::{Chart, Series};

/// The PoS requirements the figure sweeps.
pub fn requirements() -> Vec<f64> {
    (0..=8).map(|i| 0.5 + 0.05 * f64::from(i)).collect()
}

/// Users per instance.
pub const USERS: usize = 100;
/// Tasks in the multi-task instances.
pub const TASKS: usize = 15;

/// Runs the experiment.
pub fn run(repro: &Repro) -> Chart {
    let task_location = repro.single_task_location();
    let fptas = FptasWinnerDetermination::new(repro.params().epsilon).expect("valid epsilon");
    let greedy = GreedyWinnerDetermination::new();
    let st_vcg = StVcg::new();
    let mt_vcg = MtVcg::new();

    let mut required = Vec::new();
    let mut single = Vec::new();
    let mut multi = Vec::new();
    let mut st_vcg_curve = Vec::new();
    let mut mt_vcg_curve = Vec::new();

    for (idx, t) in requirements().into_iter().enumerate() {
        let params = SimParams {
            pos_requirement: t,
            ..*repro.params()
        };
        required.push((t, t));

        single.push((
            t,
            trial_average(
                repro,
                0x70,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .single_task(task_location, USERS, rng)
                        .ok()
                },
                |population| {
                    let allocation = fptas.select_winners(&population.profile).ok()?;
                    Some(achieved_pos(&population.profile, &allocation, TaskId::new(0)).value())
                },
            ),
        ));
        st_vcg_curve.push((
            t,
            trial_average(
                repro,
                0x70,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .single_task(task_location, USERS, rng)
                        .ok()
                },
                |population| {
                    let allocation = st_vcg.select_winners(&population.profile).ok()?;
                    Some(achieved_pos(&population.profile, &allocation, TaskId::new(0)).value())
                },
            ),
        ));
        multi.push((
            t,
            trial_average(
                repro,
                0x71,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .multi_task(TASKS, USERS, rng)
                        .ok()
                },
                |population| {
                    let allocation = greedy.select_winners(&population.profile).ok()?;
                    Some(average_achieved_pos(&population.profile, &allocation))
                },
            ),
        ));
        mt_vcg_curve.push((
            t,
            trial_average(
                repro,
                0x71,
                idx as u64,
                |rng| {
                    repro
                        .builder_with(params)
                        .multi_task(TASKS, USERS, rng)
                        .ok()
                },
                |population| {
                    let allocation = mt_vcg.select_winners(&population.profile).ok()?;
                    Some(average_achieved_pos(&population.profile, &allocation))
                },
            ),
        ));
    }

    Chart::new(
        "Figure 7: achieved vs required task PoS",
        "required PoS",
        "achieved PoS",
        vec![
            Series::new("required", required),
            Series::new("single task (ours)", single),
            Series::new("multi-task (ours)", multi),
            Series::new("ST-VCG", st_vcg_curve),
            Series::new("MT-VCG", mt_vcg_curve),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    #[test]
    fn our_mechanisms_meet_requirements_and_vcg_does_not() {
        let chart = run(quick_repro());
        let series = |label: &str| chart.series_containing(label).unwrap();
        let mut checked = 0;
        for x in chart.xs() {
            if let Some(ours) = series("single task").y_at(x) {
                assert!(
                    ours >= x - 1e-6,
                    "single-task achieved {ours} < required {x}"
                );
                checked += 1;
            }
            if let Some(ours) = series("multi-task").y_at(x) {
                assert!(
                    ours >= x - 1e-6,
                    "multi-task achieved {ours} < required {x}"
                );
            }
            if let Some(vcg) = series("ST-VCG").y_at(x) {
                assert!(vcg < x, "ST-VCG met requirement {x}: {vcg}");
            }
        }
        assert!(checked >= 3, "too few feasible requirement points");
    }
}
