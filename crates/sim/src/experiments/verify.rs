//! Self-auditing reproduction: run every figure and check the paper's
//! qualitative claims against the measurements, producing a verdict table.
//!
//! `repro verify` is the one-command answer to "did the reproduction
//! work?": each row is a claim from the paper's evaluation section, the
//! measured evidence, and PASS/FAIL. The same predicates back the
//! `tests/experiment_shapes.rs` integration tests; this runs them at
//! whatever scale the context is configured for and reports instead of
//! panicking.

use serde::{Deserialize, Serialize};

use crate::experiments::{fig3, fig4, fig5, fig6, fig7, fig89, Repro};
use crate::report::Series;

/// One verified claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// Which figure the claim belongs to.
    pub figure: String,
    /// The paper's qualitative claim.
    pub claim: String,
    /// Whether the measurement supports it.
    pub pass: bool,
    /// The measured evidence, human-readable.
    pub evidence: String,
}

/// Evaluates a claim that needs chart series lookups: a missing series —
/// a [`MissingSeries`](crate::report::MissingSeries) from
/// [`Chart::series_containing`] — becomes a FAIL row naming what was
/// absent, instead of a panic that would abort the whole verdict table.
fn checked(
    figure: &str,
    claim: &str,
    evaluate: impl FnOnce() -> Result<(bool, String), crate::report::MissingSeries>,
) -> ShapeCheck {
    let (pass, evidence) = match evaluate() {
        Ok(outcome) => outcome,
        Err(missing) => (false, missing.to_string()),
    };
    ShapeCheck {
        figure: figure.into(),
        claim: claim.into(),
        pass,
        evidence,
    }
}

fn feasible(series: &Series) -> Vec<(f64, f64)> {
    series
        .points
        .iter()
        .copied()
        .filter(|(_, y)| !y.is_nan())
        .collect()
}

/// Runs all figures and evaluates every claim. Expensive (a full `repro
/// all` worth of computation).
pub fn verify(repro: &Repro) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();

    // Figure 3.
    let chart = fig3::run(repro);
    let points = &chart.series[0].points;
    let (first, last) = (points.first().copied(), points.last().copied());
    if let (Some((_, lo)), Some((_, hi))) = (first, last) {
        checks.push(ShapeCheck {
            figure: "Fig 3".into(),
            claim: "prediction accuracy rises with k and is substantial".into(),
            pass: hi > lo && hi > 0.5,
            evidence: format!("accuracy {lo:.3} at k=3 -> {hi:.3} at k=15"),
        });
    }

    // Figure 4.
    let mass = fig4::mass_below(repro, 0.2);
    checks.push(ShapeCheck {
        figure: "Fig 4".into(),
        claim: "most predicted PoS mass lies in [0, 0.2]".into(),
        pass: mass > 0.7,
        evidence: format!("{:.1}% of predicted PoS ≤ 0.2", 100.0 * mass),
    });

    // Figure 5(a).
    let chart = fig5::run_5a(repro);
    checks.push(checked(
        "Fig 5(a)",
        "OPT ≤ FPTAS ≤ (1+ε)·OPT ≤ Min-Greedy; cost falls with n",
        || {
            let opt = chart.series_containing("OPT")?;
            let fptas = chart.series_containing("eps=0.5")?;
            let greedy = chart.series_containing("Min-Greedy")?;
            let mut orderings = true;
            let mut compared = 0;
            for x in chart.xs() {
                if let (Some(o), Some(f)) = (opt.y_at(x), fptas.y_at(x)) {
                    orderings &= o <= f + 1e-9 && f <= 1.5 * o + 1e-9;
                    if let Some(g) = greedy.y_at(x) {
                        orderings &= f <= g + 1e-9;
                    }
                    compared += 1;
                }
            }
            let trend = {
                let f = feasible(fptas);
                f.len() >= 2 && f.last().unwrap().1 <= f.first().unwrap().1 + 1e-9
            };
            Ok((
                orderings && trend && compared >= 3,
                format!("{compared} comparable points, orderings {orderings}, falling {trend}"),
            ))
        },
    ));

    // Figure 5(b).
    let chart = fig5::run_5b(repro);
    checks.push(checked(
        "Fig 5(b)",
        "greedy stays close to OPT across n",
        || {
            let greedy = chart.series_containing("Greedy")?;
            let opt = chart.series_containing("OPT")?;
            let mut close = true;
            let mut compared = 0;
            for x in chart.xs() {
                if let (Some(g), Some(o)) = (greedy.y_at(x), opt.y_at(x)) {
                    close &= o <= g + 1e-9 && g <= 2.0 * o + 1e-9;
                    compared += 1;
                }
            }
            Ok((
                close && compared >= 4,
                format!("{compared} comparable points, within 2× {close}"),
            ))
        },
    ));

    // Figure 5(c).
    let chart = fig5::run_5c(repro);
    checks.push(checked(
        "Fig 5(c)",
        "social cost rises with the number of tasks",
        || {
            let greedy = feasible(chart.series_containing("Greedy")?);
            let rising = greedy.len() >= 2 && greedy.last().unwrap().1 >= greedy.first().unwrap().1;
            Ok((
                rising,
                format!(
                    "{} feasible points, endpoints rising {rising}",
                    greedy.len()
                ),
            ))
        },
    ));

    // Figure 6.
    let chart = fig6::run(repro);
    let single: Vec<f64> = chart.series[0].points.iter().map(|&(x, _)| x).collect();
    let multi: Vec<f64> = chart.series[1].points.iter().map(|&(x, _)| x).collect();
    let nonneg = single.iter().chain(&multi).all(|&u| u >= -1e-6);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let dominance = mean(&multi) >= mean(&single);
    checks.push(ShapeCheck {
        figure: "Fig 6".into(),
        claim: "winner utilities non-negative; multi-task dominates".into(),
        pass: nonneg && dominance && !single.is_empty() && !multi.is_empty(),
        evidence: format!(
            "single mean {:.2} ({}), multi mean {:.2} ({}), all ≥ 0: {nonneg}",
            mean(&single),
            single.len(),
            mean(&multi),
            multi.len()
        ),
    });

    // Figure 7.
    let chart = fig7::run(repro);
    checks.push(checked(
        "Fig 7",
        "our mechanisms meet every requirement; VCG-like do not",
        || {
            let single = chart.series_containing("single task")?;
            let multi = chart.series_containing("multi-task")?;
            let st_vcg = chart.series_containing("ST-VCG")?;
            let mt_vcg = chart.series_containing("MT-VCG")?;
            let mut ours_ok = true;
            let mut vcg_misses = 0;
            let mut compared = 0;
            for x in chart.xs() {
                if let Some(y) = single.y_at(x) {
                    ours_ok &= y >= x - 1e-6;
                    compared += 1;
                }
                if let Some(y) = multi.y_at(x) {
                    ours_ok &= y >= x - 1e-6;
                }
                for vcg in [st_vcg, mt_vcg] {
                    if let Some(y) = vcg.y_at(x) {
                        if y < x {
                            vcg_misses += 1;
                        }
                    }
                }
            }
            Ok((
                ours_ok && vcg_misses >= 6 && compared >= 4,
                format!("{compared} requirements met: {ours_ok}; VCG shortfalls: {vcg_misses}"),
            ))
        },
    ));

    // Figures 8 & 9.
    for (chart, figure) in [
        (fig89::run_fig8(repro), "Fig 8"),
        (fig89::run_fig9(repro), "Fig 9"),
    ] {
        let mut growth = true;
        let mut evidence = Vec::new();
        for s in &chart.series {
            let f = feasible(s);
            let rising = f.len() >= 3 && f.last().unwrap().1 >= f.first().unwrap().1;
            growth &= rising;
            if let (Some(a), Some(b)) = (f.first(), f.last()) {
                evidence.push(format!("{}: {:.1} -> {:.1}", s.label, a.1, b.1));
            }
        }
        checks.push(ShapeCheck {
            figure: figure.into(),
            claim: "grows with the PoS requirement".into(),
            pass: growth,
            evidence: evidence.join("; "),
        });
    }

    checks
}

/// Renders the verdict table.
pub fn render(checks: &[ShapeCheck]) -> String {
    let mut out = String::from("# Reproduction verdicts\n");
    let passed = checks.iter().filter(|c| c.pass).count();
    for check in checks {
        out.push_str(&format!(
            "[{}] {:<9} {}\n          measured: {}\n",
            if check.pass { "PASS" } else { "FAIL" },
            check.figure,
            check.claim,
            check.evidence,
        ));
    }
    out.push_str(&format!("\n{passed}/{} claims reproduced\n", checks.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;
    use crate::report::Chart;

    #[test]
    fn missing_series_degrades_to_failed_check_not_panic() {
        let chart = Chart::new("empty", "x", "y", vec![]);
        let check = checked("Fig X", "some claim", || {
            chart.series_containing("OPT")?;
            Ok((true, "unreachable".into()))
        });
        assert!(!check.pass);
        assert!(check.evidence.contains("no series labelled"));
        assert_eq!(check.figure, "Fig X");
    }

    #[test]
    fn every_claim_passes_at_quick_scale() {
        let checks = verify(quick_repro());
        assert!(checks.len() >= 8, "expected a check per figure");
        let failures: Vec<&ShapeCheck> = checks.iter().filter(|c| !c.pass).collect();
        assert!(failures.is_empty(), "failed claims: {failures:#?}");
        let rendered = render(&checks);
        assert!(rendered.contains("PASS"));
        assert!(rendered.contains("claims reproduced"));
    }
}
