//! Figure 6: empirical CDF of the selected users' expected utilities
//! (α = 10).
//!
//! Paper shape: every winner's expected utility is non-negative
//! (individual rationality), and multi-task winners' utilities
//! stochastically dominate single-task ones — a multi-task winner succeeds
//! if *any* of her tasks completes, so her success probability (and hence
//! `(e^{-q̄} − e^{-Σq})·α`) is larger.

use mcs_core::analysis::expected_utility;
use mcs_core::mechanism::Mechanism;
use mcs_core::multi_task::MultiTaskMechanism;
use mcs_core::single_task::SingleTaskMechanism;

use crate::experiments::Repro;
use crate::population::Population;
use crate::report::{Chart, Series};
use crate::stats::Ecdf;

/// Users in the single-task instance (fewer than the sweeps: every winner
/// costs a critical-bid search).
pub const SINGLE_TASK_USERS: usize = 60;
/// Users / tasks in the multi-task instance.
pub const MULTI_TASK_USERS: usize = 40;
/// Number of published tasks in the multi-task instance.
pub const MULTI_TASK_TASKS: usize = 15;

/// Winners' expected utilities across the context's trials.
fn winner_utilities<M, B>(repro: &Repro, experiment: u64, mechanism: &M, mut build: B) -> Vec<f64>
where
    M: Mechanism,
    B: FnMut(&mut rand::rngs::StdRng) -> Option<Population>,
{
    let mut utilities = Vec::new();
    for trial in 0..repro.trials() as u64 {
        for attempt in 0..8u64 {
            let mut rng = repro.rng(experiment, 0, trial * 8 + attempt);
            let Some(population) = build(&mut rng) else {
                continue;
            };
            let Ok(allocation) = mechanism.select_winners(&population.profile) else {
                continue;
            };
            let mut ok = true;
            let mut batch = Vec::with_capacity(allocation.winner_count());
            for winner in allocation.winners() {
                match expected_utility(mechanism, &population.profile, &population.profile, winner)
                {
                    Ok(u) => batch.push(u),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                utilities.extend(batch);
                break;
            }
        }
    }
    utilities
}

/// Runs the experiment.
pub fn run(repro: &Repro) -> Chart {
    let alpha = repro.params().alpha;
    let single = SingleTaskMechanism::new(repro.params().epsilon, alpha).expect("valid params");
    let multi = MultiTaskMechanism::new(alpha).expect("valid alpha");
    let task = repro.single_task_location();

    let single_utilities = winner_utilities(repro, 0x60, &single, |rng| {
        repro
            .builder()
            .single_task(task, SINGLE_TASK_USERS, rng)
            .ok()
    });
    let multi_utilities = winner_utilities(repro, 0x61, &multi, |rng| {
        repro
            .builder()
            .multi_task(MULTI_TASK_TASKS, MULTI_TASK_USERS, rng)
            .ok()
    });

    let single_curve = Ecdf::new(single_utilities).curve();
    let multi_curve = Ecdf::new(multi_utilities).curve();
    Chart::new(
        "Figure 6: ECDF of winners' expected utilities",
        "expected utility",
        "CDF",
        vec![
            Series::new("single task", single_curve),
            Series::new("multi-task", multi_curve),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;
    use crate::stats::mean;

    #[test]
    fn utilities_are_individually_rational_and_multi_dominates() {
        let chart = run(quick_repro());
        let single: Vec<f64> = chart.series[0].points.iter().map(|&(x, _)| x).collect();
        let multi: Vec<f64> = chart.series[1].points.iter().map(|&(x, _)| x).collect();
        assert!(
            !single.is_empty() && !multi.is_empty(),
            "no winners sampled"
        );
        for &u in single.iter().chain(&multi) {
            assert!(u >= -1e-6, "negative expected utility {u}");
        }
        // The paper's qualitative claim: multi-task utilities are mostly
        // higher. Compare means (robust under the reduced test data set).
        assert!(
            mean(&multi) >= mean(&single) - 1e-9,
            "multi-task mean {} below single-task mean {}",
            mean(&multi),
            mean(&single)
        );
    }
}
