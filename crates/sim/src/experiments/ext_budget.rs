//! Extension experiment: coverage under a hard payment budget.
//!
//! The base mechanisms treat coverage as a hard constraint; the
//! [`BudgetedGreedy`] extension flips that around. This experiment charts
//! the coverage ratio achieved as the budget grows, relative to the cost
//! of the unconstrained greedy solution — the "how much fault tolerance
//! does a marginal yuan buy" curve a platform would actually look at.

use mcs_core::extensions::BudgetedGreedy;
use mcs_core::mechanism::WinnerDetermination;
use mcs_core::multi_task::GreedyWinnerDetermination;
use mcs_core::types::Cost;

use crate::experiments::Repro;
use crate::report::{Chart, Series};

/// Budgets, as fractions of the unconstrained greedy solution's cost.
pub fn budget_fractions() -> Vec<f64> {
    vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2]
}

/// Users per instance.
pub const USERS: usize = 60;
/// Tasks per instance.
pub const TASKS: usize = 15;

/// Runs the experiment: mean coverage ratio at each relative budget.
pub fn run(repro: &Repro) -> Chart {
    let greedy = GreedyWinnerDetermination::new();
    let mut points: Vec<(f64, Vec<f64>)> = budget_fractions()
        .into_iter()
        .map(|f| (f, Vec::new()))
        .collect();

    for trial in 0..repro.trials() as u64 {
        for attempt in 0..8u64 {
            let mut rng = repro.rng(0xB1, 0, trial * 8 + attempt);
            let Ok(population) = repro.builder().multi_task(TASKS, USERS, &mut rng) else {
                continue;
            };
            let Ok(full) = greedy.select_winners(&population.profile) else {
                continue;
            };
            let full_cost = full
                .social_cost(&population.profile)
                .expect("winners exist")
                .value();
            for (fraction, samples) in &mut points {
                let budget = Cost::new(full_cost * *fraction).expect("valid budget");
                let outcome = BudgetedGreedy::new(budget)
                    .run(&population.profile)
                    .expect("budgeted run succeeds");
                samples.push(outcome.coverage_ratio());
            }
            break;
        }
    }

    let curve = points
        .into_iter()
        .map(|(fraction, samples)| {
            let mean = if samples.is_empty() {
                f64::NAN
            } else {
                samples.iter().sum::<f64>() / samples.len() as f64
            };
            (fraction, mean)
        })
        .collect();
    Chart::new(
        "ExtBudget: coverage vs payment budget (t = 15)",
        "budget / unconstrained greedy cost",
        "coverage ratio",
        vec![Series::new("budgeted greedy", curve)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::quick_repro;

    #[test]
    fn coverage_grows_with_budget_and_saturates_at_one() {
        let chart = run(quick_repro());
        let points: Vec<(f64, f64)> = chart.series[0]
            .points
            .iter()
            .copied()
            .filter(|(_, y)| !y.is_nan())
            .collect();
        assert!(points.len() >= 5, "too few budget points");
        for pair in points.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-9,
                "coverage fell from budget {} to {}",
                pair[0].0,
                pair[1].0
            );
        }
        let (_, at_zero) = points[0];
        let &(_, at_full) = points.last().unwrap();
        assert!(at_zero < 0.5, "zero budget covered {at_zero}");
        assert!(at_full > 0.999, "full budget covered only {at_full}");
    }
}
