//! # mcs-sim — the evaluation harness
//!
//! Reproduces every table and figure of the paper's Section IV on top of
//! [`mcs_core`] (the mechanisms) and [`mcs_mobility`] (the data
//! substrate):
//!
//! * [`config`] — Table II defaults and Table III experiment grids.
//! * [`population`] — the taxi-fleet → auction-users pipeline
//!   (predictions become task sets, predicted probabilities become PoS,
//!   costs are truncated `N(15, 5)`).
//! * [`experiments`] — one module per figure; [`experiments::run_all`]
//!   regenerates everything.
//! * [`stats`] / [`report`] — ECDFs, histograms, and the table renderers
//!   behind `EXPERIMENTS.md`.
//!
//! The `repro` binary drives it:
//!
//! ```text
//! repro --quick all          # smoke-run every figure on a reduced data set
//! repro fig5a                # paper-scale Figure 5(a)
//! repro --out results all    # also write JSON + markdown into results/
//! ```
//!
//! ## Example
//!
//! ```
//! use mcs_sim::experiments::{fig3, Repro};
//!
//! let repro = Repro::quick();
//! let chart = fig3::run(&repro);
//! assert!(chart.to_table().contains("Figure 3"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod config;
pub mod experiments;
pub mod population;
pub mod report;
pub mod stats;
