//! Simulation parameters: the paper's Table II (defaults) and Table III
//! (multi-task settings).

use mcs_mobility::synth::CityConfig;
use serde::{Deserialize, Serialize};

/// The default simulation parameters of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// PoS requirement `T` of every task (Table II: 0.8).
    pub pos_requirement: f64,
    /// Reward scaling factor `α` (Table II: 10).
    pub alpha: f64,
    /// Range of the per-user task-set size (Table II: `[10, 20]`).
    pub tasks_per_user: (usize, usize),
    /// Mean of the cost distribution (Table II: 15).
    pub cost_mean: f64,
    /// Standard deviation of the cost distribution (Table II: 5).
    ///
    /// The paper's Table II says "variance 5"; with mean 15 the plotted
    /// spread matches a standard deviation of 5, which we adopt.
    pub cost_std_dev: f64,
    /// FPTAS approximation parameter `ε` (the paper highlights ε = 0.5
    /// performing near-optimally in Figure 5(a)).
    pub epsilon: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            pos_requirement: 0.8,
            alpha: 10.0,
            tasks_per_user: (10, 20),
            cost_mean: 15.0,
            cost_std_dev: 5.0,
            epsilon: 0.5,
        }
    }
}

/// Parameters of the synthetic data-set build (the stand-in for the
/// Shanghai taxi trace; see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetParams {
    /// The synthetic city.
    pub city: CityConfig,
    /// Number of taxis (the paper selects 1692).
    pub taxi_count: usize,
    /// Total simulated time slots (≈ January 2013 in hourly slots).
    pub slots: u32,
    /// Slots held out at the end for prediction evaluation.
    pub evaluation_slots: u32,
    /// The sensing window in slots: a user's PoS for a task is her
    /// estimated probability of *visiting* the task cell within this many
    /// slots (the paper's opportunistic-sensing reading of PoS — "her
    /// probability to pass through the location of the task").
    pub sensing_horizon: u32,
    /// Master seed for the data-set build.
    pub seed: u64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            city: CityConfig::default(),
            taxi_count: 1692,
            slots: 744, // 31 days × 24 hourly slots
            evaluation_slots: 48,
            sensing_horizon: 12,
            seed: 20130101,
        }
    }
}

impl DatasetParams {
    /// A reduced build for unit/integration tests: fewer taxis and a
    /// shorter trace, but still enough candidate users per popular
    /// location to run the paper-sized sweeps (n up to 100).
    pub fn small() -> Self {
        DatasetParams {
            taxi_count: 1000,
            slots: 480,
            evaluation_slots: 24,
            ..DatasetParams::default()
        }
    }
}

/// One row of Table III: a multi-task experiment grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskSetting {
    /// Numbers of users to sweep.
    pub user_counts: Vec<usize>,
    /// Numbers of tasks to sweep.
    pub task_counts: Vec<usize>,
    /// Mean cost (both settings use 15).
    pub cost_mean: f64,
    /// PoS requirement (both settings use 0.8).
    pub pos_requirement: f64,
}

/// Table III, setting 1: users ∈ [10, 100], 15 tasks.
pub fn table3_setting1() -> MultiTaskSetting {
    MultiTaskSetting {
        user_counts: (10..=100).step_by(10).collect(),
        task_counts: vec![15],
        cost_mean: 15.0,
        pos_requirement: 0.8,
    }
}

/// Table III, setting 2: 30 users, tasks ∈ [10, 50].
pub fn table3_setting2() -> MultiTaskSetting {
    MultiTaskSetting {
        user_counts: vec![30],
        task_counts: (10..=50).step_by(10).collect(),
        cost_mean: 15.0,
        pos_requirement: 0.8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults_match_paper() {
        let p = SimParams::default();
        assert_eq!(p.pos_requirement, 0.8);
        assert_eq!(p.alpha, 10.0);
        assert_eq!(p.tasks_per_user, (10, 20));
        assert_eq!(p.cost_mean, 15.0);
        assert_eq!(p.cost_std_dev, 5.0);
    }

    #[test]
    fn table3_settings_match_paper() {
        let s1 = table3_setting1();
        assert_eq!(s1.user_counts.first(), Some(&10));
        assert_eq!(s1.user_counts.last(), Some(&100));
        assert_eq!(s1.task_counts, vec![15]);
        let s2 = table3_setting2();
        assert_eq!(s2.user_counts, vec![30]);
        assert_eq!(s2.task_counts.first(), Some(&10));
        assert_eq!(s2.task_counts.last(), Some(&50));
    }

    #[test]
    fn dataset_defaults_are_paper_scale() {
        let d = DatasetParams::default();
        assert_eq!(d.taxi_count, 1692);
        assert_eq!(d.slots, 744);
        assert!(d.evaluation_slots < d.slots);
    }

    #[test]
    fn configs_serialize() {
        let p = SimParams::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: SimParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
