//! Small statistics toolkit: summaries, ECDFs, histograms, and a
//! Box–Muller normal sampler (kept in-tree to avoid an extra dependency).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mean of a sample (0 for an empty one).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// An empirical CDF over a sample.
///
/// # Examples
///
/// ```
/// use mcs_sim::stats::Ecdf;
///
/// let ecdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(ecdf.eval(2.5), 0.5);
/// assert_eq!(ecdf.eval(0.0), 0.0);
/// assert_eq!(ecdf.eval(9.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "ECDF over NaN is meaningless"
        );
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted: values }
    }

    /// `P(X ≤ x)` under the empirical distribution.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The sample in ascending order.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, F(x))` pairs at each sample point — the plottable curve.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A fixed-range equal-width histogram (an empirical PDF when normalized).
///
/// # Examples
///
/// ```
/// use mcs_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4);
/// for v in [0.1, 0.15, 0.6, 0.9] {
///     h.add(v);
/// }
/// assert_eq!(h.counts(), &[2, 0, 1, 1]);
/// let pdf = h.density();
/// // Densities integrate to 1: Σ density·bin_width = 1.
/// let integral: f64 = pdf.iter().map(|&(_, d)| d * 0.25).sum();
/// assert!((integral - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics on an empty range or zero bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a value; out-of-range values clamp into the first/last bin.
    pub fn add(&mut self, value: f64) {
        assert!(!value.is_nan(), "histogram over NaN is meaningless");
        let bins = self.counts.len();
        let idx = if value <= self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds all values from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total added values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// `(bin centre, density)` pairs; densities integrate to 1.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let w = self.bin_width();
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let centre = self.lo + (i as f64 + 0.5) * w;
                (centre, c as f64 / (total * w))
            })
            .collect()
    }

    /// `(bin centre, fraction)` pairs; fractions sum to 1.
    pub fn fractions(&self) -> Vec<(f64, f64)> {
        let w = self.bin_width();
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c as f64 / total))
            .collect()
    }
}

/// A Box–Muller Gaussian sampler.
///
/// # Examples
///
/// ```
/// use mcs_sim::stats::{mean, std_dev, Normal};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let normal = Normal::new(15.0, 5.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let sample: Vec<f64> = (0..20_000).map(|_| normal.sample(&mut rng)).collect();
/// assert!((mean(&sample) - 15.0).abs() < 0.1);
/// assert!((std_dev(&sample) - 5.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite(),
            "parameters must be finite"
        );
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Normal { mean, std_dev }
    }

    /// Draws one sample (Box–Muller transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ (0, 1] to keep ln(u) finite.
        let u: f64 = 1.0 - rng.gen::<f64>();
        let v: f64 = rng.gen();
        let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
        self.mean + self.std_dev * z
    }

    /// Draws a sample truncated below at `min` (rejection sampling; falls
    /// back to `min` after 1000 rejections, which for the paper's
    /// N(15, 5) truncated at 0 is a ~1e-3 probability event per draw
    /// overall).
    pub fn sample_truncated_below<R: Rng + ?Sized>(&self, rng: &mut R, min: f64) -> f64 {
        for _ in 0..1000 {
            let x = self.sample(rng);
            if x >= min {
                return x;
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_std_dev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn ecdf_is_right_continuous_step_function() {
        let ecdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(ecdf.eval(0.5), 0.0);
        assert_eq!(ecdf.eval(1.0), 0.25);
        assert_eq!(ecdf.eval(2.0), 0.75);
        assert_eq!(ecdf.eval(3.0), 1.0);
        let curve = ecdf.curve();
        assert_eq!(curve.len(), 4);
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        h.add(1.0); // hi boundary goes to the last bin
        assert_eq!(h.counts(), &[1, 2]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend((0..100).map(|i| f64::from(i) / 10.0));
        let sum: f64 = h.fractions().iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_sampling_respects_bound() {
        let normal = Normal::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(normal.sample_truncated_below(&mut rng, 0.5) >= 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_histogram_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
