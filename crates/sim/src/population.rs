//! Building auction populations from the mobility data set.
//!
//! This reproduces the paper's Section IV-A pipeline: simulate the taxi
//! fleet, learn per-taxi mobility models, predict each taxi's likely next
//! locations, and turn taxis into auction users — task sets are predicted
//! locations, PoS values are the predicted transition probabilities, and
//! costs are drawn from a (truncated) normal distribution.

use std::collections::BTreeMap;

use mcs_core::types::{Cost, Pos, Task, TaskId, TypeProfile, UserId, UserType};
use mcs_mobility::grid::LocationId;
use mcs_mobility::learn::{learn_all, MobilityModel, Smoothing};
use mcs_mobility::predict::visit_profile;
use mcs_mobility::synth::SyntheticCity;
use mcs_mobility::trace::{TaxiId, TraceSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::{DatasetParams, SimParams};
use crate::stats::Normal;

/// The built data set: city, traces, learned models, and derived
/// popularity/prediction tables. Build once, share across experiments.
#[derive(Debug)]
pub struct Dataset {
    params: DatasetParams,
    city: SyntheticCity,
    train: TraceSet,
    test: TraceSet,
    models: BTreeMap<TaxiId, MobilityModel>,
    /// Row-stochastic (add-one smoothed) models used for multi-slot visit
    /// estimation; the paper's sub-stochastic smoothing is right for
    /// next-slot prediction but leaks occupancy mass across steps.
    sensing_models: BTreeMap<TaxiId, MobilityModel>,
    /// Visit counts per location over the training trace.
    popularity: Vec<u64>,
    /// Per-taxi predicted next locations (top 20, positive probability),
    /// from the taxi's last training position.
    predictions: BTreeMap<TaxiId, Vec<(LocationId, f64)>>,
    /// Per-taxi prediction origin (the modal training location).
    origins: BTreeMap<TaxiId, LocationId>,
}

impl Dataset {
    /// How many predicted locations are kept per taxi. Deliberately above
    /// Table II's task-set cap of 20: the cap applies to the *task set* a
    /// user declares, while this is the pool she declares it from.
    pub const MAX_PREDICTIONS: usize = 40;

    /// Builds the data set deterministically from `params.seed`.
    pub fn build(params: DatasetParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let city = SyntheticCity::generate(params.city, &mut rng);
        let traces = city.simulate(params.taxi_count, params.slots, &mut rng);
        let (train, test) = traces.split_at_slot(params.slots - params.evaluation_slots);
        let models = learn_all(&train, Smoothing::Paper);
        let sensing_models = learn_all(&train, Smoothing::AddOne);

        let mut popularity = vec![0u64; city.grid().cell_count()];
        for taxi in train.taxis() {
            for event in train.trace(taxi) {
                popularity[event.location.index()] += 1;
            }
        }

        // Prediction origin: the paper "randomly assigns each taxi a
        // starting location" and takes the locations she will reach with
        // high probability. We assign each taxi her *modal* training
        // location — the origin with the densest data, hence the least
        // smoothing shrinkage — and use her estimated probability of
        // visiting each cell within the sensing window as the PoS.
        let horizon = params.sensing_horizon;
        let mut origins = BTreeMap::new();
        let mut predictions = BTreeMap::new();
        for taxi in train.taxis() {
            let Some(model) = sensing_models.get(&taxi) else {
                continue;
            };
            let mut visits: BTreeMap<LocationId, u64> = BTreeMap::new();
            for event in train.trace(taxi) {
                *visits.entry(event.location).or_default() += 1;
            }
            let Some((&origin, _)) = visits
                .iter()
                .max_by_key(|&(loc, &count)| (count, std::cmp::Reverse(*loc)))
            else {
                continue;
            };
            let mut top = visit_profile(model, origin, horizon);
            top.truncate(Self::MAX_PREDICTIONS);
            if !top.is_empty() {
                origins.insert(taxi, origin);
                predictions.insert(taxi, top);
            }
        }

        Dataset {
            params,
            city,
            train,
            test,
            models,
            sensing_models,
            popularity,
            predictions,
            origins,
        }
    }

    /// The build parameters.
    pub fn params(&self) -> &DatasetParams {
        &self.params
    }

    /// The synthetic city.
    pub fn city(&self) -> &SyntheticCity {
        &self.city
    }

    /// The training trace (all but the evaluation slots).
    pub fn train(&self) -> &TraceSet {
        &self.train
    }

    /// The held-out evaluation trace.
    pub fn test(&self) -> &TraceSet {
        &self.test
    }

    /// The learned per-taxi models (paper smoothing; next-slot
    /// prediction, Figures 3 and 4).
    pub fn models(&self) -> &BTreeMap<TaxiId, MobilityModel> {
        &self.models
    }

    /// The row-stochastic per-taxi models used for sensing-window visit
    /// estimation (the auction PoS pipeline).
    pub fn sensing_models(&self) -> &BTreeMap<TaxiId, MobilityModel> {
        &self.sensing_models
    }

    /// Per-taxi predicted `(location, PoS)` lists (top 20, descending).
    pub fn predictions(&self) -> &BTreeMap<TaxiId, Vec<(LocationId, f64)>> {
        &self.predictions
    }

    /// The prediction origin (modal training location) of `taxi`, if she
    /// has a usable model.
    pub fn origin_of(&self, taxi: TaxiId) -> Option<LocationId> {
        self.origins.get(&taxi).copied()
    }

    /// How many times `location` was visited in the training trace.
    pub fn visit_count(&self, location: LocationId) -> u64 {
        self.popularity.get(location.index()).copied().unwrap_or(0)
    }

    /// `count` task locations for a sensing *campaign*: the cells nearest
    /// the most-visited cell (ties by popularity, then id).
    ///
    /// The paper's motivating campaigns are localized ("photos of all
    /// flower shops"); clustering the published tasks around the busiest
    /// district is what gives users the Table-II task-set sizes of 10–20 —
    /// a taxi frequenting the district can serve most of its tasks.
    pub fn campaign_locations(&self, count: usize) -> Vec<LocationId> {
        let anchor = self.popular_locations(1)[0];
        let grid = self.city.grid();
        // Only genuinely frequented cells make sensible tasks: start from
        // a generous pool of the most-visited cells, then take the ones
        // nearest the anchor.
        let mut pool = self.popular_locations((4 * count).min(grid.cell_count()));
        pool.sort_by(|&a, &b| {
            let da = grid.distance_km(anchor, a);
            let db = grid.distance_km(anchor, b);
            da.partial_cmp(&db)
                .expect("finite distances")
                .then(self.visit_count(b).cmp(&self.visit_count(a)))
                .then(a.cmp(&b))
        });
        pool.truncate(count);
        pool
    }

    /// A single-task location with at least `min_candidates` taxis able to
    /// serve it: the *least* popular such cell.
    ///
    /// The paper "fixes a randomly chosen task"; choosing the hardest
    /// adequately-supplied cell keeps the users' PoS values in the low
    /// range of Figure 4 (a downtown cell would be trivially covered by
    /// almost everyone, washing out the comparisons).
    pub fn single_task_location(&self, min_candidates: usize) -> Option<LocationId> {
        let mut counts: BTreeMap<LocationId, usize> = BTreeMap::new();
        for predictions in self.predictions.values() {
            for &(loc, _) in predictions {
                *counts.entry(loc).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, count)| count >= min_candidates)
            .min_by_key(|&(loc, _)| (self.visit_count(loc), loc))
            .map(|(loc, _)| loc)
    }

    /// The `count` most-visited locations, descending by training visits
    /// (ties by id) — the platform publishes tasks where demand is.
    pub fn popular_locations(&self, count: usize) -> Vec<LocationId> {
        let mut order: Vec<usize> = (0..self.popularity.len()).collect();
        order.sort_by(|&a, &b| self.popularity[b].cmp(&self.popularity[a]).then(a.cmp(&b)));
        order
            .into_iter()
            .take(count)
            .map(|i| LocationId::new(i as u32))
            .collect()
    }
}

/// Why a population could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Fewer taxis can serve the task(s) than the requested user count.
    NotEnoughCandidates {
        /// How many candidates were available.
        available: usize,
        /// How many users were requested.
        requested: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NotEnoughCandidates {
                available,
                requested,
            } => write!(
                f,
                "only {available} candidate taxis for {requested} requested users"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// A built auction population: the profile plus the taxi behind each user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// The auction instance.
    pub profile: TypeProfile,
    /// `taxis[i]` is the taxi behind the user with id `i`.
    pub taxis: Vec<TaxiId>,
}

/// Builds auction populations from a [`Dataset`] under [`SimParams`].
#[derive(Debug, Clone, Copy)]
pub struct PopulationBuilder<'a> {
    dataset: &'a Dataset,
    params: SimParams,
}

impl<'a> PopulationBuilder<'a> {
    /// Creates a builder.
    pub fn new(dataset: &'a Dataset, params: SimParams) -> Self {
        PopulationBuilder { dataset, params }
    }

    /// The simulation parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Builds a single-task instance: `n` users drawn from the taxis whose
    /// predictions include `task_location`, each bidding her predicted
    /// PoS for that location and a truncated-normal cost.
    ///
    /// # Errors
    ///
    /// [`BuildError::NotEnoughCandidates`] if fewer than `n` taxis can
    /// serve the task.
    pub fn single_task<R: Rng + ?Sized>(
        &self,
        task_location: LocationId,
        n: usize,
        rng: &mut R,
    ) -> Result<Population, BuildError> {
        let mut candidates: Vec<(TaxiId, f64)> = self
            .dataset
            .predictions()
            .iter()
            .filter_map(|(&taxi, predictions)| {
                predictions
                    .iter()
                    .find(|&&(loc, _)| loc == task_location)
                    .map(|&(_, pos)| (taxi, pos))
            })
            .collect();
        if candidates.len() < n {
            return Err(BuildError::NotEnoughCandidates {
                available: candidates.len(),
                requested: n,
            });
        }
        shuffle(&mut candidates, rng);
        candidates.truncate(n);

        let normal = Normal::new(self.params.cost_mean, self.params.cost_std_dev);
        let mut users = Vec::with_capacity(n);
        let mut taxis = Vec::with_capacity(n);
        for (idx, (taxi, pos)) in candidates.into_iter().enumerate() {
            let cost = normal.sample_truncated_below(rng, 0.0);
            users.push(
                UserType::builder(UserId::new(idx as u32))
                    .cost(Cost::new(cost).expect("truncated cost is valid"))
                    .task(TaskId::new(0), Pos::saturating(pos))
                    .build()
                    .expect("non-empty task set"),
            );
            taxis.push(taxi);
        }
        let requirement = Pos::saturating(self.params.pos_requirement);
        let profile = TypeProfile::single_task(requirement, users)
            .expect("constructed single-task profile is valid");
        Ok(Population { profile, taxis })
    }

    /// Builds a multi-task, single-minded instance: the platform publishes
    /// `task_count` tasks at the most popular locations; each of the `n`
    /// users' task set is her predicted locations among them (up to a
    /// Table-II-sampled size), with her predicted PoS per task.
    ///
    /// # Errors
    ///
    /// [`BuildError::NotEnoughCandidates`] if fewer than `n` taxis predict
    /// at least one published task.
    pub fn multi_task<R: Rng + ?Sized>(
        &self,
        task_count: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Population, BuildError> {
        let locations = self.dataset.campaign_locations(task_count);
        let task_of: BTreeMap<LocationId, TaskId> = locations
            .iter()
            .enumerate()
            .map(|(idx, &loc)| (loc, TaskId::new(idx as u32)))
            .collect();

        // A taxi opts into the campaign only if she can meaningfully
        // contribute: her total log-domain contribution across the
        // published tasks must be at least a meaningful fraction of one
        // task's requirement (platforms advertise to drivers working the
        // district, not to everyone).
        let min_contribution = 0.5 * -(1.0 - self.params.pos_requirement.min(0.999)).ln();
        let mut candidates: Vec<(TaxiId, Vec<(TaskId, f64)>)> = self
            .dataset
            .predictions()
            .iter()
            .filter_map(|(&taxi, predictions)| {
                let covered: Vec<(TaskId, f64)> = predictions
                    .iter()
                    .filter_map(|&(loc, pos)| task_of.get(&loc).map(|&t| (t, pos)))
                    .collect();
                let total_q: f64 = covered
                    .iter()
                    .map(|&(_, p)| -(1.0 - p.min(0.999_999)).ln())
                    .sum();
                (total_q >= min_contribution).then_some((taxi, covered))
            })
            .collect();
        if candidates.len() < n {
            return Err(BuildError::NotEnoughCandidates {
                available: candidates.len(),
                requested: n,
            });
        }
        shuffle(&mut candidates, rng);
        candidates.truncate(n);

        let normal = Normal::new(self.params.cost_mean, self.params.cost_std_dev);
        let (lo, hi) = self.params.tasks_per_user;
        let mut users = Vec::with_capacity(n);
        let mut taxis = Vec::with_capacity(n);
        for (idx, (taxi, mut covered)) in candidates.into_iter().enumerate() {
            // Task-set size per Table II, capped by what the taxi covers.
            // The set itself is drawn uniformly from her covered tasks —
            // users have idiosyncratic preferences (expertise, routing)
            // beyond raw reachability, and this matches the paper's
            // "depending on her location and other factors … decides a set
            // of tasks".
            let size = rng.gen_range(lo..=hi).min(covered.len());
            shuffle(&mut covered, rng);
            covered.truncate(size);
            let cost = normal.sample_truncated_below(rng, 0.0);
            let mut builder = UserType::builder(UserId::new(idx as u32))
                .cost(Cost::new(cost).expect("truncated cost is valid"));
            for (task, pos) in covered {
                builder = builder.task(task, Pos::saturating(pos));
            }
            users.push(builder.build().expect("non-empty task set"));
            taxis.push(taxi);
        }

        let requirement = Pos::saturating(self.params.pos_requirement);
        let tasks: Vec<Task> = locations
            .iter()
            .enumerate()
            .map(|(idx, _)| Task::new(TaskId::new(idx as u32), requirement))
            .collect();
        let profile =
            TypeProfile::new(users, tasks).expect("constructed multi-task profile is valid");
        Ok(Population { profile, taxis })
    }
}

/// Fisher–Yates shuffle (avoids pulling in `rand`'s `SliceRandom` trait
/// just for this).
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// A shared small data set so the whole test module builds it once.
    fn dataset() -> &'static Dataset {
        static DATASET: OnceLock<Dataset> = OnceLock::new();
        DATASET.get_or_init(|| Dataset::build(DatasetParams::small()))
    }

    #[test]
    fn dataset_build_is_deterministic() {
        let a = Dataset::build(DatasetParams::small());
        assert_eq!(a.train(), dataset().train());
        assert_eq!(a.popular_locations(5), dataset().popular_locations(5));
    }

    #[test]
    fn popular_locations_are_sorted_by_visits() {
        let ds = dataset();
        let popular = ds.popular_locations(10);
        assert_eq!(popular.len(), 10);
        for pair in popular.windows(2) {
            assert!(ds.visit_count(pair[0]) >= ds.visit_count(pair[1]));
        }
    }

    #[test]
    fn single_task_population_has_requested_shape() {
        let ds = dataset();
        let builder = PopulationBuilder::new(ds, SimParams::default());
        let task = ds.popular_locations(1)[0];
        let mut rng = StdRng::seed_from_u64(5);
        let population = builder.single_task(task, 20, &mut rng).unwrap();
        assert_eq!(population.profile.user_count(), 20);
        assert_eq!(population.taxis.len(), 20);
        assert!(population.profile.is_single_task());
        for user in population.profile.users() {
            assert!(user.cost().value() >= 0.0);
            let pos = user.pos_for(TaskId::new(0)).unwrap();
            assert!(pos.value() > 0.0, "candidate without positive PoS");
        }
    }

    #[test]
    fn single_task_rejects_oversized_requests() {
        let ds = dataset();
        let builder = PopulationBuilder::new(ds, SimParams::default());
        let task = ds.popular_locations(1)[0];
        let mut rng = StdRng::seed_from_u64(5);
        let err = builder.single_task(task, 10_000, &mut rng).unwrap_err();
        assert!(matches!(err, BuildError::NotEnoughCandidates { .. }));
    }

    #[test]
    fn multi_task_population_respects_table2_sizes() {
        let ds = dataset();
        let builder = PopulationBuilder::new(ds, SimParams::default());
        let mut rng = StdRng::seed_from_u64(6);
        let population = builder.multi_task(15, 30, &mut rng).unwrap();
        assert_eq!(population.profile.user_count(), 30);
        assert_eq!(population.profile.task_count(), 15);
        for user in population.profile.users() {
            assert!(user.task_count() >= 1);
            assert!(user.task_count() <= 20);
        }
    }

    #[test]
    fn populations_are_seed_deterministic() {
        let ds = dataset();
        let builder = PopulationBuilder::new(ds, SimParams::default());
        let task = ds.popular_locations(1)[0];
        let a = builder
            .single_task(task, 15, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = builder
            .single_task(task, 15, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
    }
}
