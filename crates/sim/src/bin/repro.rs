//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--trials N] [--seed S] [--out DIR] <command>
//!
//! commands:
//!   config       print Table II / Table III parameters
//!   fig3 | fig4 | fig5a | fig5b | fig5c | fig6 | fig7 | fig8 | fig9
//!   all          run every paper figure in order
//!   strategy | budget | calibration | ext
//!                the extension experiments (ext = all three)
//!   verify       rerun every figure and print a PASS/FAIL verdict per
//!                paper claim (exit code reflects the overall verdict)
//! ```
//!
//! Without `--quick` the paper-scale data set is used (1692 taxis, a month
//! of hourly slots, 20 trials per point); `--quick` runs a reduced build
//! for smoke testing. With `--out DIR`, each chart is also written as
//! `DIR/<name>.json` and `DIR/<name>.md`.

use std::path::PathBuf;
use std::process::ExitCode;

use mcs_sim::config::{table3_setting1, table3_setting2, DatasetParams, SimParams};
use mcs_sim::experiments::{
    ext_budget, ext_calibration, ext_strategy, fig3, fig4, fig5, fig6, fig7, fig89, verify, Repro,
};
use mcs_sim::report::Chart;

struct Options {
    quick: bool,
    trials: Option<usize>,
    seed: u64,
    out: Option<PathBuf>,
    command: String,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        trials: None,
        seed: 0xC0FFEE,
        out: None,
        command: String::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--trials" => {
                let value = args.next().ok_or("--trials needs a value")?;
                options.trials = Some(value.parse().map_err(|_| "invalid --trials value")?);
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                options.seed = value.parse().map_err(|_| "invalid --seed value")?;
            }
            "--out" => {
                let value = args.next().ok_or("--out needs a directory")?;
                options.out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                options.command = "help".into();
                return Ok(options);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            command => {
                if !options.command.is_empty() {
                    return Err("more than one command given".into());
                }
                options.command = command.to_string();
            }
        }
    }
    if options.command.is_empty() {
        options.command = "help".into();
    }
    Ok(options)
}

fn usage() -> &'static str {
    "usage: repro [--quick] [--trials N] [--seed S] [--out DIR] \
     <config|fig3|...|fig9|all|strategy|budget|calibration|ext|verify>"
}

fn print_config() {
    let params = SimParams::default();
    let dataset = DatasetParams::default();
    println!("# Table II: default simulation parameters");
    println!("  PoS requirement T        {}", params.pos_requirement);
    println!("  reward scaling factor α  {}", params.alpha);
    println!(
        "  tasks per user           [{}, {}]",
        params.tasks_per_user.0, params.tasks_per_user.1
    );
    println!(
        "  cost distribution        N({}, {}²), truncated ≥ 0",
        params.cost_mean, params.cost_std_dev
    );
    println!("  FPTAS ε                  {}", params.epsilon);
    println!();
    println!("# Table III: multi-task settings");
    let s1 = table3_setting1();
    println!(
        "  setting 1: users {:?}, tasks {:?}, mean cost {}, T {}",
        (s1.user_counts.first(), s1.user_counts.last()),
        s1.task_counts,
        s1.cost_mean,
        s1.pos_requirement
    );
    let s2 = table3_setting2();
    println!(
        "  setting 2: users {:?}, tasks {:?}, mean cost {}, T {}",
        s2.user_counts,
        (s2.task_counts.first(), s2.task_counts.last()),
        s2.cost_mean,
        s2.pos_requirement
    );
    println!();
    println!("# Data set (synthetic stand-in for the Shanghai trace)");
    println!(
        "  taxis {}, slots {}, seed {}",
        dataset.taxi_count, dataset.slots, dataset.seed
    );
}

fn emit(chart: &Chart, out: &Option<PathBuf>) -> std::io::Result<()> {
    println!("{}", chart.to_table());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir)?;
        let stem: String = chart
            .title
            .chars()
            .take_while(|&c| c != ':')
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        std::fs::write(
            dir.join(format!("{stem}.json")),
            serde_json::to_vec_pretty(chart)?,
        )?;
        std::fs::write(dir.join(format!("{stem}.md")), chart.to_markdown())?;
        std::fs::write(dir.join(format!("{stem}.csv")), chart.to_csv())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if options.command == "help" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if options.command == "config" {
        print_config();
        return ExitCode::SUCCESS;
    }

    let dataset = if options.quick {
        DatasetParams::small()
    } else {
        DatasetParams::default()
    };
    let trials = options.trials.unwrap_or(if options.quick { 3 } else { 20 });
    eprintln!(
        "building data set ({} taxis, {} slots)…",
        dataset.taxi_count, dataset.slots
    );
    let start = std::time::Instant::now();
    let repro = Repro::new(dataset, SimParams::default(), trials, options.seed);
    eprintln!("data set ready in {:.1?}", start.elapsed());

    type Job = (&'static str, fn(&Repro) -> Chart);
    if options.command == "verify" {
        eprintln!("running every figure and checking the paper's claims…");
        let checks = verify::verify(&repro);
        print!("{}", verify::render(&checks));
        if let Some(dir) = &options.out {
            if let Err(error) = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(
                    dir.join("verdicts.json"),
                    serde_json::to_vec_pretty(&checks).expect("serializable"),
                )
            }) {
                eprintln!("error writing verdicts: {error}");
                return ExitCode::FAILURE;
            }
        }
        return if checks.iter().all(|c| c.pass) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let jobs: Vec<Job> = vec![
        ("fig3", fig3::run),
        ("fig4", fig4::run),
        ("fig5a", fig5::run_5a),
        ("fig5b", fig5::run_5b),
        ("fig5c", fig5::run_5c),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig89::run_fig8),
        ("fig9", fig89::run_fig9),
        ("strategy", ext_strategy::run),
        ("budget", ext_budget::run),
        ("calibration", ext_calibration::run),
    ];
    let selected: Vec<_> = jobs
        .iter()
        .filter(|(name, _)| match options.command.as_str() {
            // `all` = the paper's figures; extensions run via `ext` or by
            // name so the default reproduction stays exactly paper-shaped.
            "all" => !matches!(*name, "strategy" | "budget" | "calibration"),
            "ext" => matches!(*name, "strategy" | "budget" | "calibration"),
            command => command == *name,
        })
        .collect();
    if selected.is_empty() {
        eprintln!("error: unknown command {}\n{}", options.command, usage());
        return ExitCode::FAILURE;
    }
    for (name, job) in selected {
        eprintln!("running {name}…");
        let start = std::time::Instant::now();
        let chart = job(&repro);
        eprintln!("{name} done in {:.1?}", start.elapsed());
        if let Err(error) = emit(&chart, &options.out) {
            eprintln!("error writing output: {error}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
