//! Plain-text reporting: aligned tables for the terminal and markdown for
//! `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// One labelled data series, e.g. a curve in a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label ("FPTAS (ε=0.5)", "OPT", …).
    pub label: String,
    /// `(x, y)` points. `NaN` y-values mean "no data for this x" and are
    /// rendered as `-`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y-value at `x`, if present and not NaN.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| px == x)
            .map(|&(_, y)| y)
            .filter(|y| !y.is_nan())
    }
}

/// A figure-shaped result: multiple series over a shared x-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    /// Chart title (e.g. "Figure 5(a): social cost, single task").
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Chart {
    /// Creates a chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<Series>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
        }
    }

    /// The first series whose label contains `label`.
    ///
    /// # Errors
    ///
    /// [`MissingSeries`] naming the chart and the label looked for —
    /// callers that tolerate partial charts (e.g. `repro verify`) can
    /// report the miss instead of panicking.
    pub fn series_containing(&self, label: &str) -> Result<&Series, MissingSeries> {
        self.series
            .iter()
            .find(|s| s.label.contains(label))
            .ok_or_else(|| MissingSeries {
                chart: self.title.clone(),
                label: label.to_string(),
            })
    }

    /// All distinct x-values across series, ascending.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        xs
    }

    /// Renders an aligned text table: one row per x, one column per series.
    pub fn to_table(&self) -> String {
        let mut header: Vec<String> = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let mut rows: Vec<Vec<String>> = vec![header];
        for x in self.xs() {
            let mut row = vec![format_number(x)];
            for series in &self.series {
                row.push(
                    series
                        .y_at(x)
                        .map_or_else(|| "-".to_string(), format_number),
                );
            }
            rows.push(row);
        }
        let mut out = format!("# {}  [y: {}]\n", self.title, self.y_label);
        out.push_str(&render_aligned(&rows));
        out
    }

    /// Renders an RFC-4180-style CSV table (header row, one row per x;
    /// missing points are empty fields) — convenient for external plotting
    /// tools.
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&quote(&self.x_label));
        for series in &self.series {
            out.push(',');
            out.push_str(&quote(&series.label));
        }
        out.push('\n');
        for x in self.xs() {
            out.push_str(&format_number(x));
            for series in &self.series {
                out.push(',');
                if let Some(y) = series.y_at(x) {
                    out.push_str(&format_number(y));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}** (y: {})\n\n", self.title, self.y_label));
        out.push_str(&format!(
            "| {} | {} |\n",
            self.x_label,
            self.series
                .iter()
                .map(|s| s.label.clone())
                .collect::<Vec<_>>()
                .join(" | ")
        ));
        out.push_str(&format!("|{}\n", "---|".repeat(self.series.len() + 1)));
        for x in self.xs() {
            let cells: Vec<String> = self
                .series
                .iter()
                .map(|s| s.y_at(x).map_or_else(|| "-".to_string(), format_number))
                .collect();
            out.push_str(&format!(
                "| {} | {} |\n",
                format_number(x),
                cells.join(" | ")
            ));
        }
        out
    }
}

/// A chart lookup failed: no series label contains the searched fragment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissingSeries {
    /// Title of the chart that was searched.
    pub chart: String,
    /// The label fragment looked for.
    pub label: String,
}

impl std::fmt::Display for MissingSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chart {:?} has no series labelled {:?}",
            self.chart, self.label
        )
    }
}

impl std::error::Error for MissingSeries {}

/// Formats a number compactly: integers without decimals, otherwise 4
/// significant-ish decimals.
pub fn format_number(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{value:.0}")
    } else {
        format!("{value:.4}")
    }
}

fn render_aligned(rows: &[Vec<String>]) -> String {
    let columns = rows.iter().map(Vec::len).max().unwrap_or(0);
    let widths: Vec<usize> = (0..columns)
        .map(|c| {
            rows.iter()
                .filter_map(|r| r.get(c))
                .map(String::len)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = String::new();
    for (idx, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
        if idx == 0 {
            let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
            out.push_str(&rule.join("  "));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart::new(
            "Figure X",
            "n",
            "cost",
            vec![
                Series::new("A", vec![(10.0, 1.5), (20.0, 1.0)]),
                Series::new("B", vec![(10.0, 2.0), (30.0, f64::NAN)]),
            ],
        )
    }

    #[test]
    fn xs_merge_and_sort() {
        assert_eq!(chart().xs(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn missing_points_render_as_dash() {
        let table = chart().to_table();
        assert!(table.contains('-'));
        let lines: Vec<&str> = table.lines().collect();
        // Title + header + rule + 3 data rows.
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn csv_has_header_and_empty_cells_for_missing_points() {
        let csv = chart().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,A,B");
        assert_eq!(lines[1], "10,1.5000,2");
        assert_eq!(lines[2], "20,1,");
        assert_eq!(lines[3], "30,,");
    }

    #[test]
    fn csv_quotes_commas_in_labels() {
        let chart = Chart::new("t", "x", "y", vec![Series::new("a,b", vec![(1.0, 2.0)])]);
        assert!(chart.to_csv().starts_with("x,\"a,b\""));
    }

    #[test]
    fn markdown_has_header_separator() {
        let md = chart().to_markdown();
        assert!(md.contains("| n | A | B |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    fn y_at_filters_nan() {
        let chart = chart();
        assert_eq!(chart.series[1].y_at(30.0), None);
        assert_eq!(chart.series[0].y_at(20.0), Some(1.0));
    }

    #[test]
    fn series_containing_matches_by_fragment_or_errors() {
        let chart = chart();
        assert_eq!(chart.series_containing("A").unwrap().label, "A");
        let missing = chart.series_containing("OPT").unwrap_err();
        assert_eq!(missing.chart, "Figure X");
        assert_eq!(missing.label, "OPT");
        assert!(missing.to_string().contains("no series labelled"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(42.0), "42");
        assert_eq!(format_number(0.12345), "0.1235");
    }
}
