//! Property-based tests for the mobility substrate: stochastic-matrix
//! invariants, trace bookkeeping, smoothing bounds, visit-probability
//! bounds, and CSV round-trips.

use mcs_mobility::grid::LocationId;
use mcs_mobility::learn::{MobilityModel, Smoothing};
use mcs_mobility::markov::TransitionMatrix;
use mcs_mobility::predict::{visit_probability, visit_profile};
use mcs_mobility::trace::{TaxiId, TraceEvent, TraceSet};
use mcs_mobility::trace_io::{read_csv, write_csv};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn weights_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..6).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0.0..10.0f64, n..=n), n..=n)
    })
}

fn trace_strategy() -> impl Strategy<Value = TraceSet> {
    proptest::collection::vec((0u32..4, 0u32..50, 0u32..12), 0..80).prop_map(|events| {
        events
            .into_iter()
            .map(|(taxi, slot, location)| TraceEvent {
                taxi: TaxiId::new(taxi),
                slot,
                location: LocationId::new(location),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn normalized_weight_rows_are_stochastic(weights in weights_strategy()) {
        let n = weights.len();
        let matrix = TransitionMatrix::from_weights(weights);
        prop_assert_eq!(matrix.state_count(), n);
        for from in 0..n {
            let row_sum: f64 = matrix.row(LocationId::new(from as u32)).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9, "row {} sums to {}", from, row_sum);
        }
    }

    #[test]
    fn sampling_stays_in_range(weights in weights_strategy(), seed in any::<u64>()) {
        let n = weights.len();
        let matrix = TransitionMatrix::from_weights(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = LocationId::new(0);
        for _ in 0..50 {
            state = matrix.sample_next(state, &mut rng);
            prop_assert!(state.index() < n);
        }
    }

    #[test]
    fn stationary_distribution_is_a_distribution(weights in weights_strategy()) {
        let matrix = TransitionMatrix::from_weights(weights);
        let pi = matrix.stationary(2000, 1e-12);
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(pi.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn trace_events_stay_sorted_and_deduped(traces in trace_strategy()) {
        for taxi in traces.taxis() {
            let trace = traces.trace(taxi);
            for pair in trace.windows(2) {
                prop_assert!(pair[0].slot < pair[1].slot, "slots out of order or duplicated");
            }
        }
    }

    #[test]
    fn split_partitions_all_events(traces in trace_strategy(), cut in 0u32..60) {
        let (train, test) = traces.split_at_slot(cut);
        prop_assert_eq!(train.event_count() + test.event_count(), traces.event_count());
        for taxi in train.taxis() {
            prop_assert!(train.trace(taxi).iter().all(|e| e.slot < cut));
        }
        for taxi in test.taxis() {
            prop_assert!(test.trace(taxi).iter().all(|e| e.slot >= cut));
        }
    }

    #[test]
    fn paper_smoothing_never_exceeds_add_one(traces in trace_strategy()) {
        for taxi in traces.taxis() {
            let paper = MobilityModel::learn(&traces, taxi, Smoothing::Paper);
            let add_one = MobilityModel::learn(&traces, taxi, Smoothing::AddOne);
            for &from in paper.visited() {
                let mut paper_row = 0.0;
                let mut add_one_row = 0.0;
                for &to in paper.visited() {
                    let p = paper.prob(from, to);
                    let a = add_one.prob(from, to);
                    prop_assert!(p <= a + 1e-12);
                    paper_row += p;
                    add_one_row += a;
                }
                prop_assert!(paper_row < 1.0 + 1e-12);
                prop_assert!(add_one_row <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn top_k_is_sorted_positive_and_bounded(traces in trace_strategy(), k in 1usize..8) {
        for taxi in traces.taxis() {
            let model = MobilityModel::learn(&traces, taxi, Smoothing::Paper);
            for &from in model.visited() {
                let top = model.top_k(from, k);
                prop_assert!(top.len() <= k);
                for pair in top.windows(2) {
                    prop_assert!(pair[0].1 >= pair[1].1);
                }
                for &(_, p) in &top {
                    prop_assert!(p > 0.0 && p <= 1.0);
                }
            }
        }
    }

    #[test]
    fn visit_probability_bounded_and_monotone(traces in trace_strategy()) {
        for taxi in traces.taxis().take(2) {
            let model = MobilityModel::learn(&traces, taxi, Smoothing::AddOne);
            let Some(&origin) = model.visited().first() else { continue };
            for &target in model.visited().iter().take(4) {
                let mut last = 0.0;
                for horizon in 1..6 {
                    let p = visit_probability(&model, origin, target, horizon);
                    prop_assert!((0.0..=1.0).contains(&p));
                    prop_assert!(p >= last - 1e-12, "hit probability fell with horizon");
                    last = p;
                }
            }
            // The batched profile stays in range and is at least the
            // one-step probability (its first factor).
            for &(target, estimate) in visit_profile(&model, origin, 5).iter().take(4) {
                prop_assert!((0.0..=1.0).contains(&estimate));
                let one_step = visit_probability(&model, origin, target, 1);
                prop_assert!(estimate >= one_step - 1e-9);
            }
        }
    }

    #[test]
    fn csv_round_trips_any_trace(traces in trace_strategy()) {
        let mut buffer = Vec::new();
        write_csv(&traces, &mut buffer).unwrap();
        let back = read_csv(buffer.as_slice()).unwrap();
        prop_assert_eq!(traces, back);
    }
}
