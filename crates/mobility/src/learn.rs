//! Learning per-taxi mobility models from traces
//! (paper Section IV-B).
//!
//! For each taxi, the transition matrix over the `l` locations she visits
//! is estimated by maximum likelihood with Laplace smoothing. The paper's
//! estimator is
//!
//! ```text
//! P_ij = x_ij / (x_i + l)
//! ```
//!
//! where `x_ij` counts observed `i → j` transitions and `x_i = Σ_k x_ik`.
//! Note that rows sum to `x_i / (x_i + l) < 1`: the remaining mass is the
//! smoothed probability of *unseen* behaviour, which is exactly what makes
//! the learned PoS values conservative (and small — Figure 4). The add-one
//! variant `(x_ij + 1)/(x_i + l)` is also provided.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::grid::LocationId;
use crate::trace::{TaxiId, TraceSet};

/// Which smoothing formula to apply.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Smoothing {
    /// The paper's formula `x_ij / (x_i + l)` — sub-stochastic rows, mass
    /// reserved for unseen transitions.
    #[default]
    Paper,
    /// Classic add-one Laplace `(x_ij + 1) / (x_i + l)` over the visited
    /// location set — rows sum to 1 across visited locations.
    AddOne,
    /// Add-λ (Lidstone) smoothing `(x_ij + λ) / (x_i + λ·l)`, row-stochastic
    /// with a tunable unseen-transition floor. Small `λ` (e.g. 0.1) keeps
    /// multi-step visit estimates far better calibrated for *rare* targets
    /// than add-one, whose per-step floor of `1/(x_i+l)` compounds into
    /// substantial fictional visit mass over a sensing window (see the
    /// `ext_calibration` experiment in `mcs-sim`).
    AddLambda(
        /// The pseudo-count `λ > 0`.
        f64,
    ),
}

/// A learned, per-taxi mobility model: sparse transition probabilities over
/// the locations the taxi was observed at.
///
/// # Examples
///
/// ```
/// use mcs_mobility::grid::LocationId;
/// use mcs_mobility::learn::{MobilityModel, Smoothing};
/// use mcs_mobility::trace::{TaxiId, TraceEvent, TraceSet};
///
/// let traces: TraceSet = (0..10u32)
///     .map(|s| TraceEvent {
///         taxi: TaxiId::new(0),
///         slot: s,
///         // Alternates 0 → 1 → 0 → 1 …
///         location: LocationId::new(s % 2),
///     })
///     .collect();
/// let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper);
/// // 5 observed 0→1 transitions out of x_0 = 5 visits, l = 2:
/// // P(0→1) = 5 / (5 + 2).
/// let p = model.prob(LocationId::new(0), LocationId::new(1));
/// assert!((p - 5.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityModel {
    taxi: TaxiId,
    smoothing: Smoothing,
    /// Visited locations (the model's state space), ascending.
    visited: Vec<LocationId>,
    /// Transition counts `x_ij`, sparse by (from, to).
    counts: BTreeMap<LocationId, BTreeMap<LocationId, u64>>,
    /// Outgoing totals `x_i`.
    totals: BTreeMap<LocationId, u64>,
}

impl MobilityModel {
    /// Learns a model for `taxi` from `traces`.
    ///
    /// The state space is the set of locations appearing in the taxi's
    /// trace; an empty trace yields a model with no states (every
    /// probability is 0).
    pub fn learn(traces: &TraceSet, taxi: TaxiId, smoothing: Smoothing) -> Self {
        let mut visited: Vec<LocationId> = traces.trace(taxi).iter().map(|e| e.location).collect();
        visited.sort();
        visited.dedup();

        let mut counts: BTreeMap<LocationId, BTreeMap<LocationId, u64>> = BTreeMap::new();
        let mut totals: BTreeMap<LocationId, u64> = BTreeMap::new();
        for (from, to) in traces.transitions(taxi) {
            *counts.entry(from).or_default().entry(to).or_default() += 1;
            *totals.entry(from).or_default() += 1;
        }
        MobilityModel {
            taxi,
            smoothing,
            visited,
            counts,
            totals,
        }
    }

    /// The taxi this model describes.
    pub fn taxi(&self) -> TaxiId {
        self.taxi
    }

    /// The visited location set (the model's `l` states).
    pub fn visited(&self) -> &[LocationId] {
        &self.visited
    }

    /// `l`, the number of visited locations.
    pub fn state_count(&self) -> usize {
        self.visited.len()
    }

    /// The smoothed transition probability `P(from → to)`.
    ///
    /// Locations outside the visited set have probability 0 as origin; as
    /// destination they get only the smoothing mass under
    /// [`Smoothing::AddOne`] if visited, else 0.
    pub fn prob(&self, from: LocationId, to: LocationId) -> f64 {
        let l = self.visited.len() as f64;
        if l == 0.0 || self.visited.binary_search(&to).is_err() {
            return 0.0;
        }
        if self.visited.binary_search(&from).is_err() {
            return 0.0;
        }
        let x_i = self.totals.get(&from).copied().unwrap_or(0) as f64;
        let x_ij = self
            .counts
            .get(&from)
            .and_then(|row| row.get(&to))
            .copied()
            .unwrap_or(0) as f64;
        match self.smoothing {
            Smoothing::Paper => x_ij / (x_i + l),
            Smoothing::AddOne => (x_ij + 1.0) / (x_i + l),
            Smoothing::AddLambda(lambda) => (x_ij + lambda) / (x_i + lambda * l),
        }
    }

    /// The `k` most likely next locations from `from`, descending by
    /// probability (ties by ascending location id).
    ///
    /// Only locations with *positive* smoothed probability are returned —
    /// the model never "predicts" somewhere it has no evidence for, so the
    /// result may be shorter than `k` (under [`Smoothing::Paper`], unseen
    /// successors have probability 0).
    pub fn top_k(&self, from: LocationId, k: usize) -> Vec<(LocationId, f64)> {
        let mut entries: Vec<(LocationId, f64)> = self
            .visited
            .iter()
            .map(|&to| (to, self.prob(from, to)))
            .filter(|&(_, p)| p > 0.0)
            .collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probs")
                .then(a.0.cmp(&b.0))
        });
        entries.truncate(k);
        entries
    }
}

/// Learns models for every taxi in `traces`.
pub fn learn_all(traces: &TraceSet, smoothing: Smoothing) -> BTreeMap<TaxiId, MobilityModel> {
    traces
        .taxis()
        .map(|taxi| (taxi, MobilityModel::learn(traces, taxi, smoothing)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn event(taxi: u32, slot: u32, location: u32) -> TraceEvent {
        TraceEvent {
            taxi: TaxiId::new(taxi),
            slot,
            location: LocationId::new(location),
        }
    }

    #[test]
    fn paper_smoothing_matches_formula() {
        // Trace: 0 → 1 → 0 → 2, so from 0 we saw 1 and 2 once each.
        let traces: TraceSet = vec![
            event(0, 0, 0),
            event(0, 1, 1),
            event(0, 2, 0),
            event(0, 3, 2),
        ]
        .into_iter()
        .collect();
        let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper);
        assert_eq!(model.state_count(), 3);
        // x_0 = 2 outgoing, l = 3: P(0→1) = 1/(2+3).
        assert!((model.prob(LocationId::new(0), LocationId::new(1)) - 0.2).abs() < 1e-12);
        assert!((model.prob(LocationId::new(0), LocationId::new(2)) - 0.2).abs() < 1e-12);
        // Unseen transition 0→0 has probability 0 under the paper formula.
        assert_eq!(model.prob(LocationId::new(0), LocationId::new(0)), 0.0);
    }

    #[test]
    fn paper_rows_are_sub_stochastic() {
        let traces: TraceSet = (0..20u32).map(|s| event(0, s, s % 4)).collect();
        let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper);
        for &from in model.visited() {
            let row_sum: f64 = model.visited().iter().map(|&to| model.prob(from, to)).sum();
            assert!(row_sum < 1.0, "row {from} sums to {row_sum} ≥ 1");
        }
    }

    #[test]
    fn add_one_rows_sum_to_one_over_visited() {
        let traces: TraceSet = (0..20u32).map(|s| event(0, s, s % 4)).collect();
        let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::AddOne);
        for &from in model.visited() {
            let row_sum: f64 = model.visited().iter().map(|&to| model.prob(from, to)).sum();
            assert!((row_sum - 1.0).abs() < 1e-9, "row {from} sums to {row_sum}");
        }
    }

    #[test]
    fn unknown_locations_have_zero_probability() {
        let traces: TraceSet = vec![event(0, 0, 0), event(0, 1, 1)].into_iter().collect();
        let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper);
        assert_eq!(model.prob(LocationId::new(9), LocationId::new(0)), 0.0);
        assert_eq!(model.prob(LocationId::new(0), LocationId::new(9)), 0.0);
    }

    #[test]
    fn empty_trace_learns_empty_model() {
        let traces = TraceSet::new();
        let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper);
        assert_eq!(model.state_count(), 0);
        assert_eq!(model.prob(LocationId::new(0), LocationId::new(0)), 0.0);
        assert!(model.top_k(LocationId::new(0), 5).is_empty());
    }

    #[test]
    fn top_k_prefers_frequent_transitions() {
        // From 0: twice to 1, once to 2.
        let traces: TraceSet = vec![
            event(0, 0, 0),
            event(0, 1, 1),
            event(0, 2, 0),
            event(0, 3, 1),
            event(0, 4, 0),
            event(0, 5, 2),
        ]
        .into_iter()
        .collect();
        let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper);
        let top = model.top_k(LocationId::new(0), 2);
        assert_eq!(top[0].0, LocationId::new(1));
        assert_eq!(top[1].0, LocationId::new(2));
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn learn_all_covers_every_taxi() {
        let traces: TraceSet = vec![event(0, 0, 0), event(0, 1, 1), event(1, 0, 2)]
            .into_iter()
            .collect();
        let models = learn_all(&traces, Smoothing::Paper);
        assert_eq!(models.len(), 2);
        assert_eq!(models[&TaxiId::new(1)].state_count(), 1);
    }
}

#[cfg(test)]
mod lambda_tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn traces() -> TraceSet {
        (0..20u32)
            .map(|s| TraceEvent {
                taxi: TaxiId::new(0),
                slot: s,
                location: LocationId::new(s % 4),
            })
            .collect()
    }

    #[test]
    fn add_lambda_rows_are_stochastic() {
        let model = MobilityModel::learn(&traces(), TaxiId::new(0), Smoothing::AddLambda(0.1));
        for &from in model.visited() {
            let row_sum: f64 = model.visited().iter().map(|&to| model.prob(from, to)).sum();
            assert!((row_sum - 1.0).abs() < 1e-9, "row {from} sums to {row_sum}");
        }
    }

    #[test]
    fn smaller_lambda_means_smaller_unseen_floor() {
        let tenth = MobilityModel::learn(&traces(), TaxiId::new(0), Smoothing::AddLambda(0.1));
        let one = MobilityModel::learn(&traces(), TaxiId::new(0), Smoothing::AddOne);
        // Transition 0 → 2 never happens (the cycle is 0→1→2→3→0).
        let unseen_tenth = tenth.prob(LocationId::new(0), LocationId::new(2));
        let unseen_one = one.prob(LocationId::new(0), LocationId::new(2));
        assert!(unseen_tenth > 0.0);
        assert!(
            unseen_tenth < 0.2 * unseen_one,
            "λ=0.1 floor {unseen_tenth} not ≪ add-one floor {unseen_one}"
        );
        // Seen transitions, by contrast, get *larger* with smaller λ.
        let seen_tenth = tenth.prob(LocationId::new(0), LocationId::new(1));
        let seen_one = one.prob(LocationId::new(0), LocationId::new(1));
        assert!(seen_tenth > seen_one);
    }

    #[test]
    fn lambda_one_equals_add_one() {
        let via_lambda = MobilityModel::learn(&traces(), TaxiId::new(0), Smoothing::AddLambda(1.0));
        let add_one = MobilityModel::learn(&traces(), TaxiId::new(0), Smoothing::AddOne);
        for &from in via_lambda.visited() {
            for &to in via_lambda.visited() {
                assert!((via_lambda.prob(from, to) - add_one.prob(from, to)).abs() < 1e-12);
            }
        }
    }
}
