//! Synthetic city generator — the stand-in for the proprietary Shanghai
//! taxi data set.
//!
//! **Substitution note (see `DESIGN.md`).** The paper's evaluation uses a
//! January-2013 trace of 1692 Shanghai taxis that is not publicly
//! available. We replace it with a *ground-truth Markov city*: cells are
//! attractive in proportion to hotspot weights and nearby in proportion to
//! a distance-decay kernel, and each taxi mixes the global kernel with a
//! pull toward its home hotspot. The two qualitative properties the paper's
//! pipeline depends on are preserved:
//!
//! 1. mobility is *predictable but dispersed* — the next location
//!    concentrates on a dozen-odd cells, so top-k prediction accuracy rises
//!    quickly with k (Figure 3), and
//! 2. individual transition probabilities are *small* — learned PoS values
//!    mass in `[0, 0.2]` (Figure 4), forcing redundant recruitment.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::grid::{Cell, CityGrid, LocationId};
use crate::markov::TransitionMatrix;
use crate::trace::{TaxiId, TraceEvent, TraceSet};

/// Parameters of the synthetic city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// The grid discretization (the paper uses 2 km cells).
    pub grid: CityGrid,
    /// How many cells are hotspots (business districts, stations…).
    pub hotspot_count: usize,
    /// Attractiveness multiplier of a hotspot cell versus a plain cell.
    pub hotspot_strength: f64,
    /// Length scale (km) of the distance-decay kernel between consecutive
    /// locations: weight `∝ exp(−d/decay_km)`.
    pub decay_km: f64,
    /// Probability per step that a taxi heads home instead of following
    /// the global kernel.
    pub home_pull: f64,
    /// Length scale (km) of the pull toward the home cell.
    pub home_decay_km: f64,
    /// Each origin keeps only its `targets_per_cell` most likely
    /// destinations (taxis have *routes*, not diffusion): this is what
    /// makes top-k prediction effective, as in the real data set.
    pub targets_per_cell: usize,
    /// Length scale (km) of the central-business-district bias when
    /// placing hotspots: placement weight `∝ exp(−d(centre)/σ)`. Real
    /// cities concentrate activity downtown, which is also what lets a
    /// contiguous sensing campaign be covered by several distinct home
    /// populations.
    pub hotspot_centrality_km: f64,
}

impl Default for CityConfig {
    /// A Shanghai-like default: 20 × 20 grid of 2 km cells, 15 hotspots.
    fn default() -> Self {
        CityConfig {
            grid: CityGrid::shanghai_like(),
            hotspot_count: 15,
            hotspot_strength: 8.0,
            decay_km: 1.5,
            home_pull: 0.4,
            home_decay_km: 2.0,
            targets_per_cell: 12,
            hotspot_centrality_km: 8.0,
        }
    }
}

/// A generated city: hotspot weights, the global ground-truth kernel, and
/// per-hotspot "head home" distributions.
#[derive(Debug, Clone)]
pub struct SyntheticCity {
    config: CityConfig,
    hotspot_weight: Vec<f64>,
    hotspots: Vec<LocationId>,
    global: TransitionMatrix,
    /// Cumulative "toward home" distribution per hotspot (homes are always
    /// hotspot cells).
    home_cumulative: Vec<Vec<f64>>,
    /// Cumulative start distribution (hotspot-weighted).
    start_cumulative: Vec<f64>,
}

impl SyntheticCity {
    /// Generates a city: hotspot cells are drawn uniformly at random, the
    /// global kernel combines hotspot attraction with distance decay.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no hotspots, non-positive
    /// decay lengths, or `home_pull` outside `[0, 1]`).
    pub fn generate<R: Rng + ?Sized>(config: CityConfig, rng: &mut R) -> Self {
        assert!(config.hotspot_count > 0, "need at least one hotspot");
        assert!(
            config.decay_km > 0.0 && config.home_decay_km > 0.0,
            "decay must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.home_pull),
            "home_pull must be a probability"
        );
        assert!(
            config.targets_per_cell > 0,
            "need at least one target per cell"
        );
        let n = config.grid.cell_count();
        assert!(config.hotspot_count <= n, "more hotspots than cells");

        // Hotspot cells without replacement, biased toward the city
        // centre (weight ∝ exp(−d/σ)).
        assert!(
            config.hotspot_centrality_km > 0.0,
            "centrality scale must be positive"
        );
        let centre = Cell {
            x: config.grid.width() / 2,
            y: config.grid.height() / 2,
        };
        let centre = config.grid.location(centre).expect("centre cell in range");
        let mut cells: Vec<u32> = (0..n as u32).collect();
        let mut hotspots = Vec::with_capacity(config.hotspot_count);
        for _ in 0..config.hotspot_count {
            let weights: Vec<f64> = cells
                .iter()
                .map(|&c| {
                    let d = config.grid.distance_km(LocationId::new(c), centre);
                    (-d / config.hotspot_centrality_km).exp()
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut draw = rng.gen::<f64>() * total;
            let mut pick = cells.len() - 1;
            for (idx, &w) in weights.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    pick = idx;
                    break;
                }
            }
            hotspots.push(LocationId::new(cells.swap_remove(pick)));
        }
        let mut hotspot_weight = vec![1.0; n];
        for &h in &hotspots {
            hotspot_weight[h.index()] = config.hotspot_strength;
        }

        // Global kernel: weight(from→to) = hotspot(to) · exp(−d/decay),
        // sparsified to each origin's top destinations.
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|from| {
                let from = LocationId::new(from as u32);
                let row: Vec<f64> = (0..n)
                    .map(|to| {
                        let to = LocationId::new(to as u32);
                        let d = config.grid.distance_km(from, to);
                        hotspot_weight[to.index()] * (-d / config.decay_km).exp()
                    })
                    .collect();
                keep_top(row, config.targets_per_cell)
            })
            .collect();
        let global = TransitionMatrix::from_weights(weights);

        // Toward-home distributions, one per hotspot.
        let home_cumulative = hotspots
            .iter()
            .map(|&home| {
                let mut acc = 0.0;
                let weights: Vec<f64> = (0..n)
                    .map(|to| {
                        let d = config.grid.distance_km(LocationId::new(to as u32), home);
                        (-d / config.home_decay_km).exp()
                    })
                    .collect();
                let weights = keep_top(weights, config.targets_per_cell);
                let total: f64 = weights.iter().sum();
                weights
                    .into_iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            })
            .collect();

        // Start distribution ∝ hotspot weights.
        let total: f64 = hotspot_weight.iter().sum();
        let mut acc = 0.0;
        let start_cumulative = hotspot_weight
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();

        SyntheticCity {
            config,
            hotspot_weight,
            hotspots,
            global,
            home_cumulative,
            start_cumulative,
        }
    }

    /// The configuration the city was generated from.
    pub fn config(&self) -> &CityConfig {
        &self.config
    }

    /// The grid.
    pub fn grid(&self) -> &CityGrid {
        &self.config.grid
    }

    /// The hotspot cells.
    pub fn hotspots(&self) -> &[LocationId] {
        &self.hotspots
    }

    /// Per-cell attractiveness weights.
    pub fn hotspot_weights(&self) -> &[f64] {
        &self.hotspot_weight
    }

    /// The global ground-truth transition kernel.
    pub fn global_kernel(&self) -> &TransitionMatrix {
        &self.global
    }

    /// Simulates `taxi_count` taxis for `slots` time slots and returns the
    /// full trace set. Each taxi gets a home hotspot (round-robin) and
    /// follows the mixture kernel
    /// `home_pull · toward-home + (1 − home_pull) · global`.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        taxi_count: usize,
        slots: u32,
        rng: &mut R,
    ) -> TraceSet {
        let mut traces = TraceSet::new();
        for taxi in 0..taxi_count {
            let taxi_id = TaxiId::new(taxi as u32);
            let mut location = sample_cumulative(&self.start_cumulative, rng);
            for slot in 0..slots {
                traces.push(TraceEvent {
                    taxi: taxi_id,
                    slot,
                    location,
                });
                location = self.step(taxi_id, location, rng);
            }
        }
        traces
    }

    /// The home hotspot a taxi is assigned (the same deterministic
    /// round-robin rule [`SyntheticCity::simulate`] uses).
    pub fn home_of(&self, taxi: TaxiId) -> LocationId {
        self.hotspots[taxi.index() % self.hotspots.len()]
    }

    /// One step of a taxi's *true* mixture kernel:
    /// `home_pull · toward-home + (1 − home_pull) · global`.
    ///
    /// Exposed so ground-truth rollouts can continue a taxi's trajectory —
    /// e.g. to check, against the real process, whether a recruited taxi
    /// actually passes through a task cell within the sensing window.
    pub fn step<R: Rng + ?Sized>(&self, taxi: TaxiId, from: LocationId, rng: &mut R) -> LocationId {
        let home_idx = taxi.index() % self.hotspots.len();
        if rng.gen_bool(self.config.home_pull) {
            sample_cumulative(&self.home_cumulative[home_idx], rng)
        } else {
            self.global.sample_next(from, rng)
        }
    }

    /// Rolls a taxi's trajectory forward `steps` slots from `start` under
    /// the true kernel and returns the visited locations (excluding the
    /// start itself).
    pub fn walk<R: Rng + ?Sized>(
        &self,
        taxi: TaxiId,
        start: LocationId,
        steps: u32,
        rng: &mut R,
    ) -> Vec<LocationId> {
        let mut location = start;
        let mut visited = Vec::with_capacity(steps as usize);
        for _ in 0..steps {
            location = self.step(taxi, location, rng);
            visited.push(location);
        }
        visited
    }
}

/// Zeroes all but the `keep` largest entries of `row` (ties resolved
/// toward lower indices, matching the deterministic sort).
fn keep_top(row: Vec<f64>, keep: usize) -> Vec<f64> {
    if keep >= row.len() {
        return row;
    }
    let mut order: Vec<usize> = (0..row.len()).collect();
    order.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    let mut sparse = vec![0.0; row.len()];
    for &idx in order.iter().take(keep) {
        sparse[idx] = row[idx];
    }
    sparse
}

fn sample_cumulative<R: Rng + ?Sized>(cumulative: &[f64], rng: &mut R) -> LocationId {
    let u: f64 = rng.gen();
    let idx = cumulative.partition_point(|&c| c < u);
    LocationId::new(idx.min(cumulative.len() - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_city(seed: u64) -> SyntheticCity {
        let config = CityConfig {
            grid: CityGrid::new(8, 8, 2.0),
            hotspot_count: 5,
            ..CityConfig::default()
        };
        SyntheticCity::generate(config, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn hotspots_are_distinct_and_weighted() {
        let city = small_city(1);
        assert_eq!(city.hotspots().len(), 5);
        let mut unique = city.hotspots().to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 5);
        for &h in city.hotspots() {
            assert_eq!(city.hotspot_weights()[h.index()], 8.0);
        }
    }

    #[test]
    fn kernel_prefers_near_and_hot_cells() {
        let city = small_city(2);
        let grid = city.grid();
        let from = LocationId::new(0);
        // Among the kept (non-pruned) targets, a hotspot beats any plain
        // cell at equal or greater distance. (Sparsification may prune a
        // far-away hotspot entirely, in which case there is nothing to
        // compare.)
        let hot = city.hotspots()[0];
        if city.global_kernel().prob(from, hot) == 0.0 {
            return;
        }
        for to in grid.locations() {
            if city.hotspot_weights()[to.index()] == 1.0
                && grid.distance_km(from, to) >= grid.distance_km(from, hot)
            {
                assert!(city.global_kernel().prob(from, hot) > city.global_kernel().prob(from, to));
            }
        }
    }

    #[test]
    fn kernel_rows_keep_at_most_targets_per_cell() {
        let city = small_city(7);
        let keep = city.config().targets_per_cell;
        for from in city.grid().locations() {
            let positive = city
                .grid()
                .locations()
                .filter(|&to| city.global_kernel().prob(from, to) > 0.0)
                .count();
            assert!(
                positive <= keep,
                "row {from} keeps {positive} > {keep} targets"
            );
            assert!(positive > 0, "row {from} is empty");
        }
    }

    #[test]
    fn simulation_covers_all_taxis_and_slots() {
        let city = small_city(3);
        let mut rng = StdRng::seed_from_u64(10);
        let traces = city.simulate(12, 30, &mut rng);
        assert_eq!(traces.taxi_count(), 12);
        assert_eq!(traces.event_count(), 12 * 30);
        for taxi in traces.taxis() {
            assert_eq!(traces.transitions(taxi).count(), 29);
        }
    }

    #[test]
    fn simulation_is_seed_deterministic() {
        let city = small_city(4);
        let a = city.simulate(5, 20, &mut StdRng::seed_from_u64(7));
        let b = city.simulate(5, 20, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn visits_concentrate_on_hotspots() {
        let city = small_city(5);
        let mut rng = StdRng::seed_from_u64(11);
        let traces = city.simulate(30, 200, &mut rng);
        let n = city.grid().cell_count();
        let mut visits = vec![0usize; n];
        for taxi in traces.taxis() {
            for event in traces.trace(taxi) {
                visits[event.location.index()] += 1;
            }
        }
        let hotspot_visits: usize = city.hotspots().iter().map(|h| visits[h.index()]).sum();
        let total: usize = visits.iter().sum();
        let hotspot_share = hotspot_visits as f64 / total as f64;
        let uniform_share = city.hotspots().len() as f64 / n as f64;
        assert!(
            hotspot_share > 2.0 * uniform_share,
            "hotspots undervisited: {hotspot_share} vs uniform {uniform_share}"
        );
    }

    #[test]
    #[should_panic(expected = "hotspot")]
    fn zero_hotspots_panics() {
        let config = CityConfig {
            hotspot_count: 0,
            ..CityConfig::default()
        };
        let _ = SyntheticCity::generate(config, &mut StdRng::seed_from_u64(0));
    }
}

#[cfg(test)]
mod walk_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walk_matches_simulate_semantics() {
        let config = CityConfig {
            grid: crate::grid::CityGrid::new(8, 8, 2.0),
            hotspot_count: 5,
            ..CityConfig::default()
        };
        let city = SyntheticCity::generate(config, &mut StdRng::seed_from_u64(1));
        let taxi = TaxiId::new(3);
        let start = city.hotspots()[0];
        let visited = city.walk(taxi, start, 10, &mut StdRng::seed_from_u64(2));
        assert_eq!(visited.len(), 10);
        for &cell in &visited {
            assert!(cell.index() < city.grid().cell_count());
        }
        // Deterministic under a fixed seed.
        let again = city.walk(taxi, start, 10, &mut StdRng::seed_from_u64(2));
        assert_eq!(visited, again);
    }

    #[test]
    fn home_assignment_is_round_robin() {
        let config = CityConfig {
            grid: crate::grid::CityGrid::new(8, 8, 2.0),
            hotspot_count: 5,
            ..CityConfig::default()
        };
        let city = SyntheticCity::generate(config, &mut StdRng::seed_from_u64(1));
        assert_eq!(city.home_of(TaxiId::new(0)), city.hotspots()[0]);
        assert_eq!(city.home_of(TaxiId::new(5)), city.hotspots()[0]);
        assert_eq!(city.home_of(TaxiId::new(7)), city.hotspots()[2]);
    }

    #[test]
    fn walks_gravitate_toward_home() {
        // With a strong home pull, a long walk should visit the home cell's
        // vicinity often.
        let config = CityConfig {
            grid: crate::grid::CityGrid::new(8, 8, 2.0),
            hotspot_count: 4,
            home_pull: 0.8,
            ..CityConfig::default()
        };
        let city = SyntheticCity::generate(config, &mut StdRng::seed_from_u64(3));
        let taxi = TaxiId::new(1);
        let home = city.home_of(taxi);
        let visited = city.walk(taxi, city.hotspots()[0], 400, &mut StdRng::seed_from_u64(4));
        let near_home = visited
            .iter()
            .filter(|&&cell| city.grid().distance_km(cell, home) <= 4.0)
            .count();
        assert!(
            near_home as f64 / visited.len() as f64 > 0.3,
            "only {near_home}/400 steps near home"
        );
    }
}
