//! The city grid: a rectangular tessellation of the map into square cells.
//!
//! The paper divides the map of Shanghai into 2 km × 2 km grids, "with each
//! grid representing a location". [`CityGrid`] reproduces that discretization
//! for the synthetic city: locations are cells, addressed either by `(x, y)`
//! coordinates ([`Cell`]) or by a dense [`LocationId`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense location identifier: the row-major index of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(u32);

impl LocationId {
    /// Creates a location id from a raw index.
    pub const fn new(index: u32) -> Self {
        LocationId(index)
    }

    /// The raw index, usable for dense per-location arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// A grid cell addressed by column `x` and row `y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Column index, `0 ≤ x < width`.
    pub x: u32,
    /// Row index, `0 ≤ y < height`.
    pub y: u32,
}

/// A rectangular block of grid cells: columns `[x, x + width)` crossed
/// with rows `[y, y + height)`.
///
/// Regions are the spatial key for correlated processes over the grid —
/// a weather front, a network outage, a flash crowd — anything that
/// affects every user *in an area* at once rather than independently.
/// The scenario harness samples regional PoS shocks keyed on regions of
/// the campaign's [`CityGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Leftmost column covered.
    pub x: u32,
    /// Topmost row covered.
    pub y: u32,
    /// Covered width in cells.
    pub width: u32,
    /// Covered height in cells.
    pub height: u32,
}

impl Region {
    /// Whether `cell` lies inside this region.
    pub fn contains(&self, cell: Cell) -> bool {
        cell.x >= self.x
            && cell.x < self.x.saturating_add(self.width)
            && cell.y >= self.y
            && cell.y < self.y.saturating_add(self.height)
    }

    /// Number of cells covered (before any grid clamping).
    pub fn cell_count(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{})x[{}..{})",
            self.x,
            self.x.saturating_add(self.width),
            self.y,
            self.y.saturating_add(self.height)
        )
    }
}

/// A rectangular city grid of square cells.
///
/// # Examples
///
/// ```
/// use mcs_mobility::grid::{Cell, CityGrid};
///
/// let grid = CityGrid::new(20, 20, 2.0);
/// assert_eq!(grid.cell_count(), 400);
/// let id = grid.location(Cell { x: 3, y: 5 }).unwrap();
/// assert_eq!(grid.cell(id), Cell { x: 3, y: 5 });
/// // Euclidean distance in km between cell centres.
/// let a = grid.location(Cell { x: 0, y: 0 }).unwrap();
/// let b = grid.location(Cell { x: 3, y: 4 }).unwrap();
/// assert_eq!(grid.distance_km(a, b), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CityGrid {
    width: u32,
    height: u32,
    cell_km: f64,
}

impl CityGrid {
    /// Creates a `width × height` grid of `cell_km`-sized square cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `cell_km` is not positive.
    pub fn new(width: u32, height: u32, cell_km: f64) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(cell_km > 0.0, "cell size must be positive");
        CityGrid {
            width,
            height,
            cell_km,
        }
    }

    /// The paper's discretization of Shanghai: 2 km cells over a
    /// 20 × 20 window (a ~40 km × 40 km metro area).
    pub fn shanghai_like() -> Self {
        CityGrid::new(20, 20, 2.0)
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The edge length of one cell in km.
    pub fn cell_km(&self) -> f64 {
        self.cell_km
    }

    /// Total number of cells (locations).
    pub fn cell_count(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// The location id of `cell`, or `None` if out of bounds.
    pub fn location(&self, cell: Cell) -> Option<LocationId> {
        (cell.x < self.width && cell.y < self.height)
            .then(|| LocationId::new(cell.y * self.width + cell.x))
    }

    /// The cell of a location id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this grid.
    pub fn cell(&self, id: LocationId) -> Cell {
        assert!(id.index() < self.cell_count(), "location out of range");
        Cell {
            x: id.0 % self.width,
            y: id.0 / self.width,
        }
    }

    /// Euclidean distance between cell centres, in km.
    pub fn distance_km(&self, a: LocationId, b: LocationId) -> f64 {
        let ca = self.cell(a);
        let cb = self.cell(b);
        let dx = f64::from(ca.x) - f64::from(cb.x);
        let dy = f64::from(ca.y) - f64::from(cb.y);
        (dx * dx + dy * dy).sqrt() * self.cell_km
    }

    /// Iterates over all location ids in row-major order.
    pub fn locations(&self) -> impl Iterator<Item = LocationId> {
        (0..self.cell_count() as u32).map(LocationId::new)
    }

    /// Clips `region` to this grid's bounds. An off-grid region clamps
    /// to a zero-area region at the nearest corner.
    pub fn clamp_region(&self, region: Region) -> Region {
        let x = region.x.min(self.width);
        let y = region.y.min(self.height);
        Region {
            x,
            y,
            width: region.width.min(self.width - x),
            height: region.height.min(self.height - y),
        }
    }

    /// Partitions the grid into `bands` vertical column bands of
    /// near-equal width, each spanning the full grid height.
    ///
    /// Band `i` covers columns `[i·W/n, (i+1)·W/n)`, so the bands are
    /// pairwise disjoint, cover every cell, and are a pure function of
    /// `(width, height, bands)` — the deterministic region key the
    /// cluster layer shards the auction by.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero or exceeds the grid width (a band must
    /// hold at least one column).
    pub fn partition_bands(&self, bands: usize) -> Vec<Region> {
        assert!(bands > 0, "a partition needs at least one band");
        assert!(
            bands <= self.width as usize,
            "cannot cut {} columns into {bands} bands",
            self.width
        );
        let width = self.width as usize;
        (0..bands)
            .map(|i| {
                let x = (i * width / bands) as u32;
                let next = ((i + 1) * width / bands) as u32;
                Region {
                    x,
                    y: 0,
                    width: next - x,
                    height: self.height,
                }
            })
            .collect()
    }

    /// Whether `regions` tile this grid exactly: every cell lies in
    /// exactly one region.
    pub fn is_partition(&self, regions: &[Region]) -> bool {
        let mut covered = vec![false; self.cell_count()];
        for region in regions {
            for id in self.region_locations(*region) {
                if covered[id.index()] {
                    return false;
                }
                covered[id.index()] = true;
            }
        }
        covered.iter().all(|&c| c)
    }

    /// The index of the first region in `regions` containing `cell`, or
    /// `None` when no region does (or the cell is off-grid).
    pub fn region_of_cell(&self, regions: &[Region], cell: Cell) -> Option<usize> {
        self.location(cell)?;
        regions.iter().position(|region| region.contains(cell))
    }

    /// The location ids inside `region` (clipped to the grid), in
    /// row-major order.
    pub fn region_locations(&self, region: Region) -> Vec<LocationId> {
        let clipped = self.clamp_region(region);
        let mut ids = Vec::with_capacity(clipped.cell_count());
        for y in clipped.y..clipped.y + clipped.height {
            for x in clipped.x..clipped.x + clipped.width {
                ids.extend(self.location(Cell { x, y }));
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_cells_and_ids() {
        let grid = CityGrid::new(7, 5, 1.5);
        for id in grid.locations() {
            let cell = grid.cell(id);
            assert_eq!(grid.location(cell), Some(id));
        }
        assert_eq!(grid.locations().count(), 35);
    }

    #[test]
    fn out_of_bounds_cells_have_no_id() {
        let grid = CityGrid::new(4, 4, 2.0);
        assert_eq!(grid.location(Cell { x: 4, y: 0 }), None);
        assert_eq!(grid.location(Cell { x: 0, y: 4 }), None);
        assert!(grid.location(Cell { x: 3, y: 3 }).is_some());
    }

    #[test]
    fn distances_scale_with_cell_size() {
        let grid = CityGrid::new(10, 10, 2.0);
        let a = grid.location(Cell { x: 1, y: 1 }).unwrap();
        let b = grid.location(Cell { x: 1, y: 3 }).unwrap();
        assert_eq!(grid.distance_km(a, b), 4.0);
        assert_eq!(grid.distance_km(a, a), 0.0);
        assert_eq!(grid.distance_km(a, b), grid.distance_km(b, a));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_location_panics() {
        let grid = CityGrid::new(2, 2, 2.0);
        let _ = grid.cell(LocationId::new(4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = CityGrid::new(0, 3, 2.0);
    }

    #[test]
    fn regions_contain_exactly_their_rectangle() {
        let region = Region {
            x: 2,
            y: 3,
            width: 4,
            height: 2,
        };
        assert!(region.contains(Cell { x: 2, y: 3 }));
        assert!(region.contains(Cell { x: 5, y: 4 }));
        assert!(!region.contains(Cell { x: 6, y: 3 }));
        assert!(!region.contains(Cell { x: 2, y: 5 }));
        assert!(!region.contains(Cell { x: 1, y: 3 }));
        assert_eq!(region.cell_count(), 8);
        assert_eq!(region.to_string(), "[2..6)x[3..5)");
    }

    #[test]
    fn region_locations_clip_to_the_grid() {
        let grid = CityGrid::new(5, 5, 1.0);
        let inside = Region {
            x: 1,
            y: 1,
            width: 2,
            height: 2,
        };
        let ids = grid.region_locations(inside);
        assert_eq!(ids.len(), 4);
        for id in &ids {
            assert!(inside.contains(grid.cell(*id)));
        }
        // Overhanging regions clamp instead of panicking.
        let overhang = Region {
            x: 4,
            y: 4,
            width: 3,
            height: 3,
        };
        assert_eq!(grid.region_locations(overhang).len(), 1);
        let off = Region {
            x: 9,
            y: 9,
            width: 2,
            height: 2,
        };
        assert!(grid.region_locations(off).is_empty());
        assert_eq!(grid.clamp_region(off).cell_count(), 0);
    }

    #[test]
    fn band_partitions_tile_the_grid_exactly() {
        for (w, h, n) in [
            (20u32, 20u32, 1usize),
            (20, 20, 3),
            (20, 20, 8),
            (7, 3, 7),
            (5, 9, 2),
        ] {
            let grid = CityGrid::new(w, h, 1.0);
            let bands = grid.partition_bands(n);
            assert_eq!(bands.len(), n);
            assert!(grid.is_partition(&bands), "{w}x{h} into {n} bands");
            // Every band spans the full height and at least one column.
            for band in &bands {
                assert_eq!(band.height, h);
                assert!(band.width >= 1);
            }
            // Deterministic: the same cut twice is identical.
            assert_eq!(bands, grid.partition_bands(n));
        }
    }

    #[test]
    fn region_of_cell_resolves_band_membership() {
        let grid = CityGrid::new(8, 4, 1.0);
        let bands = grid.partition_bands(4);
        for id in grid.locations() {
            let cell = grid.cell(id);
            let band = grid.region_of_cell(&bands, cell).expect("partition covers");
            assert!(bands[band].contains(cell));
        }
        assert_eq!(grid.region_of_cell(&bands, Cell { x: 8, y: 0 }), None);
    }

    #[test]
    fn overlapping_or_gappy_regions_are_not_partitions() {
        let grid = CityGrid::new(4, 4, 1.0);
        let overlap = [
            Region {
                x: 0,
                y: 0,
                width: 3,
                height: 4,
            },
            Region {
                x: 2,
                y: 0,
                width: 2,
                height: 4,
            },
        ];
        assert!(!grid.is_partition(&overlap));
        let gap = [Region {
            x: 0,
            y: 0,
            width: 3,
            height: 4,
        }];
        assert!(!grid.is_partition(&gap));
    }

    #[test]
    #[should_panic(expected = "bands")]
    fn too_many_bands_panic() {
        let _ = CityGrid::new(3, 3, 1.0).partition_bands(4);
    }

    #[test]
    fn regions_round_trip_through_json() {
        let region = Region {
            x: 1,
            y: 2,
            width: 3,
            height: 4,
        };
        let json = serde_json::to_string(&region).unwrap();
        let back: Region = serde_json::from_str(&json).unwrap();
        assert_eq!(region, back);
    }

    #[test]
    fn shanghai_like_matches_paper() {
        let grid = CityGrid::shanghai_like();
        assert_eq!(grid.cell_km(), 2.0);
        assert_eq!(grid.cell_count(), 400);
    }
}
