//! # mcs-mobility — the mobility substrate for the crowdsensing evaluation
//!
//! The paper's evaluation (Section IV) derives users' task sets and PoS
//! values from a Markov mobility model learned over a Shanghai taxi trace.
//! This crate reproduces that pipeline end to end on a *synthetic* city
//! (the real data set is proprietary; see `DESIGN.md` for the substitution
//! argument):
//!
//! 1. [`grid`] — the 2 km × 2 km city grid of locations.
//! 2. [`synth`] — a ground-truth Markov city (hotspots + distance decay +
//!    per-taxi home pull) and a trace simulator.
//! 3. [`trace`] — taxi trace containers (the data-set schema).
//! 4. [`learn`] — per-taxi maximum-likelihood transition estimation with
//!    the paper's Laplace smoothing `P_ij = x_ij / (x_i + l)`.
//! 5. [`predict`] — top-k next-location prediction, accuracy evaluation
//!    (Figure 3), predicted-PoS extraction (Figure 4), and sensing-window
//!    visit probabilities (the auction PoS pipeline).
//! 6. [`serve`] — the serving-path oracle: cached per-(taxi, origin)
//!    visit profiles for per-query lookups inside auction rounds.
//! 7. [`eval`] — held-out log-likelihood and smoothing comparison.
//! 8. [`trace_io`] — CSV import/export so a *real* trace can replace the
//!    synthetic city.
//!
//! ## Example: the full Figure-3 pipeline in miniature
//!
//! ```
//! use mcs_mobility::learn::{learn_all, Smoothing};
//! use mcs_mobility::predict::top_k_accuracy;
//! use mcs_mobility::synth::{CityConfig, SyntheticCity};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let city = SyntheticCity::generate(CityConfig::default(), &mut rng);
//! let traces = city.simulate(40, 120, &mut rng);
//! let (train, test) = traces.split_at_slot(100);
//! let models = learn_all(&train, Smoothing::Paper);
//! let accuracy = top_k_accuracy(&models, &test, 9).unwrap();
//! assert!(accuracy > 0.3); // far above the ~2.5% random-guess baseline
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod grid;
pub mod learn;
pub mod markov;
pub mod predict;
pub mod serve;
pub mod synth;
pub mod trace;
pub mod trace_io;
