//! Trace import/export in a CSV schema mirroring the paper's data set.
//!
//! The original evaluation reads records of *(taxi id, time stamp,
//! location)* from the Shanghai taxi data set. This module defines the
//! equivalent on-disk schema so the library can be pointed at a *real*
//! trace instead of the synthetic city:
//!
//! ```csv
//! taxi,slot,location
//! 0,0,133
//! 0,1,134
//! 1,0,27
//! ```
//!
//! `taxi` and `location` are non-negative integers (grid-cell ids after
//! the user's own map-matching/discretization step); `slot` is the
//! discrete time slot. A header line is required; blank lines are
//! ignored. No external CSV crate is needed for three integer columns.

use std::io::{BufRead, BufReader, Read, Write};
use std::num::ParseIntError;

use crate::grid::LocationId;
use crate::trace::{TaxiId, TraceEvent, TraceSet};

/// Errors from parsing a trace CSV.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line was missing or not `taxi,slot,location`.
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// A data line did not have exactly three columns.
    BadColumnCount {
        /// 1-based line number.
        line: usize,
        /// Number of columns found.
        found: usize,
    },
    /// A field failed to parse as an integer.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
        /// Parse failure.
        source: ParseIntError,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadHeader { found } => {
                write!(f, "expected header 'taxi,slot,location', found '{found}'")
            }
            TraceIoError::BadColumnCount { line, found } => {
                write!(f, "line {line}: expected 3 columns, found {found}")
            }
            TraceIoError::BadField {
                line,
                column,
                source,
            } => {
                write!(f, "line {line}: invalid {column}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::BadField { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// The required header line.
pub const HEADER: &str = "taxi,slot,location";

/// Reads a trace set from CSV.
///
/// # Errors
///
/// See [`TraceIoError`].
///
/// # Examples
///
/// ```
/// use mcs_mobility::trace_io::read_csv;
///
/// let csv = "taxi,slot,location\n0,0,5\n0,1,6\n";
/// let traces = read_csv(csv.as_bytes())?;
/// assert_eq!(traces.taxi_count(), 1);
/// assert_eq!(traces.event_count(), 2);
/// # Ok::<(), mcs_mobility::trace_io::TraceIoError>(())
/// ```
pub fn read_csv<R: Read>(reader: R) -> Result<TraceSet, TraceIoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != HEADER {
        return Err(TraceIoError::BadHeader { found: header });
    }
    let mut traces = TraceSet::new();
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let line_no = idx + 2; // 1-based, after the header
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 3 {
            return Err(TraceIoError::BadColumnCount {
                line: line_no,
                found: fields.len(),
            });
        }
        let parse = |value: &str, column: &'static str| {
            value
                .trim()
                .parse::<u32>()
                .map_err(|source| TraceIoError::BadField {
                    line: line_no,
                    column,
                    source,
                })
        };
        traces.push(TraceEvent {
            taxi: TaxiId::new(parse(fields[0], "taxi")?),
            slot: parse(fields[1], "slot")?,
            location: LocationId::new(parse(fields[2], "location")?),
        });
    }
    Ok(traces)
}

/// Writes a trace set as CSV (taxis ascending, slots ascending per taxi).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv<W: Write>(traces: &TraceSet, mut writer: W) -> Result<(), TraceIoError> {
    writeln!(writer, "{HEADER}")?;
    for taxi in traces.taxis() {
        for event in traces.trace(taxi) {
            writeln!(
                writer,
                "{},{},{}",
                event.taxi.index(),
                event.slot,
                event.location.index()
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSet {
        vec![
            TraceEvent {
                taxi: TaxiId::new(1),
                slot: 0,
                location: LocationId::new(9),
            },
            TraceEvent {
                taxi: TaxiId::new(0),
                slot: 1,
                location: LocationId::new(4),
            },
            TraceEvent {
                taxi: TaxiId::new(0),
                slot: 0,
                location: LocationId::new(3),
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trips_through_csv() {
        let traces = sample();
        let mut buffer = Vec::new();
        write_csv(&traces, &mut buffer).unwrap();
        let back = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(traces, back);
    }

    #[test]
    fn output_is_sorted_and_headed() {
        let mut buffer = Vec::new();
        write_csv(&sample(), &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], HEADER);
        assert_eq!(lines[1], "0,0,3");
        assert_eq!(lines[2], "0,1,4");
        assert_eq!(lines[3], "1,0,9");
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_csv("0,0,5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }));
        let err = read_csv("".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }));
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let err = read_csv("taxi,slot,location\n0,0\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::BadColumnCount { line: 2, found: 2 }
        ));
        let err = read_csv("taxi,slot,location\n0,x,5\n".as_bytes()).unwrap_err();
        match err {
            TraceIoError::BadField { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, "slot");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn skips_blank_lines_and_tolerates_spaces() {
        let csv = "taxi,slot,location\n\n 0 , 0 , 5 \n\n";
        let traces = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(traces.event_count(), 1);
    }

    #[test]
    fn errors_display_helpfully() {
        let err = read_csv("nope\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("taxi,slot,location"));
    }
}
