//! Next-location prediction and its evaluation (paper Figures 3 and 4).
//!
//! Figure 3 measures, for `k = 3…15`, the fraction of held-out transitions
//! whose true destination is among the model's top-`k` predictions.
//! Figure 4 plots the distribution of the *predicted PoS values* — the
//! learned transition probabilities attached to the predicted locations —
//! whose mass sits in `[0, 0.2]` because taxi movement is dispersed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::learn::MobilityModel;
use crate::trace::{TaxiId, TraceSet};

/// Top-`k` prediction accuracy over a held-out trace set.
///
/// For every evaluation transition `(from → to)` of every taxi, the
/// prediction is correct if `to` is among the model's `k` most likely
/// successors of `from`. Transitions from never-trained origins count as
/// misses (the model genuinely cannot predict them).
///
/// Returns `None` when the evaluation set has no transitions at all.
pub fn top_k_accuracy(
    models: &BTreeMap<TaxiId, MobilityModel>,
    evaluation: &TraceSet,
    k: usize,
) -> Option<f64> {
    let mut hits = 0usize;
    let mut total = 0usize;
    for taxi in evaluation.taxis() {
        let Some(model) = models.get(&taxi) else {
            continue;
        };
        for (from, to) in evaluation.transitions(taxi) {
            total += 1;
            if model.top_k(from, k).iter().any(|&(loc, _)| loc == to) {
                hits += 1;
            }
        }
    }
    (total > 0).then(|| hits as f64 / total as f64)
}

/// The accuracy curve for a range of `k` values — the series Figure 3
/// plots.
pub fn accuracy_curve(
    models: &BTreeMap<TaxiId, MobilityModel>,
    evaluation: &TraceSet,
    ks: impl IntoIterator<Item = usize>,
) -> Vec<(usize, f64)> {
    ks.into_iter()
        .filter_map(|k| top_k_accuracy(models, evaluation, k).map(|a| (k, a)))
        .collect()
}

/// One taxi's predicted task opportunities from a snapshot location: the
/// top-`k` next locations and their predicted PoS values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictedTasks {
    /// The taxi.
    pub taxi: TaxiId,
    /// `(location, predicted PoS)` pairs, descending by PoS.
    pub predictions: Vec<(crate::grid::LocationId, f64)>,
}

/// Predicts each taxi's next-location distribution from its last observed
/// position in `snapshot`, keeping the top `k` locations. Taxis without a
/// trained model or an empty snapshot trace are skipped.
pub fn predict_all(
    models: &BTreeMap<TaxiId, MobilityModel>,
    snapshot: &TraceSet,
    k: usize,
) -> Vec<PredictedTasks> {
    snapshot
        .taxis()
        .filter_map(|taxi| {
            let model = models.get(&taxi)?;
            let last = snapshot.trace(taxi).last()?;
            let predictions = model.top_k(last.location, k);
            (!predictions.is_empty()).then_some(PredictedTasks { taxi, predictions })
        })
        .collect()
}

/// All predicted PoS values across taxis — the sample Figure 4 histograms.
pub fn predicted_pos_values(predictions: &[PredictedTasks]) -> Vec<f64> {
    predictions
        .iter()
        .flat_map(|p| p.predictions.iter().map(|&(_, pos)| pos))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LocationId;
    use crate::learn::{learn_all, Smoothing};
    use crate::trace::TraceEvent;

    fn event(taxi: u32, slot: u32, location: u32) -> TraceEvent {
        TraceEvent {
            taxi: TaxiId::new(taxi),
            slot,
            location: LocationId::new(location),
        }
    }

    /// A taxi that alternates 0 ↔ 1 is perfectly predictable with k = 1.
    #[test]
    fn alternating_taxi_is_perfectly_predictable() {
        let train: TraceSet = (0..20u32).map(|s| event(0, s, s % 2)).collect();
        let test: TraceSet = (20..26u32).map(|s| event(0, s, s % 2)).collect();
        let models = learn_all(&train, Smoothing::Paper);
        assert_eq!(top_k_accuracy(&models, &test, 1), Some(1.0));
    }

    #[test]
    fn accuracy_increases_with_k() {
        // A taxi visiting 0 → (1|2|3) round-robin is only partially
        // predictable at k = 1 but fully at k = 3.
        let mut events = Vec::new();
        for cycle in 0..12u32 {
            events.push(event(0, 2 * cycle, 0));
            events.push(event(0, 2 * cycle + 1, 1 + (cycle % 3)));
        }
        let train: TraceSet = events.into_iter().collect();
        let test: TraceSet = vec![
            event(0, 100, 0),
            event(0, 101, 2),
            event(0, 102, 0),
            event(0, 103, 3),
        ]
        .into_iter()
        .collect();
        let models = learn_all(&train, Smoothing::Paper);
        let curve = accuracy_curve(&models, &test, [1, 3]);
        assert_eq!(curve.len(), 2);
        assert!(curve[1].1 >= curve[0].1);
        assert_eq!(curve[1].1, 1.0);
    }

    #[test]
    fn unknown_origins_count_as_misses() {
        let train: TraceSet = vec![event(0, 0, 0), event(0, 1, 1)].into_iter().collect();
        // Evaluation transition starts at never-seen location 7.
        let test: TraceSet = vec![event(0, 10, 7), event(0, 11, 0)].into_iter().collect();
        let models = learn_all(&train, Smoothing::Paper);
        assert_eq!(top_k_accuracy(&models, &test, 5), Some(0.0));
    }

    #[test]
    fn empty_evaluation_yields_none() {
        let train: TraceSet = vec![event(0, 0, 0), event(0, 1, 1)].into_iter().collect();
        let models = learn_all(&train, Smoothing::Paper);
        assert_eq!(top_k_accuracy(&models, &TraceSet::new(), 3), None);
    }

    #[test]
    fn predict_all_uses_last_snapshot_position() {
        let train: TraceSet = (0..20u32).map(|s| event(0, s, s % 2)).collect();
        let models = learn_all(&train, Smoothing::Paper);
        // Snapshot ends at location 1, so predictions are successors of 1.
        let snapshot: TraceSet = vec![event(0, 30, 0), event(0, 31, 1)].into_iter().collect();
        let predicted = predict_all(&models, &snapshot, 2);
        assert_eq!(predicted.len(), 1);
        assert_eq!(predicted[0].predictions[0].0, LocationId::new(0));
        let values = predicted_pos_values(&predicted);
        assert!(!values.is_empty());
        assert!(values.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn taxis_without_models_are_skipped() {
        let models = BTreeMap::new();
        let snapshot: TraceSet = vec![event(5, 0, 0)].into_iter().collect();
        assert!(predict_all(&models, &snapshot, 3).is_empty());
    }
}

/// The probability that a taxi starting at `origin` visits `target` within
/// `horizon` steps, under the learned (sub-stochastic) model.
///
/// Computed by the absorbing-chain recursion
/// `f_h(s) = P(s→target) + Σ_{s'≠target} P(s→s')·f_{h-1}(s')`,
/// with `f_0 ≡ 0`. The model's smoothing mass on unseen transitions is
/// treated as "lost" (the taxi wanders off the learned support), so the
/// estimate is conservative — exactly the right bias for a platform that
/// must *guarantee* task completion probabilities.
///
/// `horizon = 1` is the plain next-slot transition probability. The
/// opportunistic-sensing interpretation of the paper ("her probability to
/// pass through the location of the task") corresponds to the length of
/// the sensing window in slots.
pub fn visit_probability(
    model: &MobilityModel,
    origin: crate::grid::LocationId,
    target: crate::grid::LocationId,
    horizon: u32,
) -> f64 {
    let states = model.visited();
    if states.is_empty() {
        return 0.0;
    }
    let Ok(origin_idx) = states.binary_search(&origin) else {
        return 0.0;
    };
    if states.binary_search(&target).is_err() {
        return 0.0;
    }
    // f[s] = probability of hitting `target` within the remaining steps.
    let mut f = vec![0.0f64; states.len()];
    for _ in 0..horizon {
        let prev = f.clone();
        for (s_idx, &s) in states.iter().enumerate() {
            let mut value = model.prob(s, target);
            for (s2_idx, &s2) in states.iter().enumerate() {
                if s2 != target {
                    value += model.prob(s, s2) * prev[s2_idx];
                }
            }
            f[s_idx] = value.min(1.0);
        }
    }
    f[origin_idx]
}

/// The `k` locations with the highest [`visit_probability`] from `origin`,
/// descending (ties by ascending location id), zero-probability targets
/// excluded.
pub fn top_k_visits(
    model: &MobilityModel,
    origin: crate::grid::LocationId,
    horizon: u32,
    k: usize,
) -> Vec<(crate::grid::LocationId, f64)> {
    let mut entries: Vec<(crate::grid::LocationId, f64)> = model
        .visited()
        .iter()
        .map(|&target| (target, visit_probability(model, origin, target, horizon)))
        .filter(|&(_, p)| p > 0.0)
        .collect();
    entries.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite probs")
            .then(a.0.cmp(&b.0))
    });
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod visit_tests {
    use super::*;
    use crate::grid::LocationId;
    use crate::learn::{MobilityModel, Smoothing};
    use crate::trace::{TaxiId, TraceEvent, TraceSet};

    fn alternating_model() -> MobilityModel {
        let traces: TraceSet = (0..40u32)
            .map(|s| TraceEvent {
                taxi: TaxiId::new(0),
                slot: s,
                location: LocationId::new(s % 2),
            })
            .collect();
        MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper)
    }

    #[test]
    fn horizon_one_equals_transition_probability() {
        let model = alternating_model();
        let direct = model.prob(LocationId::new(0), LocationId::new(1));
        let via_visit = visit_probability(&model, LocationId::new(0), LocationId::new(1), 1);
        assert!((direct - via_visit).abs() < 1e-12);
    }

    #[test]
    fn visit_probability_is_monotone_in_horizon() {
        // A 3-cycle 0 → 1 → 2 → 0: reaching 2 from 0 takes two steps.
        let traces: TraceSet = (0..60u32)
            .map(|s| TraceEvent {
                taxi: TaxiId::new(0),
                slot: s,
                location: LocationId::new(s % 3),
            })
            .collect();
        let model = MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper);
        let mut last = 0.0;
        for horizon in 1..8 {
            let p = visit_probability(&model, LocationId::new(0), LocationId::new(2), horizon);
            assert!(p >= last - 1e-12, "dropped at horizon {horizon}");
            assert!(p <= 1.0);
            last = p;
        }
        // One step cannot reach 2; two steps can.
        let h1 = visit_probability(&model, LocationId::new(0), LocationId::new(2), 1);
        let h2 = visit_probability(&model, LocationId::new(0), LocationId::new(2), 2);
        assert_eq!(h1, 0.0);
        assert!(h2 > 0.5);
    }

    #[test]
    fn unknown_origin_or_target_is_zero() {
        let model = alternating_model();
        assert_eq!(
            visit_probability(&model, LocationId::new(9), LocationId::new(1), 5),
            0.0
        );
        assert_eq!(
            visit_probability(&model, LocationId::new(0), LocationId::new(9), 5),
            0.0
        );
    }

    #[test]
    fn top_k_visits_ranks_by_hit_probability() {
        let model = alternating_model();
        let top = top_k_visits(&model, LocationId::new(0), 4, 5);
        assert!(!top.is_empty());
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}

/// Estimated visit probabilities from `origin` to *every* visited location
/// within `horizon` steps, descending (ties by ascending id).
///
/// Uses the product-of-marginals estimate
/// `P(visit j) ≈ 1 − Π_h (1 − m_h(j))`, where `m_h` is the step-`h`
/// occupancy distribution — `O(horizon · l²)` for all targets at once,
/// versus `O(horizon · l³)` for exact per-target absorption
/// ([`visit_probability`]). The estimate treats step occupancies as
/// independent, so it can land on either side of the exact value (above
/// when revisits inflate the marginals, below when early hits would have
/// wandered off); for the dispersed, low-probability rows a learned taxi
/// model has, the two agree closely. The exact routine is the reference,
/// this is the bulk pipeline.
pub fn visit_profile(
    model: &MobilityModel,
    origin: crate::grid::LocationId,
    horizon: u32,
) -> Vec<(crate::grid::LocationId, f64)> {
    let states = model.visited();
    let Ok(origin_idx) = states.binary_search(&origin) else {
        return Vec::new();
    };
    let l = states.len();
    // Occupancy distribution, starting at the origin.
    let mut occupancy = vec![0.0f64; l];
    occupancy[origin_idx] = 1.0;
    // Row cache: the model is sparse-backed, so materialize rows once.
    let rows: Vec<Vec<f64>> = states
        .iter()
        .map(|&s| states.iter().map(|&t| model.prob(s, t)).collect())
        .collect();
    let mut miss = vec![1.0f64; l]; // Π (1 − m_h(j))
    for _ in 0..horizon {
        let mut next = vec![0.0f64; l];
        for (s_idx, &mass) in occupancy.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (t_idx, &p) in rows[s_idx].iter().enumerate() {
                next[t_idx] += mass * p;
            }
        }
        for (m, &occ) in miss.iter_mut().zip(&next) {
            *m *= (1.0 - occ).max(0.0);
        }
        occupancy = next;
    }
    let mut entries: Vec<(crate::grid::LocationId, f64)> = states
        .iter()
        .zip(&miss)
        .map(|(&loc, &m)| (loc, 1.0 - m))
        .filter(|&(_, p)| p > 0.0)
        .collect();
    entries.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite probs")
            .then(a.0.cmp(&b.0))
    });
    entries
}

#[cfg(test)]
mod visit_profile_tests {
    use super::*;
    use crate::grid::LocationId;
    use crate::learn::{MobilityModel, Smoothing};
    use crate::trace::{TaxiId, TraceEvent, TraceSet};

    fn cycle_model() -> MobilityModel {
        let traces: TraceSet = (0..60u32)
            .map(|s| TraceEvent {
                taxi: TaxiId::new(0),
                slot: s,
                location: LocationId::new(s % 3),
            })
            .collect();
        MobilityModel::learn(&traces, TaxiId::new(0), Smoothing::Paper)
    }

    #[test]
    fn horizon_one_matches_transition_row() {
        let model = cycle_model();
        let profile = visit_profile(&model, LocationId::new(0), 1);
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].0, LocationId::new(1));
        assert!((profile[0].1 - model.prob(LocationId::new(0), LocationId::new(1))).abs() < 1e-12);
    }

    #[test]
    fn tracks_exact_absorption() {
        // A deterministic cycle maximizes revisit inflation, so the
        // product-of-marginals estimate sits above the exact absorption
        // probability — but stays in range and close even here. Dispersed
        // taxi rows are far tamer.
        let model = cycle_model();
        for horizon in [2, 4, 6] {
            let profile = visit_profile(&model, LocationId::new(0), horizon);
            for &(target, estimate) in &profile {
                let exact = visit_probability(&model, LocationId::new(0), target, horizon);
                assert!((0.0..=1.0).contains(&estimate));
                assert!(
                    (estimate - exact).abs() < 0.2,
                    "estimate {estimate} far from exact {exact} for {target} at h={horizon}"
                );
            }
        }
    }

    #[test]
    fn unknown_origin_is_empty() {
        let model = cycle_model();
        assert!(visit_profile(&model, LocationId::new(9), 4).is_empty());
    }
}
