//! Serving-path visit-probability oracle: the bulk predictor behind an
//! incremental, cached lookup API.
//!
//! [`predict::visit_profile`](crate::predict::visit_profile) computes a
//! taxi's sensing-window visit distribution in one `O(h·l²)` pass, which
//! is the right shape for offline evaluation but the wrong one for a
//! serving path that asks "will taxi *t*, currently at *o*, reach cell
//! *g*?" once per (bid, task) pair every auction round. [`VisitOracle`]
//! amortizes that: the first query for a `(taxi, origin)` pair pays for
//! the full profile, every later query against any target is a map
//! lookup. The oracle is deterministic — answers depend only on the
//! models and the horizon, never on query order — so closed-loop
//! campaign engines can fold its outputs into bitwise-reproducible
//! fingerprints.

use std::collections::BTreeMap;

use crate::grid::LocationId;
use crate::learn::MobilityModel;
use crate::predict::visit_profile;
use crate::trace::TaxiId;

/// A cached, per-taxi visit-probability oracle for the serving path.
///
/// # Examples
///
/// ```
/// use mcs_mobility::learn::{learn_all, Smoothing};
/// use mcs_mobility::serve::VisitOracle;
/// use mcs_mobility::synth::{CityConfig, SyntheticCity};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let city = SyntheticCity::generate(CityConfig::default(), &mut rng);
/// let traces = city.simulate(4, 60, &mut rng);
/// let models = learn_all(&traces, Smoothing::Paper);
/// let taxi = *models.keys().next().unwrap();
/// let origin = models[&taxi].visited()[0];
///
/// let mut oracle = VisitOracle::new(models, 12);
/// let p = oracle.visit_probability(taxi, origin, origin);
/// assert!((0.0..=1.0).contains(&p));
/// assert_eq!(oracle.cached_profiles(), 1); // second query is a lookup
/// let again = oracle.visit_probability(taxi, origin, origin);
/// assert_eq!(p, again);
/// ```
#[derive(Debug, Clone)]
pub struct VisitOracle {
    models: BTreeMap<TaxiId, MobilityModel>,
    horizon: u32,
    profiles: BTreeMap<(TaxiId, LocationId), BTreeMap<LocationId, f64>>,
}

impl VisitOracle {
    /// An oracle over `models` answering for sensing windows of
    /// `horizon` slots.
    pub fn new(models: BTreeMap<TaxiId, MobilityModel>, horizon: u32) -> Self {
        VisitOracle {
            models,
            horizon,
            profiles: BTreeMap::new(),
        }
    }

    /// The sensing-window horizon, in slots.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The number of taxis the oracle has models for.
    pub fn taxi_count(&self) -> usize {
        self.models.len()
    }

    /// The probability that `taxi`, starting from `origin`, visits
    /// `target` at least once within the horizon. Unknown taxis and
    /// never-visited origins answer 0 — the conservative reading a
    /// calibrator wants (no evidence the cell is reachable).
    pub fn visit_probability(
        &mut self,
        taxi: TaxiId,
        origin: LocationId,
        target: LocationId,
    ) -> f64 {
        let Some(model) = self.models.get(&taxi) else {
            return 0.0;
        };
        let profile = self.profiles.entry((taxi, origin)).or_insert_with(|| {
            visit_profile(model, origin, self.horizon)
                .into_iter()
                .collect()
        });
        profile.get(&target).copied().unwrap_or(0.0)
    }

    /// The full cached visit profile for `(taxi, origin)`, computing it
    /// on first access. Empty when the taxi is unknown or never visited
    /// `origin` in training.
    pub fn profile(&mut self, taxi: TaxiId, origin: LocationId) -> &BTreeMap<LocationId, f64> {
        static EMPTY: BTreeMap<LocationId, f64> = BTreeMap::new();
        let Some(model) = self.models.get(&taxi) else {
            return &EMPTY;
        };
        self.profiles.entry((taxi, origin)).or_insert_with(|| {
            visit_profile(model, origin, self.horizon)
                .into_iter()
                .collect()
        })
    }

    /// How many `(taxi, origin)` profiles are cached — the number of
    /// bulk computations paid so far.
    pub fn cached_profiles(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::{learn_all, Smoothing};
    use crate::synth::{CityConfig, SyntheticCity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn oracle() -> (VisitOracle, TaxiId, LocationId) {
        let mut rng = StdRng::seed_from_u64(11);
        let city = SyntheticCity::generate(CityConfig::default(), &mut rng);
        let traces = city.simulate(5, 80, &mut rng);
        let models = learn_all(&traces, Smoothing::Paper);
        let taxi = *models.keys().next().unwrap();
        let origin = models[&taxi].visited()[0];
        (VisitOracle::new(models, 10), taxi, origin)
    }

    #[test]
    fn matches_the_bulk_profile() {
        let (mut oracle, taxi, origin) = oracle();
        let bulk = visit_profile(&oracle.models[&taxi].clone(), origin, 10);
        assert!(!bulk.is_empty());
        for (target, expected) in bulk {
            assert_eq!(oracle.visit_probability(taxi, origin, target), expected);
        }
        // Every query above shares one cached profile.
        assert_eq!(oracle.cached_profiles(), 1);
    }

    #[test]
    fn unknown_taxis_and_targets_answer_zero() {
        let (mut oracle, taxi, origin) = oracle();
        assert_eq!(
            oracle.visit_probability(TaxiId::new(9999), origin, origin),
            0.0
        );
        assert_eq!(
            oracle.visit_probability(taxi, origin, LocationId::new(u32::MAX)),
            0.0
        );
        // The unknown-taxi query cached nothing.
        assert_eq!(oracle.cached_profiles(), 1);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let (mut oracle, taxi, origin) = oracle();
        let targets: Vec<LocationId> = oracle.models[&taxi].visited().to_vec();
        for target in targets {
            let p = oracle.visit_probability(taxi, origin, target);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }
}
