//! Dense row-stochastic Markov transition matrices over grid locations.
//!
//! Used for the *ground-truth* mobility process of the synthetic city
//! (the stand-in for real Shanghai taxi behaviour). Learned, per-taxi
//! models live in [`crate::learn`]; they are sparse and deliberately
//! sub-stochastic (the paper's smoothing formula leaves probability mass on
//! unseen transitions).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::grid::LocationId;

/// A dense row-stochastic transition matrix: `P[from][to]` is the
/// probability of moving from `from` to `to` in one time slot.
///
/// # Examples
///
/// ```
/// use mcs_mobility::markov::TransitionMatrix;
/// use mcs_mobility::grid::LocationId;
///
/// // A two-state chain that mostly stays put.
/// let p = TransitionMatrix::from_rows(vec![
///     vec![0.9, 0.1],
///     vec![0.2, 0.8],
/// ]).unwrap();
/// assert_eq!(p.state_count(), 2);
/// let pi = p.stationary(1000, 1e-12);
/// // Stationary distribution of this chain is (2/3, 1/3).
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
/// # use mcs_mobility::markov::MatrixError;
/// # Ok::<(), MatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(into = "MatrixRepr")]
pub struct TransitionMatrix {
    rows: Vec<Vec<f64>>,
    /// Per-row cumulative sums for O(log n) sampling.
    cumulative: Vec<Vec<f64>>,
}

/// Serialized form of [`TransitionMatrix`]; deserialization re-validates
/// (and rebuilds the sampling tables) through
/// [`TransitionMatrix::from_rows`].
#[derive(Serialize, Deserialize)]
struct MatrixRepr {
    rows: Vec<Vec<f64>>,
}

impl From<TransitionMatrix> for MatrixRepr {
    fn from(matrix: TransitionMatrix) -> Self {
        MatrixRepr { rows: matrix.rows }
    }
}

impl<'de> Deserialize<'de> for TransitionMatrix {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        let repr = MatrixRepr::deserialize(deserializer)?;
        TransitionMatrix::from_rows(repr.rows).map_err(serde::de::Error::custom)
    }
}

/// Errors from constructing a [`TransitionMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix was empty.
    Empty,
    /// A row's length differed from the number of rows.
    NotSquare {
        /// Index of the offending row.
        row: usize,
    },
    /// A probability was negative, NaN, or infinite.
    InvalidEntry {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A row did not sum to 1 (within 1e-9).
    NotStochastic {
        /// Index of the offending row.
        row: usize,
    },
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::Empty => write!(f, "transition matrix is empty"),
            MatrixError::NotSquare { row } => write!(f, "row {row} has the wrong length"),
            MatrixError::InvalidEntry { row, col } => {
                write!(f, "entry ({row}, {col}) is not a valid probability")
            }
            MatrixError::NotStochastic { row } => write!(f, "row {row} does not sum to 1"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl TransitionMatrix {
    /// Creates a validated matrix from dense rows.
    ///
    /// # Errors
    ///
    /// See [`MatrixError`].
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, MatrixError> {
        if rows.is_empty() {
            return Err(MatrixError::Empty);
        }
        let n = rows.len();
        for (r, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(MatrixError::NotSquare { row: r });
            }
            let mut sum = 0.0;
            for (c, &p) in row.iter().enumerate() {
                if !p.is_finite() || p < 0.0 {
                    return Err(MatrixError::InvalidEntry { row: r, col: c });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(MatrixError::NotStochastic { row: r });
            }
        }
        let cumulative = build_cumulative(&rows);
        Ok(TransitionMatrix { rows, cumulative })
    }

    /// Creates a matrix from non-negative weights, normalizing each row.
    ///
    /// Rows whose weights sum to zero become self-loops.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrix is not square or contains negative /
    /// non-finite entries.
    pub fn from_weights(weights: Vec<Vec<f64>>) -> Self {
        let n = weights.len();
        assert!(n > 0, "weight matrix must be non-empty");
        let mut rows = Vec::with_capacity(n);
        for (r, row) in weights.into_iter().enumerate() {
            assert_eq!(row.len(), n, "weight matrix must be square");
            let sum: f64 = row
                .iter()
                .inspect(|&&w| assert!(w.is_finite() && w >= 0.0, "invalid weight"))
                .sum();
            if sum > 0.0 {
                rows.push(row.into_iter().map(|w| w / sum).collect());
            } else {
                let mut selfloop = vec![0.0; n];
                selfloop[r] = 1.0;
                rows.push(selfloop);
            }
        }
        let cumulative = build_cumulative(&rows);
        TransitionMatrix { rows, cumulative }
    }

    /// The number of states (locations).
    pub fn state_count(&self) -> usize {
        self.rows.len()
    }

    /// The transition probability `P(from → to)`.
    pub fn prob(&self, from: LocationId, to: LocationId) -> f64 {
        self.rows[from.index()][to.index()]
    }

    /// The full row for `from`.
    pub fn row(&self, from: LocationId) -> &[f64] {
        &self.rows[from.index()]
    }

    /// Samples the next state from `from`.
    pub fn sample_next<R: Rng + ?Sized>(&self, from: LocationId, rng: &mut R) -> LocationId {
        let cumulative = &self.cumulative[from.index()];
        let u: f64 = rng.gen();
        let idx = cumulative.partition_point(|&c| c < u);
        LocationId::new(idx.min(cumulative.len() - 1) as u32)
    }

    /// The stationary distribution by power iteration (assumes the chain is
    /// ergodic enough for the iteration to converge; returns the last
    /// iterate otherwise).
    pub fn stationary(&self, max_iterations: usize, tolerance: f64) -> Vec<f64> {
        let n = self.state_count();
        let mut pi = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for _ in 0..max_iterations {
            next.iter_mut().for_each(|x| *x = 0.0);
            for (from, row) in self.rows.iter().enumerate() {
                let mass = pi[from];
                if mass == 0.0 {
                    continue;
                }
                for (to, &p) in row.iter().enumerate() {
                    next[to] += mass * p;
                }
            }
            let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            if delta < tolerance {
                break;
            }
        }
        pi
    }

    /// The `k` most likely successors of `from`, descending by probability
    /// (ties by ascending location id for determinism).
    pub fn top_k(&self, from: LocationId, k: usize) -> Vec<(LocationId, f64)> {
        let mut entries: Vec<(LocationId, f64)> = self.rows[from.index()]
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(i, &p)| (LocationId::new(i as u32), p))
            .collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probs")
                .then(a.0.cmp(&b.0))
        });
        entries.truncate(k);
        entries
    }
}

fn build_cumulative(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    rows.iter()
        .map(|row| {
            let mut acc = 0.0;
            row.iter()
                .map(|&p| {
                    acc += p;
                    acc
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loc(i: u32) -> LocationId {
        LocationId::new(i)
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        assert_eq!(
            TransitionMatrix::from_rows(vec![]).unwrap_err(),
            MatrixError::Empty
        );
        assert_eq!(
            TransitionMatrix::from_rows(vec![vec![1.0], vec![1.0, 0.0]]).unwrap_err(),
            MatrixError::NotSquare { row: 0 }
        );
        assert_eq!(
            TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![-0.1, 1.1]]).unwrap_err(),
            MatrixError::InvalidEntry { row: 1, col: 0 }
        );
        assert_eq!(
            TransitionMatrix::from_rows(vec![vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap_err(),
            MatrixError::NotStochastic { row: 0 }
        );
    }

    #[test]
    fn weights_normalize_per_row() {
        let p = TransitionMatrix::from_weights(vec![vec![2.0, 2.0], vec![0.0, 0.0]]);
        assert_eq!(p.prob(loc(0), loc(1)), 0.5);
        // Zero-weight row becomes a self-loop.
        assert_eq!(p.prob(loc(1), loc(1)), 1.0);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let p = TransitionMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.5, 0.5]]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 50_000;
        let mut to_zero = 0;
        for _ in 0..trials {
            if p.sample_next(loc(0), &mut rng) == loc(0) {
                to_zero += 1;
            }
        }
        let freq = to_zero as f64 / trials as f64;
        assert!((freq - 0.7).abs() < 0.01, "sampled {freq}, expected 0.7");
    }

    #[test]
    fn stationary_solves_the_fixed_point() {
        let p = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.25, 0.25],
            vec![0.2, 0.6, 0.2],
            vec![0.25, 0.25, 0.5],
        ])
        .unwrap();
        let pi = p.stationary(10_000, 1e-13);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // πP = π
        for j in 0..3 {
            let lhs: f64 = (0..3)
                .map(|i| pi[i] * p.prob(loc(i as u32), loc(j as u32)))
                .sum();
            assert!((lhs - pi[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn top_k_orders_descending_with_deterministic_ties() {
        let p = TransitionMatrix::from_rows(vec![
            vec![0.1, 0.4, 0.4, 0.1],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let top = p.top_k(loc(0), 2);
        assert_eq!(top[0].0, loc(1)); // tie between 1 and 2 → smaller id
        assert_eq!(top[1].0, loc(2));
        // Zero-probability successors never appear.
        let top = p.top_k(loc(2), 4);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn serde_round_trip_rebuilds_sampler() {
        let p = TransitionMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.5, 0.5]]).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: TransitionMatrix = serde_json::from_str(&json).unwrap();
        // The skipped cumulative field must be rebuilt for sampling.
        let mut rng = StdRng::seed_from_u64(3);
        let _ = back.sample_next(loc(0), &mut rng);
        assert_eq!(back.prob(loc(0), loc(0)), 0.7);
    }
}
