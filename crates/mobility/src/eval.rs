//! Model evaluation: held-out log-likelihood and smoothing comparison.
//!
//! Figure 3's top-k accuracy is a ranking metric; log-likelihood scores
//! the *calibration* of the learned transition probabilities, which is
//! what the auction layer actually consumes (PoS values enter utilities
//! linearly through `q = -ln(1-p)`). This module provides held-out
//! evaluation and a small model-selection helper between the paper's
//! sub-stochastic smoothing and the add-one variant.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::learn::{learn_all, MobilityModel, Smoothing};
use crate::trace::{TaxiId, TraceSet};

/// Held-out evaluation results for one model family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Transitions evaluated.
    pub transitions: usize,
    /// Transitions the model assigned zero probability (unseen moves; they
    /// are *excluded* from the mean log-likelihood and counted here).
    pub zero_probability: usize,
    /// Mean natural-log likelihood over the positively-scored transitions.
    pub mean_log_likelihood: f64,
}

impl EvalReport {
    /// Perplexity `exp(−mean log-likelihood)` over scored transitions.
    pub fn perplexity(&self) -> f64 {
        (-self.mean_log_likelihood).exp()
    }

    /// Fraction of held-out transitions the model could score at all.
    pub fn coverage(&self) -> f64 {
        if self.transitions == 0 {
            return 0.0;
        }
        (self.transitions - self.zero_probability) as f64 / self.transitions as f64
    }
}

/// Scores per-taxi `models` on the held-out `evaluation` trace.
pub fn evaluate(models: &BTreeMap<TaxiId, MobilityModel>, evaluation: &TraceSet) -> EvalReport {
    let mut transitions = 0usize;
    let mut zero_probability = 0usize;
    let mut log_likelihood = 0.0f64;
    for taxi in evaluation.taxis() {
        let Some(model) = models.get(&taxi) else {
            continue;
        };
        for (from, to) in evaluation.transitions(taxi) {
            transitions += 1;
            let p = model.prob(from, to);
            if p > 0.0 {
                log_likelihood += p.ln();
            } else {
                zero_probability += 1;
            }
        }
    }
    let scored = transitions - zero_probability;
    EvalReport {
        transitions,
        zero_probability,
        mean_log_likelihood: if scored == 0 {
            f64::NEG_INFINITY
        } else {
            log_likelihood / scored as f64
        },
    }
}

/// Learns both smoothing variants on `train` and scores them on
/// `evaluation`; returns `(paper, add_one)`.
pub fn compare_smoothings(train: &TraceSet, evaluation: &TraceSet) -> (EvalReport, EvalReport) {
    let paper = evaluate(&learn_all(train, Smoothing::Paper), evaluation);
    let add_one = evaluate(&learn_all(train, Smoothing::AddOne), evaluation);
    (paper, add_one)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LocationId;
    use crate::trace::TraceEvent;

    fn event(taxi: u32, slot: u32, location: u32) -> TraceEvent {
        TraceEvent {
            taxi: TaxiId::new(taxi),
            slot,
            location: LocationId::new(location),
        }
    }

    fn alternating(taxi: u32, slots: std::ops::Range<u32>) -> Vec<TraceEvent> {
        slots.map(|s| event(taxi, s, s % 2)).collect()
    }

    #[test]
    fn perfectly_learned_chain_scores_high() {
        let train: TraceSet = alternating(0, 0..40).into_iter().collect();
        let test: TraceSet = alternating(0, 40..50).into_iter().collect();
        let report = evaluate(&learn_all(&train, Smoothing::Paper), &test);
        assert_eq!(report.transitions, 9);
        assert_eq!(report.zero_probability, 0);
        assert_eq!(report.coverage(), 1.0);
        // P(0→1) = 19/21 or 20/22, so log-likelihood close to 0.
        assert!(report.mean_log_likelihood > -0.15);
        assert!(report.perplexity() < 1.2);
    }

    #[test]
    fn unseen_transitions_counted_not_scored() {
        let train: TraceSet = alternating(0, 0..10).into_iter().collect();
        // Held-out data jumps to a location never seen in training.
        let test: TraceSet = vec![event(0, 100, 0), event(0, 101, 7)]
            .into_iter()
            .collect();
        let report = evaluate(&learn_all(&train, Smoothing::Paper), &test);
        assert_eq!(report.transitions, 1);
        assert_eq!(report.zero_probability, 1);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn add_one_covers_more_but_calibrates_worse_on_clean_chains() {
        let train: TraceSet = alternating(0, 0..40).into_iter().collect();
        let test: TraceSet = vec![event(0, 100, 0), event(0, 101, 0)]
            .into_iter()
            .collect(); // self-loop, unseen
        let (paper, add_one) = compare_smoothings(&train, &test);
        // The paper smoothing cannot score the unseen self-loop at all;
        // add-one assigns it its 1/(x+l) floor.
        assert_eq!(paper.zero_probability, 1);
        assert_eq!(add_one.zero_probability, 0);
        assert!(add_one.coverage() > paper.coverage());
    }

    #[test]
    fn empty_evaluation_reports_nothing_scored() {
        let train: TraceSet = alternating(0, 0..10).into_iter().collect();
        let report = evaluate(&learn_all(&train, Smoothing::Paper), &TraceSet::new());
        assert_eq!(report.transitions, 0);
        assert_eq!(report.coverage(), 0.0);
        assert_eq!(report.mean_log_likelihood, f64::NEG_INFINITY);
    }
}
