//! Taxi traces: sequences of time-stamped location visits.
//!
//! The real data set behind the paper records pick-up/drop-off events of
//! 1692 Shanghai taxis over January 2013; each entry carries a taxi id, a
//! time stamp, and a location. We reproduce that schema with discrete time
//! slots: a [`TraceEvent`] is "taxi `t` was at location `l` in slot `s`".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::grid::LocationId;

/// Identifier of a taxi (a future mobile user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaxiId(u32);

impl TaxiId {
    /// Creates a taxi id from a raw index.
    pub const fn new(index: u32) -> Self {
        TaxiId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaxiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "taxi{}", self.0)
    }
}

/// One observation: a taxi at a location in a time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The observed taxi.
    pub taxi: TaxiId,
    /// The discrete time slot (0-based).
    pub slot: u32,
    /// Where the taxi was.
    pub location: LocationId,
}

/// A collection of traces, indexed by taxi.
///
/// # Examples
///
/// ```
/// use mcs_mobility::grid::LocationId;
/// use mcs_mobility::trace::{TaxiId, TraceEvent, TraceSet};
///
/// let mut traces = TraceSet::new();
/// traces.push(TraceEvent { taxi: TaxiId::new(0), slot: 0, location: LocationId::new(3) });
/// traces.push(TraceEvent { taxi: TaxiId::new(0), slot: 1, location: LocationId::new(4) });
/// assert_eq!(traces.taxi_count(), 1);
/// // One observed transition: 3 → 4.
/// let transitions: Vec<_> = traces.transitions(TaxiId::new(0)).collect();
/// assert_eq!(transitions, vec![(LocationId::new(3), LocationId::new(4))]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceSet {
    /// Per-taxi event lists; events are kept sorted by slot.
    events: BTreeMap<TaxiId, Vec<TraceEvent>>,
}

impl TraceSet {
    /// Creates an empty trace set.
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Adds an event, keeping the taxi's trace sorted by slot.
    pub fn push(&mut self, event: TraceEvent) {
        let trace = self.events.entry(event.taxi).or_default();
        match trace.binary_search_by_key(&event.slot, |e| e.slot) {
            Ok(pos) => trace[pos] = event, // replace duplicate slot
            Err(pos) => trace.insert(pos, event),
        }
    }

    /// The number of taxis with at least one event.
    pub fn taxi_count(&self) -> usize {
        self.events.len()
    }

    /// Total number of events.
    pub fn event_count(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// The taxis present in the set.
    pub fn taxis(&self) -> impl Iterator<Item = TaxiId> + '_ {
        self.events.keys().copied()
    }

    /// A taxi's events in slot order (empty if unknown).
    pub fn trace(&self, taxi: TaxiId) -> &[TraceEvent] {
        self.events.get(&taxi).map_or(&[], Vec::as_slice)
    }

    /// Iterates over a taxi's observed `(from, to)` transitions between
    /// consecutive slots.
    ///
    /// Gaps in the slot sequence do *not* produce transitions — just like
    /// missing GPS samples in the real data set.
    pub fn transitions(&self, taxi: TaxiId) -> impl Iterator<Item = (LocationId, LocationId)> + '_ {
        let trace = self.trace(taxi);
        trace
            .windows(2)
            .filter(|pair| pair[1].slot == pair[0].slot + 1)
            .map(|pair| (pair[0].location, pair[1].location))
    }

    /// Splits the set at `slot`: events strictly before it form the
    /// training set, the rest the evaluation set.
    pub fn split_at_slot(&self, slot: u32) -> (TraceSet, TraceSet) {
        let mut train = TraceSet::new();
        let mut test = TraceSet::new();
        for events in self.events.values() {
            for &event in events {
                if event.slot < slot {
                    train.push(event);
                } else {
                    test.push(event);
                }
            }
        }
        (train, test)
    }
}

impl FromIterator<TraceEvent> for TraceSet {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut set = TraceSet::new();
        for event in iter {
            set.push(event);
        }
        set
    }
}

impl Extend<TraceEvent> for TraceSet {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        for event in iter {
            self.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(taxi: u32, slot: u32, location: u32) -> TraceEvent {
        TraceEvent {
            taxi: TaxiId::new(taxi),
            slot,
            location: LocationId::new(location),
        }
    }

    #[test]
    fn events_sort_by_slot_regardless_of_insertion_order() {
        let traces: TraceSet = vec![event(0, 2, 30), event(0, 0, 10), event(0, 1, 20)]
            .into_iter()
            .collect();
        let slots: Vec<u32> = traces
            .trace(TaxiId::new(0))
            .iter()
            .map(|e| e.slot)
            .collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_slots_keep_latest() {
        let mut traces = TraceSet::new();
        traces.push(event(0, 5, 1));
        traces.push(event(0, 5, 2));
        assert_eq!(traces.event_count(), 1);
        assert_eq!(traces.trace(TaxiId::new(0))[0].location, LocationId::new(2));
    }

    #[test]
    fn transitions_skip_gaps() {
        let traces: TraceSet = vec![
            event(0, 0, 1),
            event(0, 1, 2),
            event(0, 5, 3),
            event(0, 6, 4),
        ]
        .into_iter()
        .collect();
        let transitions: Vec<_> = traces.transitions(TaxiId::new(0)).collect();
        assert_eq!(
            transitions,
            vec![
                (LocationId::new(1), LocationId::new(2)),
                (LocationId::new(3), LocationId::new(4)),
            ]
        );
    }

    #[test]
    fn split_partitions_by_slot() {
        let traces: TraceSet = (0..10).map(|s| event(0, s, s)).collect();
        let (train, test) = traces.split_at_slot(7);
        assert_eq!(train.event_count(), 7);
        assert_eq!(test.event_count(), 3);
        assert!(train.trace(TaxiId::new(0)).iter().all(|e| e.slot < 7));
        assert!(test.trace(TaxiId::new(0)).iter().all(|e| e.slot >= 7));
    }

    #[test]
    fn unknown_taxi_has_empty_trace() {
        let traces = TraceSet::new();
        assert!(traces.trace(TaxiId::new(9)).is_empty());
        assert_eq!(traces.transitions(TaxiId::new(9)).count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let traces: TraceSet = vec![event(0, 0, 1), event(1, 0, 2)].into_iter().collect();
        let json = serde_json::to_string(&traces).unwrap();
        let back: TraceSet = serde_json::from_str(&json).unwrap();
        assert_eq!(traces, back);
    }
}
