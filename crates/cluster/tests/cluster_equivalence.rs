//! The cluster's headline theorem, property-tested: for ANY profile,
//! ANY band partition of the grid, and ANY node count, an N-node
//! deployment produces bitwise-identical allocations, quotes,
//! settlements, ledgers, and fingerprints to the 1-node run — and both
//! agree with the transport-free [`ground_truth`] oracle.
//!
//! Placement is the only thing that varies across deployments, and
//! placement must never be observable in an outcome bit. A second suite
//! forces straddler-heavy profiles (every user spans at least two
//! regions) so the phase-2 merge path carries the proof too.

use mcs_cluster::{
    ground_truth, Cluster, ClusterConfig, ClusterOutcome, ClusterParams, TaskSite, Topology,
};
use mcs_core::types::{Task, TaskId};
use mcs_mobility::grid::{Cell, CityGrid};
use mcs_platform::ingest::Bid;
use proptest::prelude::*;

const GRID_WIDTH: u32 = 8;
const GRID_HEIGHT: u32 = 4;

/// A generated auction: task sites, a band partition, a seed, and a
/// few rounds of bids.
#[derive(Debug, Clone)]
struct Profile {
    sites: Vec<TaskSite>,
    bands: usize,
    seed: u64,
    rounds: Vec<Vec<Bid>>,
}

fn build_topology(profile: &Profile) -> Topology {
    let grid = CityGrid::new(GRID_WIDTH, GRID_HEIGHT, 1.0);
    Topology::bands(grid, profile.bands, profile.sites.clone()).expect("generated sites are valid")
}

/// Runs the profile through a replicated loopback deployment of
/// `nodes` nodes and returns the full outcome.
fn deploy(profile: &Profile, nodes: u32) -> ClusterOutcome {
    let params = ClusterParams::default().with_seed(profile.seed);
    let config = ClusterConfig::new(nodes).with_params(params);
    let mut cluster = Cluster::loopback(build_topology(profile), config);
    for bids in &profile.rounds {
        cluster
            .run_round(bids)
            .expect("loopback transports never fail");
    }
    cluster.outcome().clone()
}

/// Task sites: 2–6 tasks scattered anywhere on the grid. When
/// `spread` is set, the first task pins to the west edge and the last
/// to the east edge so multi-band partitions always split the set.
fn arb_sites(spread: bool) -> impl Strategy<Value = Vec<TaskSite>> {
    proptest::collection::vec((0.3f64..0.9, 0..GRID_WIDTH, 0..GRID_HEIGHT), 2..6usize).prop_map(
        move |specs| {
            let last = specs.len() - 1;
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (requirement, x, y))| TaskSite {
                    task: Task::with_requirement(TaskId::new(i as u32), requirement)
                        .expect("generated requirement is valid"),
                    cell: Cell {
                        x: if spread && i == 0 {
                            0
                        } else if spread && i == last {
                            GRID_WIDTH - 1
                        } else {
                            x
                        },
                        y,
                    },
                })
                .collect()
        },
    )
}

/// Rounds of bids over `task_count` published tasks. Each user draws a
/// per-task inclusion flag and PoS declaration; user ids are the
/// per-round index, so rounds are always well-formed. With
/// `straddler_heavy`, the first and last tasks (pinned to opposite
/// grid edges by [`arb_sites`]) are always in the set, so every bidder
/// spans at least two regions of any ≥2-band partition.
fn arb_rounds(task_count: u32, straddler_heavy: bool) -> impl Strategy<Value = Vec<Vec<Bid>>> {
    let n = task_count as usize;
    proptest::collection::vec(
        proptest::collection::vec(
            (
                0.1f64..5.0,
                proptest::collection::vec((any::<bool>(), 0.05f64..0.95), n..=n),
            ),
            0..10usize,
        ),
        1..4usize,
    )
    .prop_map(move |rounds| {
        rounds
            .into_iter()
            .map(|users| {
                users
                    .into_iter()
                    .enumerate()
                    .map(|(user, (cost, prefs))| {
                        let mut tasks: Vec<(u32, f64)> = prefs
                            .iter()
                            .enumerate()
                            .filter(|(_, (include, _))| *include)
                            .map(|(task, (_, pos))| (task as u32, *pos))
                            .collect();
                        let forced: &[usize] = if straddler_heavy { &[0, n - 1] } else { &[0] };
                        for &task in forced {
                            if (straddler_heavy || tasks.is_empty())
                                && !tasks.iter().any(|(t, _)| *t as usize == task)
                            {
                                tasks.push((task as u32, prefs[task].1));
                            }
                        }
                        tasks.sort_by_key(|a| a.0);
                        Bid {
                            user: user as u32,
                            cost,
                            tasks,
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

/// The composed profile strategy. `straddler_heavy` forces spread task
/// sites, every user onto ≥2 tasks, and ≥2 bands, so every bidder's
/// task set crosses a region boundary.
fn arb_profile(straddler_heavy: bool) -> impl Strategy<Value = Profile> {
    let min_bands = if straddler_heavy { 2usize } else { 1 };
    (arb_sites(straddler_heavy), min_bands..=8usize, any::<u64>()).prop_flat_map(
        move |(sites, bands, seed)| {
            let task_count = sites.len() as u32;
            arb_rounds(task_count, straddler_heavy).prop_map(move |rounds| Profile {
                sites: sites.clone(),
                bands,
                seed,
                rounds,
            })
        },
    )
}

/// Asserts every outcome bit of `outcome` equals `reference`.
fn assert_bitwise_equal(outcome: &ClusterOutcome, reference: &ClusterOutcome, label: &str) {
    // Allocations and quotes live inside the per-(round, shard) results.
    assert_eq!(
        outcome.results, reference.results,
        "{label}: cleared results diverged"
    );
    assert_eq!(
        outcome.settlements, reference.settlements,
        "{label}: settlements diverged"
    );
    assert_eq!(
        outcome.ledger.balances(),
        reference.ledger.balances(),
        "{label}: ledger balances diverged"
    );
    assert_eq!(
        outcome.ledger.total_paid().to_bits(),
        reference.ledger.total_paid().to_bits(),
        "{label}: total paid diverged"
    );
    assert_eq!(
        outcome.fingerprint(),
        reference.fingerprint(),
        "{label}: fingerprints diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random profiles × random partitions × nodes ∈ {1, 2, 4, 8}:
    /// every deployment is bitwise the 1-node run, and the mirror
    /// oracle agrees.
    #[test]
    fn every_deployment_is_bitwise_the_single_node_run(profile in arb_profile(false)) {
        let reference = deploy(&profile, 1);
        for nodes in [2u32, 4, 8] {
            let outcome = deploy(&profile, nodes);
            assert_bitwise_equal(&outcome, &reference, &format!("{nodes} nodes"));
        }
        let params = ClusterParams::default().with_seed(profile.seed);
        let truth = ground_truth(&build_topology(&profile), params, &profile.rounds);
        assert_bitwise_equal(&truth, &reference, "ground truth");
    }

    /// The same theorem under straddler-heavy load: every user spans at
    /// least two regions, so phase 2 (the coordinator's straddler
    /// merge) decides essentially every outcome bit.
    #[test]
    fn straddler_heavy_profiles_stay_deployment_invariant(profile in arb_profile(true)) {
        let reference = deploy(&profile, 1);
        for nodes in [2u32, 4, 8] {
            let outcome = deploy(&profile, nodes);
            assert_bitwise_equal(&outcome, &reference, &format!("{nodes} nodes, straddler-heavy"));
        }
        let params = ClusterParams::default().with_seed(profile.seed);
        let truth = ground_truth(&build_topology(&profile), params, &profile.rounds);
        assert_bitwise_equal(&truth, &reference, "ground truth, straddler-heavy");
    }
}

/// A deterministic spot check that the straddler generator actually
/// produces cross-region bidders (the property above would pass
/// vacuously if phase 2 never ran).
#[test]
fn straddler_generation_reaches_phase_two() {
    let grid = CityGrid::new(GRID_WIDTH, GRID_HEIGHT, 1.0);
    let sites = vec![
        TaskSite {
            task: Task::with_requirement(TaskId::new(0), 0.6).unwrap(),
            cell: Cell { x: 0, y: 0 },
        },
        TaskSite {
            task: Task::with_requirement(TaskId::new(1), 0.6).unwrap(),
            cell: Cell {
                x: GRID_WIDTH - 1,
                y: 0,
            },
        },
    ];
    let topology = Topology::bands(grid, 2, sites).unwrap();
    let straddler_shard = topology.straddler_shard();
    let profile = Profile {
        sites: topology.sites().to_vec(),
        bands: 2,
        seed: 11,
        rounds: vec![vec![
            Bid {
                user: 0,
                cost: 1.0,
                tasks: vec![(0, 0.9), (1, 0.9)],
            },
            Bid {
                user: 1,
                cost: 1.2,
                tasks: vec![(0, 0.8), (1, 0.8)],
            },
        ]],
    };
    let outcome = deploy(&profile, 2);
    assert!(
        outcome
            .results
            .keys()
            .any(|&(_, shard)| shard == straddler_shard),
        "two-region task sets must clear in the straddler shard"
    );
    assert_bitwise_equal(&deploy(&profile, 1), &outcome, "straddler spot check");
}
