//! The cluster mirror: a single-process oracle that computes what any
//! deployment of the cluster *must* produce.
//!
//! [`ground_truth`] runs the identical decomposition — route, per-region
//! phase-1 clears, residual straddler phase 2, ascending settlement —
//! with no engines, no transports, no nodes: just the pure
//! [`clear_round`](mcs_platform::shard::clear_round) helpers from
//! [`crate::clearing`]. The equivalence and chaos suites compare real
//! cluster runs (any node count, any transport, any survivable fault
//! schedule) against this oracle bit for bit.

use std::collections::BTreeMap;

use mcs_platform::ingest::Bid;
use mcs_platform::metrics::RoundEconomics;
use mcs_platform::shard::{clear_round, ClearedRound};

use crate::clearing::{clear_regional, covered_contributions, straddler_round};
use crate::config::ClusterParams;
use crate::coordinator::{shard_post_mortem, ClusterOutcome, ClusterQuarantine, QuarantineCause};
use crate::route::route_bids;
use crate::topology::Topology;

/// Computes the deployment-invariant outcome of running `rounds` of bids
/// through the cluster decomposition, entirely in-process.
pub fn ground_truth(
    topology: &Topology,
    params: ClusterParams,
    rounds: &[Vec<Bid>],
) -> ClusterOutcome {
    let mut outcome = ClusterOutcome::default();
    for (round, bids) in rounds.iter().enumerate() {
        let round = round as u64;
        let routed = route_bids(topology, bids);
        let mut results: BTreeMap<u32, ClearedRound> = BTreeMap::new();

        for (&region, bids) in &routed.regional {
            let config = params.engine_config(region);
            match clear_regional(topology, &config, region, round, bids) {
                Ok(cleared) => {
                    results.insert(region, cleared);
                }
                Err(error) => {
                    let bidders = bids.len() as u64;
                    let post_mortem = shard_post_mortem(round, region, bidders, &error);
                    outcome.quarantines.push(ClusterQuarantine {
                        round,
                        cause: QuarantineCause::Shard {
                            shard: region,
                            bidders,
                            error,
                        },
                        post_mortem,
                    });
                }
            }
        }

        let covered = covered_contributions(&routed.regional, &results);
        let straddler_shard = topology.straddler_shard();
        if let Some(straddler) = straddler_round(topology, round, &routed.straddlers, &covered) {
            let config = params.engine_config(straddler_shard);
            let bidders = straddler.profile.user_count() as u64;
            match clear_round(&straddler, &config) {
                Ok(cleared) => {
                    results.insert(straddler_shard, cleared);
                }
                Err(error) => {
                    let post_mortem = shard_post_mortem(round, straddler_shard, bidders, &error);
                    outcome.quarantines.push(ClusterQuarantine {
                        round,
                        cause: QuarantineCause::Shard {
                            shard: straddler_shard,
                            bidders,
                            error,
                        },
                        post_mortem,
                    });
                }
            }
        }

        for (shard, mut cleared) in results {
            cleared.economics = RoundEconomics::default();
            let settlement = outcome.ledger.settle(&cleared);
            outcome.results.insert((round, shard), cleared);
            outcome.settlements.insert((round, shard), settlement);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::coordinator::Cluster;
    use crate::topology::TaskSite;
    use mcs_core::types::{Task, TaskId};
    use mcs_mobility::grid::{Cell, CityGrid};

    fn topology() -> Topology {
        let grid = CityGrid::new(4, 2, 1.0);
        let sites = vec![
            TaskSite {
                task: Task::with_requirement(TaskId::new(0), 0.8).unwrap(),
                cell: Cell { x: 0, y: 0 },
            },
            TaskSite {
                task: Task::with_requirement(TaskId::new(1), 0.7).unwrap(),
                cell: Cell { x: 3, y: 0 },
            },
        ];
        Topology::bands(grid, 2, sites).unwrap()
    }

    fn bid(user: u32, cost: f64, tasks: &[(u32, f64)]) -> Bid {
        Bid {
            user,
            cost,
            tasks: tasks.to_vec(),
        }
    }

    #[test]
    fn the_mirror_matches_a_real_cluster_bit_for_bit() {
        let params = ClusterParams::default().with_seed(21);
        let rounds: Vec<Vec<Bid>> = (0..4)
            .map(|round| {
                vec![
                    bid(0, 2.0 + round as f64 * 0.1, &[(0, 0.6)]),
                    bid(1, 1.5, &[(0, 0.7)]),
                    bid(2, 1.8, &[(1, 0.6)]),
                    bid(3, 2.2, &[(1, 0.5)]),
                    bid(4, 3.0, &[(0, 0.4), (1, 0.4)]),
                ]
            })
            .collect();

        let oracle = ground_truth(&topology(), params, &rounds);

        for nodes in [1u32, 2] {
            let mut cluster =
                Cluster::loopback(topology(), ClusterConfig::new(nodes).with_params(params));
            for bids in &rounds {
                cluster.run_round(bids).unwrap();
            }
            assert_eq!(
                cluster.outcome().results,
                oracle.results,
                "results diverge from the mirror at {nodes} nodes"
            );
            assert_eq!(cluster.outcome().settlements, oracle.settlements);
            assert_eq!(
                cluster.outcome().ledger.balances(),
                oracle.ledger.balances()
            );
            assert_eq!(cluster.fingerprint(), oracle.fingerprint());
        }
    }
}
