//! The pure clearing decomposition every deployment shares.
//!
//! These helpers define *what* the cluster computes; `node`/`coordinator`
//! define *where*. The mirror oracle calls them directly in one process,
//! the node path reaches the same [`clear_round`] through its shard
//! engines — and because each helper is a pure function of the topology,
//! the round id, and the routed bids, the two paths agree bit for bit.
//!
//! ## Phase 2: the straddler clear
//!
//! Phase 1 clears each region's single-region bids under the region
//! shard's seed. Phase 2 then republishes every task at its *residual*
//! requirement `Q_j' = Q_j − Σ q` (contributions of the phase-1 winners,
//! saturating at zero) and runs one coordinator-local round over the
//! straddlers — users whose task sets span regions — with task sets
//! intersected with the still-uncovered tasks, user order fixed by id.
//! The straddler shard has its own seed
//! (`shard_seed(seed, regions.len())`), so its execution draws never
//! collide with any region's.

use std::collections::BTreeMap;

use mcs_core::types::{Contribution, Cost, Pos, Task, TaskId, TypeProfile, UserId, UserType};
use mcs_platform::batch::{Round, RoundId};
use mcs_platform::config::EngineConfig;
use mcs_platform::degrade::RoundError;
use mcs_platform::ingest::Bid;
use mcs_platform::shard::{clear_round, ClearedRound};

use crate::topology::Topology;

/// Builds the validated [`UserType`] of a routed bid. Routing already
/// validated every field (see [`crate::route`]), so this cannot fail.
pub(crate) fn user_type_of(bid: &Bid) -> UserType {
    let mut builder = UserType::builder(UserId::new(bid.user))
        .cost(Cost::new(bid.cost).expect("routed bids carry validated costs"));
    for &(task, pos) in &bid.tasks {
        builder = builder.task(
            TaskId::new(task),
            Pos::new(pos).expect("routed bids carry validated PoS"),
        );
    }
    builder
        .build()
        .expect("routed bids build well-formed types")
}

/// The regional sub-round of cluster round `round` for `region`: its
/// routed bids (submission order) against the region's tasks.
pub(crate) fn regional_round(topology: &Topology, region: u32, round: u64, bids: &[Bid]) -> Round {
    let users = bids.iter().map(user_type_of).collect();
    let profile = TypeProfile::new(users, topology.region_tasks(region).to_vec())
        .expect("routed regional bids form a valid profile");
    Round {
        id: RoundId(round),
        profile,
    }
}

/// Clears a regional sub-round as a pure function — the mirror path.
/// The node path reaches the same [`clear_round`] through its shard
/// engine with the same `(config, round id, profile)` triple.
pub(crate) fn clear_regional(
    topology: &Topology,
    config: &EngineConfig,
    region: u32,
    round: u64,
    bids: &[Bid],
) -> Result<ClearedRound, RoundError> {
    clear_round(&regional_round(topology, region, round, bids), config)
}

/// Accumulates the phase-1 coverage of each task: the sum of every
/// regional winner's contribution, iterating regions ascending and
/// winners ascending within a region — a fixed order, so the float
/// accumulation is identical in every deployment.
pub(crate) fn covered_contributions(
    regional_bids: &BTreeMap<u32, Vec<Bid>>,
    results: &BTreeMap<u32, ClearedRound>,
) -> BTreeMap<u32, Contribution> {
    let mut covered: BTreeMap<u32, Contribution> = BTreeMap::new();
    for (region, cleared) in results {
        let bids = regional_bids
            .get(region)
            .map(Vec::as_slice)
            .unwrap_or_default();
        let by_user: BTreeMap<u32, &Bid> = bids.iter().map(|bid| (bid.user, bid)).collect();
        for winner in cleared.allocation.winners() {
            let bid = by_user
                .get(&(winner.index() as u32))
                .expect("winners come from this region's bids");
            for &(task, pos) in &bid.tasks {
                let entry = covered.entry(task).or_insert(Contribution::ZERO);
                *entry += Pos::new(pos).expect("validated PoS").contribution();
            }
        }
    }
    covered
}

/// Builds the phase-2 straddler round: every task republished at its
/// residual requirement, straddler users (ascending id) with task sets
/// intersected with the residual tasks. `None` when nothing is left to
/// clear — no straddlers, no residual requirement, or no straddler can
/// touch a residual task — in which case phase 2 is skipped identically
/// in every deployment.
pub(crate) fn straddler_round(
    topology: &Topology,
    round: u64,
    straddlers: &[Bid],
    covered: &BTreeMap<u32, Contribution>,
) -> Option<Round> {
    if straddlers.is_empty() {
        return None;
    }
    let mut residual: Vec<Task> = Vec::new();
    for task in topology.tasks() {
        let id = task.id().index() as u32;
        let absorbed = covered.get(&id).copied().unwrap_or(Contribution::ZERO);
        let left = task.requirement_contribution() - absorbed;
        if !left.is_zero() {
            residual.push(Task::new(task.id(), left.pos()));
        }
    }
    if residual.is_empty() {
        return None;
    }
    let residual_ids: BTreeMap<u32, ()> = residual
        .iter()
        .map(|task| (task.id().index() as u32, ()))
        .collect();

    let mut ordered: Vec<&Bid> = straddlers.iter().collect();
    ordered.sort_by_key(|bid| bid.user);
    let mut users = Vec::new();
    for bid in ordered {
        let tasks: Vec<(u32, f64)> = bid
            .tasks
            .iter()
            .copied()
            .filter(|(task, _)| residual_ids.contains_key(task))
            .collect();
        if tasks.is_empty() {
            continue;
        }
        users.push(user_type_of(&Bid {
            user: bid.user,
            cost: bid.cost,
            tasks,
        }));
    }
    if users.is_empty() {
        return None;
    }
    let profile =
        TypeProfile::new(users, residual).expect("straddler bids form a valid residual profile");
    Some(Round {
        id: RoundId(round),
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TaskSite;
    use mcs_core::mechanism::Allocation;
    use mcs_mobility::grid::{Cell, CityGrid};

    fn topology() -> Topology {
        let grid = CityGrid::new(4, 2, 1.0);
        let sites = vec![
            TaskSite {
                task: Task::with_requirement(TaskId::new(0), 0.8).unwrap(),
                cell: Cell { x: 0, y: 0 },
            },
            TaskSite {
                task: Task::with_requirement(TaskId::new(1), 0.7).unwrap(),
                cell: Cell { x: 3, y: 0 },
            },
        ];
        Topology::bands(grid, 2, sites).unwrap()
    }

    fn bid(user: u32, cost: f64, tasks: &[(u32, f64)]) -> Bid {
        Bid {
            user,
            cost,
            tasks: tasks.to_vec(),
        }
    }

    #[test]
    fn straddler_round_republishes_residual_requirements() {
        let topology = topology();
        // Region 0's winner contributes PoS 0.5 toward task 0 (req 0.8);
        // task 1 is untouched.
        let regional_bids: BTreeMap<u32, Vec<Bid>> = [(0u32, vec![bid(1, 1.0, &[(0, 0.5)])])]
            .into_iter()
            .collect();
        let results: BTreeMap<u32, ClearedRound> = [(
            0u32,
            ClearedRound {
                id: RoundId(0),
                allocation: Allocation::from_winners([UserId::new(1)]),
                quotes: BTreeMap::new(),
                reports: BTreeMap::new(),
                social_cost: 0.0,
                economics: Default::default(),
            },
        )]
        .into_iter()
        .collect();
        let covered = covered_contributions(&regional_bids, &results);
        let straddlers = vec![bid(7, 2.0, &[(0, 0.4), (1, 0.6)])];
        let round = straddler_round(&topology, 0, &straddlers, &covered).unwrap();
        assert_eq!(round.profile.task_count(), 2);
        let task0 = round.profile.task(TaskId::new(0)).unwrap();
        // Residual requirement of task 0 shrank below the original 0.8.
        assert!(task0.requirement().value() < 0.8);
        let task1 = round.profile.task(TaskId::new(1)).unwrap();
        assert!((task1.requirement().value() - 0.7).abs() < 1e-9);
        assert_eq!(round.profile.user_count(), 1);
    }

    #[test]
    fn fully_covered_tasks_drop_out_of_phase_two() {
        let topology = topology();
        let mut covered = BTreeMap::new();
        // Saturate both tasks.
        covered.insert(0, Pos::new(0.999).unwrap().contribution());
        covered.insert(1, Pos::new(0.999).unwrap().contribution());
        let straddlers = vec![bid(7, 2.0, &[(0, 0.4), (1, 0.6)])];
        assert!(straddler_round(&topology, 0, &straddlers, &covered).is_none());
    }

    #[test]
    fn no_straddlers_means_no_phase_two() {
        let topology = topology();
        assert!(straddler_round(&topology, 0, &[], &BTreeMap::new()).is_none());
    }

    #[test]
    fn straddler_users_are_ordered_by_id() {
        let topology = topology();
        let straddlers = vec![
            bid(9, 1.0, &[(0, 0.3), (1, 0.3)]),
            bid(2, 1.0, &[(0, 0.4), (1, 0.4)]),
        ];
        let round = straddler_round(&topology, 0, &straddlers, &BTreeMap::new()).unwrap();
        let ids: Vec<usize> = round
            .profile
            .users()
            .iter()
            .map(|u| u.id().index())
            .collect();
        assert_eq!(ids, vec![2, 9]);
    }
}
