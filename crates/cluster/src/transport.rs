//! Node transports: how the coordinator reaches node servers.
//!
//! [`LoopbackTransport`] keeps every server in-process but still pushes
//! every call through the full wire codec — encode, frame, unframe,
//! decode on both legs — so the loopback and TCP paths execute the same
//! protocol byte for byte (the CI transport-equivalence check pins
//! this). [`TcpTransport`] speaks the same frames over real sockets,
//! one request per connection, reusing the plain-std accept-loop idiom
//! of `mcs_obs::ExportServer`.

use std::collections::BTreeMap;
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::node::NodeServer;
use crate::wire::{
    decode_request, decode_response, encode_request, encode_response, frame, read_frame, unframe,
    write_frame, Request, Response,
};

/// Which replica of a node a call targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// The replica that starts as primary.
    Primary,
    /// The standby replica.
    Follower,
}

/// A call target: `(node, replica)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Endpoint {
    /// The node id.
    pub node: u32,
    /// Which replica.
    pub role: Role,
}

/// Why a call failed at the transport layer.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The endpoint cannot be reached (connection refused, node lost,
    /// partitioned, or stream broken mid-call).
    Unreachable(Endpoint),
    /// The bytes arrived but did not decode.
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Unreachable(endpoint) => {
                write!(f, "node {} {:?} unreachable", endpoint.node, endpoint.role)
            }
            TransportError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// How the coordinator reaches node servers.
pub trait NodeTransport {
    /// Sends `request` to `endpoint` and waits for its response.
    ///
    /// # Errors
    ///
    /// A [`TransportError`] when the endpoint is unreachable or the
    /// exchange violates the wire protocol.
    fn call(&self, endpoint: Endpoint, request: &Request) -> Result<Response, TransportError>;
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// In-process transport: servers live behind mutexes, every call round-
/// trips the wire codec.
pub struct LoopbackTransport {
    replicas: BTreeMap<(u32, u8), Mutex<NodeServer>>,
}

fn role_key(role: Role) -> u8 {
    match role {
        Role::Primary => 0,
        Role::Follower => 1,
    }
}

impl LoopbackTransport {
    /// Builds a loopback cluster from `(node id, primary, follower)`
    /// server triples.
    pub fn new(nodes: Vec<(u32, NodeServer, NodeServer)>) -> Self {
        let mut replicas = BTreeMap::new();
        for (node, primary, follower) in nodes {
            replicas.insert((node, role_key(Role::Primary)), Mutex::new(primary));
            replicas.insert((node, role_key(Role::Follower)), Mutex::new(follower));
        }
        LoopbackTransport { replicas }
    }
}

impl NodeTransport for LoopbackTransport {
    fn call(&self, endpoint: Endpoint, request: &Request) -> Result<Response, TransportError> {
        let server = self
            .replicas
            .get(&(endpoint.node, role_key(endpoint.role)))
            .ok_or(TransportError::Unreachable(endpoint))?;
        // Round-trip the request through the codec so loopback exercises
        // exactly the bytes TCP would carry.
        let framed = frame(&encode_request(request));
        let decoded = unframe(&framed)
            .and_then(decode_request)
            .map_err(|error| TransportError::Protocol(error.to_string()))?;
        let response = server
            .lock()
            .expect("node server mutex poisoned")
            .handle(&decoded);
        let framed = frame(&encode_response(&response));
        unframe(&framed)
            .and_then(decode_response)
            .map_err(|error| TransportError::Protocol(error.to_string()))
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// A node server listening on a real socket.
pub struct NodeListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl NodeListener {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves `server` on an ephemeral localhost port: one frame exchange
/// per connection, like the metrics exporter's accept loop.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_node(server: Arc<Mutex<NodeServer>>) -> std::io::Result<NodeListener> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let Ok(Ok(payload)) = read_frame(&mut stream) else {
                continue;
            };
            let response = match decode_request(&payload) {
                Ok(request) => server
                    .lock()
                    .expect("node server mutex poisoned")
                    .handle(&request),
                Err(error) => Response::Error {
                    message: format!("bad request: {error}"),
                },
            };
            let _ = write_frame(&mut stream, &encode_response(&response));
        }
    });
    Ok(NodeListener {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// TCP transport: a registry of endpoint addresses, one connection per
/// call.
#[derive(Debug, Default)]
pub struct TcpTransport {
    addrs: BTreeMap<(u32, u8), SocketAddr>,
}

impl TcpTransport {
    /// An empty registry.
    pub fn new() -> Self {
        TcpTransport::default()
    }

    /// Registers the address serving `endpoint`.
    pub fn register(&mut self, endpoint: Endpoint, addr: SocketAddr) {
        self.addrs
            .insert((endpoint.node, role_key(endpoint.role)), addr);
    }
}

impl NodeTransport for TcpTransport {
    fn call(&self, endpoint: Endpoint, request: &Request) -> Result<Response, TransportError> {
        let addr = self
            .addrs
            .get(&(endpoint.node, role_key(endpoint.role)))
            .ok_or(TransportError::Unreachable(endpoint))?;
        let mut stream =
            TcpStream::connect(addr).map_err(|_| TransportError::Unreachable(endpoint))?;
        write_frame(&mut stream, &encode_request(request))
            .map_err(|_| TransportError::Unreachable(endpoint))?;
        let payload = match read_frame(&mut stream) {
            Ok(Ok(payload)) => payload,
            Ok(Err(error)) => return Err(TransportError::Protocol(error.to_string())),
            Err(_) => return Err(TransportError::Unreachable(endpoint)),
        };
        decode_response(&payload).map_err(|error| TransportError::Protocol(error.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterParams;
    use crate::topology::{TaskSite, Topology};
    use mcs_core::types::{Task, TaskId};
    use mcs_mobility::grid::{Cell, CityGrid};
    use mcs_platform::ingest::Bid;

    fn topology() -> Topology {
        let grid = CityGrid::new(4, 2, 1.0);
        let sites = vec![
            TaskSite {
                task: Task::with_requirement(TaskId::new(0), 0.8).unwrap(),
                cell: Cell { x: 0, y: 0 },
            },
            TaskSite {
                task: Task::with_requirement(TaskId::new(1), 0.7).unwrap(),
                cell: Cell { x: 3, y: 0 },
            },
        ];
        Topology::bands(grid, 2, sites).unwrap()
    }

    fn clear_request() -> Request {
        Request::Clear {
            region: 0,
            round: 0,
            bids: vec![
                Bid {
                    user: 0,
                    cost: 2.0,
                    tasks: vec![(0, 0.6)],
                },
                Bid {
                    user: 1,
                    cost: 1.5,
                    tasks: vec![(0, 0.7)],
                },
            ],
        }
    }

    #[test]
    fn loopback_and_tcp_serve_identical_responses() {
        let topology = topology();
        let params = ClusterParams::default().with_seed(3);

        let loopback = LoopbackTransport::new(vec![(
            0,
            NodeServer::new(&topology, params, 1, 0, true),
            NodeServer::new(&topology, params, 1, 0, false),
        )]);

        let tcp_server = Arc::new(Mutex::new(NodeServer::new(&topology, params, 1, 0, true)));
        let mut listener = serve_node(tcp_server).unwrap();
        let mut tcp = TcpTransport::new();
        let endpoint = Endpoint {
            node: 0,
            role: Role::Primary,
        };
        tcp.register(endpoint, listener.addr());

        for request in [Request::Ping, clear_request(), Request::Ping] {
            let a = loopback.call(endpoint, &request).unwrap();
            let b = tcp.call(endpoint, &request).unwrap();
            assert_eq!(a, b, "transports disagree on {request:?}");
        }
        listener.shutdown();
    }

    #[test]
    fn unknown_endpoints_are_unreachable() {
        let loopback = LoopbackTransport::new(vec![]);
        let endpoint = Endpoint {
            node: 7,
            role: Role::Primary,
        };
        assert_eq!(
            loopback.call(endpoint, &Request::Ping),
            Err(TransportError::Unreachable(endpoint))
        );
        let tcp = TcpTransport::new();
        assert!(matches!(
            tcp.call(endpoint, &Request::Ping),
            Err(TransportError::Unreachable(_))
        ));
    }

    #[test]
    fn dead_sockets_surface_as_unreachable() {
        let topology = topology();
        let params = ClusterParams::default();
        let server = Arc::new(Mutex::new(NodeServer::new(&topology, params, 1, 0, true)));
        let mut listener = serve_node(server).unwrap();
        let addr = listener.addr();
        listener.shutdown();
        let mut tcp = TcpTransport::new();
        let endpoint = Endpoint {
            node: 0,
            role: Role::Primary,
        };
        tcp.register(endpoint, addr);
        assert!(matches!(
            tcp.call(endpoint, &Request::Ping),
            Err(TransportError::Unreachable(_))
        ));
    }
}
