//! Cluster configuration.

use mcs_platform::config::{BatchPolicy, EngineConfig, TraceConfig};

use crate::topology::shard_seed;

/// The mechanism/engine parameters every shard engine shares. The only
/// per-shard difference is the seed, derived via
/// [`shard_seed`](crate::topology::shard_seed) — everything else must be
/// identical or the 1-node ≡ N-node equivalence proof would be comparing
/// different auctions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Cluster master seed; shard engine seeds derive from it.
    pub seed: u64,
    /// Shard workers per engine (outcome-invariant).
    pub workers: usize,
    /// Payment fan-out per engine (outcome-invariant).
    pub payment_threads: usize,
    /// Reward scaling factor `α`.
    pub alpha: f64,
    /// FPTAS approximation parameter `ε` (single-task sub-rounds).
    pub epsilon: f64,
    /// Flight-recorder ring capacity per shard engine.
    pub trace_capacity: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        let engine = EngineConfig::default();
        ClusterParams {
            seed: 0,
            workers: engine.workers,
            payment_threads: engine.payment_threads,
            alpha: engine.alpha,
            epsilon: engine.epsilon,
            trace_capacity: 4096,
        }
    }
}

impl ClusterParams {
    /// These parameters with a different master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The engine configuration of shard `shard`: the shared parameters
    /// with the shard-derived seed, a one-shot batch policy (the
    /// coordinator closes each sub-round explicitly), and a
    /// logical-clock trace ring so per-shard traces stay deterministic.
    pub fn engine_config(&self, shard: u32) -> EngineConfig {
        let mut config = EngineConfig::default()
            .with_seed(shard_seed(self.seed, shard))
            .with_workers(self.workers)
            .with_payment_threads(self.payment_threads)
            .with_trace(TraceConfig {
                capacity: self.trace_capacity,
                logical_clock: true,
            });
        config.alpha = self.alpha;
        config.epsilon = self.epsilon;
        // The coordinator flushes each sub-round explicitly; the batcher
        // must never close one early on its own.
        config.batch = BatchPolicy {
            max_bids: 1 << 20,
            max_ticks: u32::MAX,
        };
        config
    }
}

/// A full cluster deployment description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Node count (placement only — outcomes are invariant to it).
    pub nodes: u32,
    /// Shared shard-engine parameters.
    pub params: ClusterParams,
    /// Replicate checkpoint deltas to each node's follower after every
    /// round (required for promote-on-loss failover to preserve
    /// outcomes).
    pub replicate: bool,
}

impl ClusterConfig {
    /// A replicated deployment of `nodes` nodes with default parameters.
    pub fn new(nodes: u32) -> Self {
        ClusterConfig {
            nodes,
            params: ClusterParams::default(),
            replicate: true,
        }
    }

    /// This configuration with different shard parameters.
    pub fn with_params(mut self, params: ClusterParams) -> Self {
        self.params = params;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_configs_differ_only_in_seed() {
        let params = ClusterParams::default().with_seed(9);
        let a = params.engine_config(0);
        let b = params.engine_config(3);
        assert_ne!(a.seed, b.seed);
        let mut b_with_a_seed = b;
        b_with_a_seed.seed = a.seed;
        assert_eq!(a, b_with_a_seed);
        assert!(a.trace.logical_clock);
        assert!(a.batch.max_bids >= 1 << 20);
    }
}
