//! The cluster coordinator: routes each round, drives the two-phase
//! clear across nodes, settles on the authoritative ledger, and
//! replicates checkpoint deltas to followers.
//!
//! ## Failure handling
//!
//! *Node loss.* An `Unreachable` primary triggers promote-on-loss: the
//! follower gets `Promote`, becomes the node's active replica, and the
//! call is retried there. Because clearing is a pure function of
//! `(shard seed, round id, routed bids)`, the promoted follower produces
//! byte-identical outcomes — the chaos tests pin an unchanged cluster
//! fingerprint across a mid-round loss.
//!
//! *Partition.* When a node's primary *and* follower are unreachable,
//! the whole logical round is quarantined with a typed cause and a JSON
//! post-mortem. Healthy regions still receive their `Clear` (keeping
//! every stream's dedup cache and engine state aligned), but their
//! outcomes are discarded, phase 2 is skipped, and nothing settles —
//! a quarantined round is all-or-nothing, never silently partial.
//!
//! *Duplicate delivery.* Handled node-side by the idempotency cache;
//! the coordinator needs no special casing.

use std::collections::BTreeMap;

use mcs_obs::TraceEvent;
use mcs_platform::degrade::RoundError;
use mcs_platform::ingest::Bid;
use mcs_platform::metrics::RoundEconomics;
use mcs_platform::settle::{Ledger, RoundSettlement};
use mcs_platform::shard::{clear_round, ClearedRound};

use crate::clearing::{covered_contributions, straddler_round};
use crate::config::ClusterConfig;
use crate::node::NodeServer;
use crate::route::route_bids;
use crate::topology::Topology;
use crate::transport::{Endpoint, LoopbackTransport, NodeTransport, Role, TransportError};
use crate::wire::{fnv1a64, Request, Response};

/// Why a cluster round was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineCause {
    /// One shard's sub-round failed to clear; the rest of the round
    /// stands.
    Shard {
        /// The failing shard (a region, or the straddler shard).
        shard: u32,
        /// Bidders in the failed sub-round.
        bidders: u64,
        /// The typed clearing error.
        error: RoundError,
    },
    /// A node was unreachable on both replicas; the whole round is
    /// quarantined.
    Partition {
        /// The unreachable node.
        node: u32,
    },
}

/// A quarantined cluster round: the typed cause plus a complete JSON
/// post-mortem for operators.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQuarantine {
    /// The cluster round id.
    pub round: u64,
    /// What went wrong.
    pub cause: QuarantineCause,
    /// A self-contained JSON post-mortem.
    pub post_mortem: String,
}

/// Everything a cluster (or the mirror oracle) computed: per-shard
/// outcomes, settlements, quarantines, and the authoritative ledger.
#[derive(Debug, Clone, Default)]
pub struct ClusterOutcome {
    /// Cleared sub-rounds keyed `(round, shard)`; the straddler shard is
    /// `topology.straddler_shard()`.
    pub results: BTreeMap<(u64, u32), ClearedRound>,
    /// Settlements keyed `(round, shard)`, applied in ascending key
    /// order.
    pub settlements: BTreeMap<(u64, u32), RoundSettlement>,
    /// Quarantined rounds, in occurrence order.
    pub quarantines: Vec<ClusterQuarantine>,
    /// The authoritative coordinator ledger.
    pub ledger: Ledger,
}

impl ClusterOutcome {
    /// The FNV-1a fingerprint of everything economically meaningful:
    /// winners, quote bits, report bits, social-cost bits, settlement
    /// totals, and ledger balances. Node placement, transports, and
    /// failovers never enter the hash — so 1-node and N-node runs of the
    /// same profile must agree bit for bit.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for (&(round, shard), cleared) in &self.results {
            bytes.extend_from_slice(&round.to_le_bytes());
            bytes.extend_from_slice(&shard.to_le_bytes());
            for winner in cleared.allocation.winners() {
                bytes.extend_from_slice(&(winner.index() as u32).to_le_bytes());
            }
            for (user, quote) in &cleared.quotes {
                bytes.extend_from_slice(&(user.index() as u32).to_le_bytes());
                bytes.extend_from_slice(&quote.success.to_bits().to_le_bytes());
                bytes.extend_from_slice(&quote.failure.to_bits().to_le_bytes());
            }
            for (user, &completed) in &cleared.reports {
                bytes.extend_from_slice(&(user.index() as u32).to_le_bytes());
                bytes.push(completed as u8);
            }
            bytes.extend_from_slice(&cleared.social_cost.to_bits().to_le_bytes());
        }
        for (&(round, shard), settlement) in &self.settlements {
            bytes.extend_from_slice(&round.to_le_bytes());
            bytes.extend_from_slice(&shard.to_le_bytes());
            bytes.extend_from_slice(&settlement.total.to_bits().to_le_bytes());
        }
        for quarantine in &self.quarantines {
            bytes.extend_from_slice(&quarantine.round.to_le_bytes());
            let (shard, code) = match &quarantine.cause {
                QuarantineCause::Shard { shard, error, .. } => {
                    let code = match error {
                        RoundError::Infeasible { .. } => 1u8,
                        RoundError::Mechanism { .. } => 2,
                        RoundError::Panicked { .. } => 3,
                        RoundError::DeadlineExceeded { .. } => 4,
                    };
                    (*shard, code)
                }
                // The node id is placement-specific and stays out of the
                // hash.
                QuarantineCause::Partition { .. } => (u32::MAX, 0xFF),
            };
            bytes.extend_from_slice(&shard.to_le_bytes());
            bytes.push(code);
        }
        for (user, balance) in self.ledger.balances() {
            bytes.extend_from_slice(&(user.index() as u32).to_le_bytes());
            bytes.extend_from_slice(&balance.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&self.ledger.total_paid().to_bits().to_le_bytes());
        bytes.extend_from_slice(&self.ledger.rounds_settled().to_le_bytes());
        fnv1a64(&bytes)
    }
}

/// What one cluster round did.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// The cluster round id.
    pub round: u64,
    /// Shards that cleared winners this round, ascending.
    pub cleared_shards: Vec<u32>,
    /// Whether the whole round was quarantined (partition).
    pub quarantined: bool,
    /// Bids rejected by cluster-wide validation.
    pub rejected: usize,
    /// Nodes that failed over to their follower during this round.
    pub promoted: Vec<u32>,
}

/// A hard coordinator failure — protocol violations, not faults. Faults
/// (loss, partition, duplicates) are handled, not raised.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A node answered outside the protocol.
    Protocol {
        /// The offending node.
        node: u32,
        /// What it said.
        message: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Protocol { node, message } => {
                write!(f, "protocol violation from node {node}: {message}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[derive(serde::Serialize)]
struct ShardPostMortem {
    round: u64,
    cause: &'static str,
    shard: u32,
    bidders: u64,
    error: String,
}

/// Renders the JSON post-mortem of a shard-level quarantine. Shared
/// with the mirror oracle so real and oracle post-mortems compare
/// byte-equal.
pub(crate) fn shard_post_mortem(
    round: u64,
    shard: u32,
    bidders: u64,
    error: &RoundError,
) -> String {
    serde_json::to_string(&ShardPostMortem {
        round,
        cause: "shard",
        shard,
        bidders,
        error: error.to_string(),
    })
    .expect("post-mortem serializes")
}

#[derive(serde::Serialize)]
struct PartitionPostMortem {
    round: u64,
    cause: &'static str,
    node: u32,
    unreached_regions: Vec<u32>,
    discarded_regions: Vec<u32>,
    accepted_bids: u64,
    rejected_bids: u64,
    straddlers: u64,
}

/// The result of one node call after failover handling.
enum NodeCall {
    Ok(Response),
    /// Both replicas unreachable.
    Down,
}

/// The cluster coordinator over any [`NodeTransport`].
pub struct Cluster<T: NodeTransport> {
    topology: Topology,
    config: ClusterConfig,
    transport: T,
    /// Per node: which replica is active.
    active: BTreeMap<u32, Role>,
    /// Replication watermark per `(node, region)`: the last settled
    /// round already applied to the follower.
    watermarks: BTreeMap<(u32, u32), Option<u64>>,
    next_round: u64,
    outcome: ClusterOutcome,
}

impl Cluster<LoopbackTransport> {
    /// An in-process deployment: every node's primary and follower live
    /// behind a loopback transport that still round-trips the full wire
    /// codec.
    pub fn loopback(topology: Topology, config: ClusterConfig) -> Self {
        let params = config.params;
        let nodes = (0..config.nodes)
            .map(|node| {
                (
                    node,
                    NodeServer::new(&topology, params, config.nodes, node, true),
                    NodeServer::new(&topology, params, config.nodes, node, false),
                )
            })
            .collect();
        Cluster::new(topology, config, LoopbackTransport::new(nodes))
    }
}

impl<T: NodeTransport> Cluster<T> {
    /// A coordinator over an already-wired transport. Every node starts
    /// with its primary active.
    pub fn new(topology: Topology, config: ClusterConfig, transport: T) -> Self {
        let active = (0..config.nodes)
            .map(|node| (node, Role::Primary))
            .collect();
        Cluster {
            topology,
            config,
            transport,
            active,
            watermarks: BTreeMap::new(),
            next_round: 0,
            outcome: ClusterOutcome::default(),
        }
    }

    /// The deployment topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The next cluster round id.
    pub fn next_round(&self) -> u64 {
        self.next_round
    }

    /// Which replica each node currently runs on.
    pub fn active_roles(&self) -> &BTreeMap<u32, Role> {
        &self.active
    }

    /// The underlying transport — harnesses use this to steer
    /// fault-injecting wrappers between rounds.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Everything computed so far.
    pub fn outcome(&self) -> &ClusterOutcome {
        &self.outcome
    }

    /// The deployment-invariant fingerprint of everything computed so
    /// far.
    pub fn fingerprint(&self) -> u64 {
        self.outcome.fingerprint()
    }

    /// Runs one cluster round over `bids`.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] only on protocol violations; faults are handled
    /// (failover) or quarantined (partition), never raised.
    pub fn run_round(&mut self, bids: &[Bid]) -> Result<RoundReport, ClusterError> {
        let round = self.next_round;
        self.next_round += 1;
        let routed = route_bids(&self.topology, bids);
        let rejected = routed.rejected.len();
        let mut promoted = Vec::new();
        let mut down: Vec<u32> = Vec::new();
        let mut phase1: BTreeMap<u32, ClearedRound> = BTreeMap::new();
        let mut shard_quarantines: Vec<(u32, u64, RoundError)> = Vec::new();

        // Phase 1: every active region clears its sub-round, regions
        // ascending. Regions without bids still get an (empty) Clear so
        // every stream sees every round id.
        let regions: Vec<u32> = self.topology.active_regions().collect();
        for &region in &regions {
            let node = self.topology.node_of_region(region, self.config.nodes);
            if down.contains(&node) {
                continue;
            }
            let bids = routed.regional.get(&region).cloned().unwrap_or_default();
            let request = Request::Clear {
                region,
                round,
                bids,
            };
            match self.call_with_failover(node, &request, &mut promoted)? {
                NodeCall::Ok(Response::Cleared(outcome)) => {
                    phase1.insert(region, outcome.to_cleared());
                }
                NodeCall::Ok(Response::ClearedEmpty { .. }) => {}
                NodeCall::Ok(Response::Quarantined { bidders, error, .. }) => {
                    shard_quarantines.push((region, bidders, error.to_error()));
                }
                NodeCall::Ok(other) => {
                    return Err(ClusterError::Protocol {
                        node,
                        message: format!("unexpected response to Clear: {other:?}"),
                    });
                }
                NodeCall::Down => down.push(node),
            }
        }

        // A partitioned node quarantines the whole round: discard every
        // outcome, settle nothing. The healthy regions already cleared —
        // which is exactly what keeps their engines aligned for the
        // rounds after the partition heals.
        if !down.is_empty() {
            for &node in &down {
                let node_regions: Vec<u32> = regions
                    .iter()
                    .copied()
                    .filter(|&region| {
                        self.topology.node_of_region(region, self.config.nodes) == node
                    })
                    .collect();
                let post_mortem = serde_json::to_string(&PartitionPostMortem {
                    round,
                    cause: "partition",
                    node,
                    unreached_regions: node_regions,
                    discarded_regions: phase1.keys().copied().collect(),
                    accepted_bids: routed.accepted() as u64,
                    rejected_bids: rejected as u64,
                    straddlers: routed.straddlers.len() as u64,
                })
                .expect("post-mortem serializes");
                self.outcome.quarantines.push(ClusterQuarantine {
                    round,
                    cause: QuarantineCause::Partition { node },
                    post_mortem,
                });
            }
            self.replicate(&promoted);
            return Ok(RoundReport {
                round,
                cleared_shards: Vec::new(),
                quarantined: true,
                rejected,
                promoted,
            });
        }

        for (shard, bidders, error) in shard_quarantines {
            let post_mortem = shard_post_mortem(round, shard, bidders, &error);
            self.outcome.quarantines.push(ClusterQuarantine {
                round,
                cause: QuarantineCause::Shard {
                    shard,
                    bidders,
                    error,
                },
                post_mortem,
            });
        }

        // Phase 2: the straddler clear against residual requirements,
        // coordinator-local and pure.
        let covered = covered_contributions(&routed.regional, &phase1);
        let straddler_shard = self.topology.straddler_shard();
        let mut results: BTreeMap<u32, ClearedRound> = phase1;
        if let Some(straddler) =
            straddler_round(&self.topology, round, &routed.straddlers, &covered)
        {
            let config = self.config.params.engine_config(straddler_shard);
            let bidders = straddler.profile.user_count() as u64;
            match clear_round(&straddler, &config) {
                Ok(cleared) => {
                    results.insert(straddler_shard, cleared);
                }
                Err(error) => {
                    let post_mortem = shard_post_mortem(round, straddler_shard, bidders, &error);
                    self.outcome.quarantines.push(ClusterQuarantine {
                        round,
                        cause: QuarantineCause::Shard {
                            shard: straddler_shard,
                            bidders,
                            error,
                        },
                        post_mortem,
                    });
                }
            }
        }

        // Settle ascending (round, shard) on the authoritative ledger.
        // Economics are normalized to the default so wire-carried and
        // locally-cleared outcomes compare bit for bit.
        let mut cleared_shards = Vec::new();
        for (shard, mut cleared) in results {
            cleared.economics = RoundEconomics::default();
            let settlement = self.outcome.ledger.settle(&cleared);
            cleared_shards.push(shard);
            self.outcome.results.insert((round, shard), cleared);
            self.outcome.settlements.insert((round, shard), settlement);
        }

        if self.config.replicate {
            self.replicate(&promoted);
        }
        Ok(RoundReport {
            round,
            cleared_shards,
            quarantined: false,
            rejected,
            promoted,
        })
    }

    /// Calls the node's active replica; on an unreachable primary,
    /// promotes the follower and retries there.
    fn call_with_failover(
        &mut self,
        node: u32,
        request: &Request,
        promoted: &mut Vec<u32>,
    ) -> Result<NodeCall, ClusterError> {
        let role = *self.active.get(&node).unwrap_or(&Role::Primary);
        let endpoint = Endpoint { node, role };
        match self.transport.call(endpoint, request) {
            Ok(response) => Ok(NodeCall::Ok(response)),
            Err(TransportError::Protocol(message)) => Err(ClusterError::Protocol { node, message }),
            Err(TransportError::Unreachable(_)) if role == Role::Primary => {
                let follower = Endpoint {
                    node,
                    role: Role::Follower,
                };
                match self.transport.call(follower, &Request::Promote) {
                    Ok(Response::Promoted) => {
                        self.active.insert(node, Role::Follower);
                        if !promoted.contains(&node) {
                            promoted.push(node);
                        }
                        match self.transport.call(follower, request) {
                            Ok(response) => Ok(NodeCall::Ok(response)),
                            Err(TransportError::Protocol(message)) => {
                                Err(ClusterError::Protocol { node, message })
                            }
                            Err(TransportError::Unreachable(_)) => Ok(NodeCall::Down),
                        }
                    }
                    _ => Ok(NodeCall::Down),
                }
            }
            Err(TransportError::Unreachable(_)) => Ok(NodeCall::Down),
        }
    }

    /// Replicates each primary's new settlements to its follower. Nodes
    /// already failed over (or promoted this round) have no standby left
    /// and are skipped; replication is best-effort — a missed delta only
    /// means the follower restores from an older watermark and re-clears
    /// the gap, bit-identically, on promotion.
    fn replicate(&mut self, promoted: &[u32]) {
        let regions: Vec<u32> = self.topology.active_regions().collect();
        for region in regions {
            let node = self.topology.node_of_region(region, self.config.nodes);
            if self.active.get(&node) != Some(&Role::Primary) || promoted.contains(&node) {
                continue;
            }
            let since = self
                .watermarks
                .get(&(node, region))
                .copied()
                .unwrap_or(None);
            let primary = Endpoint {
                node,
                role: Role::Primary,
            };
            let pulled = self
                .transport
                .call(primary, &Request::PullDelta { region, since });
            let Ok(Response::Delta(delta)) = pulled else {
                continue;
            };
            if delta.settlements.is_empty() {
                continue;
            }
            let new_watermark = delta
                .settlements
                .iter()
                .map(|settlement| settlement.round)
                .max();
            let follower = Endpoint {
                node,
                role: Role::Follower,
            };
            let applied = self
                .transport
                .call(follower, &Request::ApplyDelta { region, delta });
            if matches!(applied, Ok(Response::Applied)) {
                if let Some(high) = new_watermark {
                    let entry = self.watermarks.entry((node, region)).or_insert(None);
                    *entry = Some(entry.map_or(high, |w| w.max(high)));
                }
            }
        }
    }

    /// Pulls each region shard's trace ring from its active replica.
    /// Unreachable shards are skipped. Feed the result to
    /// `mcs_obs::merge_shard_traces` for one coherent, renumbered
    /// timeline.
    pub fn shard_traces(&mut self) -> Vec<(u32, Vec<TraceEvent>)> {
        let regions: Vec<u32> = self.topology.active_regions().collect();
        let mut traces = Vec::new();
        for region in regions {
            let node = self.topology.node_of_region(region, self.config.nodes);
            let role = *self.active.get(&node).unwrap_or(&Role::Primary);
            let endpoint = Endpoint { node, role };
            if let Ok(Response::Trace(events)) = self
                .transport
                .call(endpoint, &Request::TraceSnapshot { region })
            {
                traces.push((region, events));
            }
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterParams;
    use crate::topology::TaskSite;
    use mcs_core::types::{Task, TaskId};
    use mcs_mobility::grid::{Cell, CityGrid};

    fn topology() -> Topology {
        let grid = CityGrid::new(4, 2, 1.0);
        let sites = vec![
            TaskSite {
                task: Task::with_requirement(TaskId::new(0), 0.8).unwrap(),
                cell: Cell { x: 0, y: 0 },
            },
            TaskSite {
                task: Task::with_requirement(TaskId::new(1), 0.7).unwrap(),
                cell: Cell { x: 3, y: 0 },
            },
        ];
        Topology::bands(grid, 2, sites).unwrap()
    }

    fn bid(user: u32, cost: f64, tasks: &[(u32, f64)]) -> Bid {
        Bid {
            user,
            cost,
            tasks: tasks.to_vec(),
        }
    }

    fn round_bids() -> Vec<Bid> {
        vec![
            bid(0, 2.0, &[(0, 0.6)]),
            bid(1, 1.5, &[(0, 0.7)]),
            bid(2, 1.8, &[(1, 0.6)]),
            bid(3, 2.2, &[(1, 0.5)]),
            bid(4, 3.0, &[(0, 0.4), (1, 0.4)]), // straddler
        ]
    }

    #[test]
    fn one_node_and_two_node_runs_are_bitwise_identical() {
        let params = ClusterParams::default().with_seed(11);
        let mut one = Cluster::loopback(topology(), ClusterConfig::new(1).with_params(params));
        let mut two = Cluster::loopback(topology(), ClusterConfig::new(2).with_params(params));
        for _ in 0..3 {
            let a = one.run_round(&round_bids()).unwrap();
            let b = two.run_round(&round_bids()).unwrap();
            assert_eq!(a.cleared_shards, b.cleared_shards);
        }
        assert_eq!(one.outcome().results, two.outcome().results);
        assert_eq!(one.outcome().settlements, two.outcome().settlements);
        assert_eq!(
            one.outcome().ledger.balances(),
            two.outcome().ledger.balances()
        );
        assert_eq!(one.fingerprint(), two.fingerprint());
    }

    #[test]
    fn straddlers_clear_in_phase_two_against_residuals() {
        let params = ClusterParams::default().with_seed(5);
        let mut cluster = Cluster::loopback(topology(), ClusterConfig::new(2).with_params(params));
        // Thin regional coverage so the straddler is needed.
        let bids = vec![
            bid(0, 1.0, &[(0, 0.5)]),
            bid(1, 1.0, &[(1, 0.5)]),
            bid(2, 1.0, &[(0, 0.9), (1, 0.9)]),
        ];
        let report = cluster.run_round(&bids).unwrap();
        let straddler_shard = cluster.topology().straddler_shard();
        assert!(
            report.cleared_shards.contains(&straddler_shard),
            "straddler shard should clear: {report:?}"
        );
        let cleared = &cluster.outcome().results[&(0, straddler_shard)];
        let winners: Vec<usize> = cleared.allocation.winners().map(|w| w.index()).collect();
        assert_eq!(winners, vec![2]);
    }

    #[test]
    fn infeasible_sub_rounds_quarantine_only_their_shard() {
        let params = ClusterParams::default().with_seed(7);
        let mut cluster = Cluster::loopback(topology(), ClusterConfig::new(2).with_params(params));
        // Region 0 cannot cover task 0 (requirement 0.8); region 1 can.
        let bids = vec![bid(0, 1.0, &[(0, 0.1)]), bid(1, 1.0, &[(1, 0.9)])];
        let report = cluster.run_round(&bids).unwrap();
        assert!(!report.quarantined);
        assert_eq!(report.cleared_shards, vec![1]);
        assert_eq!(cluster.outcome().quarantines.len(), 1);
        let quarantine = &cluster.outcome().quarantines[0];
        assert!(matches!(
            quarantine.cause,
            QuarantineCause::Shard {
                shard: 0,
                error: RoundError::Infeasible { .. },
                ..
            }
        ));
        assert!(quarantine.post_mortem.contains("\"shard\":0"));
    }

    #[test]
    fn rejected_bids_are_counted_not_cleared() {
        let mut cluster = Cluster::loopback(topology(), ClusterConfig::new(1));
        let bids = vec![
            bid(0, 1.5, &[(0, 0.85)]),
            bid(0, 1.0, &[(1, 0.9)]), // duplicate user
            bid(1, -1.0, &[(1, 0.9)]),
        ];
        let report = cluster.run_round(&bids).unwrap();
        assert_eq!(report.rejected, 2);
    }
}
