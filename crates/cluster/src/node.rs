//! A cluster node: hosts one shard [`Engine`] per region in its slice,
//! serves the wire protocol, and keeps an idempotency cache so duplicate
//! deliveries can never double-clear a round.
//!
//! A node is constructed in one of two roles. A *primary* starts from
//! the empty checkpoint and clears from round zero. A *follower* holds
//! only standby [`EngineCheckpoint`]s, fed by `ApplyDelta`; engines are
//! materialized lazily — [`Engine::restore`] on the first `Clear` after
//! promotion — which is exactly the failover path the chaos tests pin.
//! Primaries build their engines through the very same lazy-restore
//! path (from the empty checkpoint), so failover exercises no special
//! code.

use std::collections::BTreeMap;
use std::sync::Arc;

use mcs_platform::batch::RoundId;
use mcs_platform::engine::{Engine, EngineCheckpoint};
use mcs_platform::fault::NoFaults;
use mcs_platform::ingest::Bid;

use crate::config::ClusterParams;
use crate::topology::Topology;
use crate::wire::{Request, Response, WireDelta, WireOutcome, WireRoundError};

/// One region shard hosted by a node.
#[derive(Debug)]
struct Shard {
    /// The region's published tasks (ascending id).
    tasks: Vec<mcs_core::types::Task>,
    /// Standby state: the checkpoint the engine restores from. Kept in
    /// sync by `ApplyDelta` while the shard is a follower.
    checkpoint: EngineCheckpoint,
    /// The live engine, materialized on first `Clear`.
    engine: Option<Engine>,
    /// Idempotency cache: round id → the response already served.
    cleared: BTreeMap<u64, Response>,
}

/// A node server: the request handler behind every transport.
#[derive(Debug)]
pub struct NodeServer {
    node: u32,
    params: ClusterParams,
    primary: bool,
    shards: BTreeMap<u32, Shard>,
}

impl NodeServer {
    /// Builds the server for node `node` of an `nodes`-node deployment:
    /// one shard per active region placed on this node.
    pub fn new(
        topology: &Topology,
        params: ClusterParams,
        nodes: u32,
        node: u32,
        primary: bool,
    ) -> Self {
        let shards = topology
            .active_regions()
            .filter(|&region| topology.node_of_region(region, nodes) == node)
            .map(|region| {
                (
                    region,
                    Shard {
                        tasks: topology.region_tasks(region).to_vec(),
                        checkpoint: EngineCheckpoint::empty(),
                        engine: None,
                        cleared: BTreeMap::new(),
                    },
                )
            })
            .collect();
        NodeServer {
            node,
            params,
            primary,
            shards,
        }
    }

    /// The node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Whether the node currently serves as primary.
    pub fn is_primary(&self) -> bool {
        self.primary
    }

    /// The regions this node hosts.
    pub fn regions(&self) -> impl Iterator<Item = u32> + '_ {
        self.shards.keys().copied()
    }

    /// Serves one request. Never panics on protocol-level misuse — an
    /// unknown region is a typed [`Response::Error`].
    pub fn handle(&mut self, request: &Request) -> Response {
        match request {
            Request::Ping => Response::Pong {
                node: self.node,
                primary: self.primary,
            },
            Request::Clear {
                region,
                round,
                bids,
            } => self.clear(*region, *round, bids),
            Request::PullDelta { region, since } => self.pull_delta(*region, *since),
            Request::ApplyDelta { region, delta } => self.apply_delta(*region, delta),
            Request::Promote => {
                self.primary = true;
                Response::Promoted
            }
            Request::TraceSnapshot { region } => match self.shards.get(region) {
                Some(shard) => Response::Trace(
                    shard
                        .engine
                        .as_ref()
                        .map(Engine::trace_events)
                        .unwrap_or_default(),
                ),
                None => unknown_region(*region),
            },
        }
    }

    fn clear(&mut self, region: u32, round: u64, bids: &[Bid]) -> Response {
        let params = self.params;
        let Some(shard) = self.shards.get_mut(&region) else {
            return unknown_region(region);
        };
        // Duplicate delivery: serve the cached response, touch nothing.
        if let Some(cached) = shard.cleared.get(&round) {
            return cached.clone();
        }
        let engine = shard.engine.get_or_insert_with(|| {
            Engine::restore(
                params.engine_config(region),
                shard.tasks.clone(),
                shard.checkpoint.clone(),
                Arc::new(NoFaults),
            )
        });
        engine.skip_to_round(round);
        let response = if bids.is_empty() {
            // An empty sub-round clears nothing and consumes nothing —
            // identically in every deployment.
            Response::ClearedEmpty { region, round }
        } else {
            for bid in bids {
                // Routing already validated the bid; the engine's own
                // validation is a no-op re-check.
                let _ = engine.submit(bid);
            }
            engine.flush();
            engine.drain();
            if let Some(cleared) = engine.results().get(&RoundId(round)) {
                Response::Cleared(WireOutcome::from_cleared(region, cleared))
            } else if let Some(quarantined) = engine
                .quarantine()
                .iter()
                .find(|quarantined| quarantined.id == RoundId(round))
            {
                Response::Quarantined {
                    region,
                    round,
                    bidders: quarantined.bidders as u64,
                    error: WireRoundError::from_error(&quarantined.error),
                }
            } else {
                Response::Error {
                    message: format!("round {round} neither cleared nor quarantined"),
                }
            }
        };
        shard.cleared.insert(round, response.clone());
        response
    }

    fn pull_delta(&mut self, region: u32, since: Option<u64>) -> Response {
        let Some(shard) = self.shards.get(&region) else {
            return unknown_region(region);
        };
        let delta = match &shard.engine {
            Some(engine) => engine.checkpoint_delta(since.map(RoundId)),
            // No engine yet: nothing cleared beyond the standby
            // checkpoint.
            None => mcs_platform::engine::CheckpointDelta {
                settlements: Vec::new(),
                next_round_id: shard.checkpoint.next_round_id,
            },
        };
        Response::Delta(WireDelta::from_delta(&delta))
    }

    fn apply_delta(&mut self, region: u32, delta: &WireDelta) -> Response {
        let Some(shard) = self.shards.get_mut(&region) else {
            return unknown_region(region);
        };
        if shard.engine.is_some() {
            // A live engine is already past its checkpoint; folding a
            // delta under it would fork history.
            return Response::Error {
                message: format!("region {region} already has a live engine"),
            };
        }
        shard.checkpoint.apply_delta(&delta.to_delta());
        Response::Applied
    }
}

fn unknown_region(region: u32) -> Response {
    Response::Error {
        message: format!("node does not host region {region}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TaskSite;
    use mcs_core::types::{Task, TaskId};
    use mcs_mobility::grid::{Cell, CityGrid};

    fn topology() -> Topology {
        let grid = CityGrid::new(4, 2, 1.0);
        let sites = vec![
            TaskSite {
                task: Task::with_requirement(TaskId::new(0), 0.8).unwrap(),
                cell: Cell { x: 0, y: 0 },
            },
            TaskSite {
                task: Task::with_requirement(TaskId::new(1), 0.7).unwrap(),
                cell: Cell { x: 3, y: 0 },
            },
        ];
        Topology::bands(grid, 2, sites).unwrap()
    }

    fn feasible_bids() -> Vec<Bid> {
        vec![
            Bid {
                user: 0,
                cost: 2.0,
                tasks: vec![(0, 0.6)],
            },
            Bid {
                user: 1,
                cost: 2.5,
                tasks: vec![(0, 0.7)],
            },
            Bid {
                user: 2,
                cost: 1.5,
                tasks: vec![(0, 0.6)],
            },
        ]
    }

    #[test]
    fn one_node_hosts_every_region_and_clears() {
        let topology = topology();
        let mut server = NodeServer::new(&topology, ClusterParams::default(), 1, 0, true);
        assert_eq!(server.regions().collect::<Vec<_>>(), vec![0, 1]);
        let response = server.handle(&Request::Clear {
            region: 0,
            round: 0,
            bids: feasible_bids(),
        });
        match response {
            Response::Cleared(outcome) => {
                assert_eq!(outcome.round, 0);
                assert!(!outcome.winners.is_empty());
            }
            other => panic!("expected Cleared, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_delivery_returns_the_cached_response() {
        let topology = topology();
        let mut server = NodeServer::new(&topology, ClusterParams::default(), 1, 0, true);
        let request = Request::Clear {
            region: 0,
            round: 0,
            bids: feasible_bids(),
        };
        let first = server.handle(&request);
        let second = server.handle(&request);
        assert_eq!(first, second);
        // The engine really cleared only once: round 1 is next.
        let delta = server.handle(&Request::PullDelta {
            region: 0,
            since: None,
        });
        match delta {
            Response::Delta(delta) => {
                assert_eq!(delta.settlements.len(), 1);
                assert_eq!(delta.next_round_id, 1);
            }
            other => panic!("expected Delta, got {other:?}"),
        }
    }

    #[test]
    fn follower_rebuilds_from_replicated_deltas_and_clears_identically() {
        let topology = topology();
        let params = ClusterParams::default();
        let mut primary = NodeServer::new(&topology, params, 1, 0, true);
        let mut follower = NodeServer::new(&topology, params, 1, 0, false);

        // Primary clears rounds 0 and 1 on region 0.
        for round in 0..2u64 {
            let response = primary.handle(&Request::Clear {
                region: 0,
                round,
                bids: feasible_bids(),
            });
            assert!(matches!(response, Response::Cleared(_)), "{response:?}");
        }
        // Replicate the full delta to the follower.
        let delta = match primary.handle(&Request::PullDelta {
            region: 0,
            since: None,
        }) {
            Response::Delta(delta) => delta,
            other => panic!("expected Delta, got {other:?}"),
        };
        assert_eq!(
            follower.handle(&Request::ApplyDelta {
                region: 0,
                delta: delta.clone(),
            }),
            Response::Applied
        );
        assert_eq!(follower.handle(&Request::Promote), Response::Promoted);
        assert!(follower.is_primary());

        // Round 2 clears bitwise-identically on both.
        let request = Request::Clear {
            region: 0,
            round: 2,
            bids: feasible_bids(),
        };
        assert_eq!(primary.handle(&request), follower.handle(&request));
    }

    #[test]
    fn empty_sub_rounds_consume_nothing() {
        let topology = topology();
        let mut server = NodeServer::new(&topology, ClusterParams::default(), 1, 0, true);
        assert_eq!(
            server.handle(&Request::Clear {
                region: 1,
                round: 0,
                bids: vec![],
            }),
            Response::ClearedEmpty {
                region: 1,
                round: 0
            }
        );
        // The next round still pins to its cluster id.
        let response = server.handle(&Request::Clear {
            region: 1,
            round: 3,
            bids: vec![Bid {
                user: 9,
                cost: 1.0,
                tasks: vec![(1, 0.8)],
            }],
        });
        match response {
            Response::Cleared(outcome) => assert_eq!(outcome.round, 3),
            other => panic!("expected Cleared, got {other:?}"),
        }
    }

    #[test]
    fn unknown_regions_are_typed_errors() {
        let topology = topology();
        let mut server = NodeServer::new(&topology, ClusterParams::default(), 2, 0, true);
        // Node 0 of 2 hosts only region 0.
        assert_eq!(server.regions().collect::<Vec<_>>(), vec![0]);
        assert!(matches!(
            server.handle(&Request::Clear {
                region: 1,
                round: 0,
                bids: vec![]
            }),
            Response::Error { .. }
        ));
    }
}
