//! # mcs-cluster — geo-sharded multi-node clearing
//!
//! Scales the crowdsensing auction horizontally without surrendering a
//! single bit of determinism. The city grid is split into task regions;
//! each region is a *shard* cleared by its own [`Engine`] seed
//! (`shard_seed(cluster_seed, region)`), and a deployment of N nodes is
//! nothing but a contiguous placement of shards onto nodes — placement
//! never enters any seed, any round id, or any float accumulation
//! order. Consequence: a 1-node cluster and an 8-node cluster produce
//! **bitwise-identical** allocations, quotes, settlements, and
//! fingerprints, and the equivalence suite proves it per commit.
//!
//! ## The two-phase clear
//!
//! Users whose task sets span regions ("straddlers") cannot be cleared
//! by any single shard. Each cluster round therefore runs in two
//! phases:
//!
//! 1. every region clears its single-region bids as an ordinary
//!    sub-round under the region shard's seed;
//! 2. the coordinator republishes every task at its *residual*
//!    requirement (what phase-1 winners left uncovered) and clears the
//!    straddlers against it in one pure, coordinator-local round under
//!    the dedicated straddler-shard seed.
//!
//! Both phases are pure functions of `(topology, round id, routed
//! bids)`, so the in-process mirror oracle ([`mirror::ground_truth`])
//! reproduces any deployment's outcome without nodes or transports.
//!
//! ## Replication and faults
//!
//! Every node has a standby follower fed [`CheckpointDelta`]s after
//! each round. Node loss promotes the follower, which lazily restores
//! engines from its checkpoint and re-clears — bit-identically, because
//! clearing never depends on anything the checkpoint could lag on. A
//! full partition (both replicas down) quarantines the whole round with
//! a typed cause and a JSON post-mortem; duplicate deliveries are
//! absorbed by a per-shard idempotency cache. The chaos suite pins all
//! three behaviors against recorded fingerprints.
//!
//! [`Engine`]: mcs_platform::engine::Engine
//! [`CheckpointDelta`]: mcs_platform::engine::CheckpointDelta

pub mod clearing;
pub mod config;
pub mod coordinator;
pub mod mirror;
pub mod node;
pub mod route;
pub mod topology;
pub mod transport;
pub mod wire;

pub use config::{ClusterConfig, ClusterParams};
pub use coordinator::{
    Cluster, ClusterError, ClusterOutcome, ClusterQuarantine, QuarantineCause, RoundReport,
};
pub use mirror::ground_truth;
pub use node::NodeServer;
pub use route::{route_bids, RoutedRound};
pub use topology::{shard_seed, TaskSite, Topology, TopologyError};
pub use transport::{
    serve_node, Endpoint, LoopbackTransport, NodeListener, NodeTransport, Role, TcpTransport,
    TransportError,
};
pub use wire::{Request, Response, WireError};
