//! Bid routing: every bid lands in exactly one shard, decided purely by
//! the topology — never by node placement.
//!
//! A bid whose task set lies inside one region routes to that region's
//! shard. A bid spanning two or more regions is a *straddler* and routes
//! to the virtual straddler shard, cleared by the coordinator in phase 2
//! against residual requirements (see [`crate::clearing`]). Validation
//! happens here, once, cluster-wide — the same checks `Engine::submit`
//! would apply, plus cluster-wide user dedup — so a malformed or
//! duplicate bid is rejected identically no matter how many nodes the
//! cluster has.

use std::collections::{BTreeMap, BTreeSet};

use mcs_platform::ingest::{Bid, IngestError};

use crate::topology::Topology;

/// One round's bids, split by destination shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutedRound {
    /// Per-region bids (task sets fully inside the region), in
    /// submission order.
    pub regional: BTreeMap<u32, Vec<Bid>>,
    /// Cross-region bids, in submission order; cleared in phase 2.
    pub straddlers: Vec<Bid>,
    /// Rejected bids as `(submission index, reason)`.
    pub rejected: Vec<(usize, IngestError)>,
}

impl RoutedRound {
    /// Bids accepted into some shard.
    pub fn accepted(&self) -> usize {
        self.regional.values().map(Vec::len).sum::<usize>() + self.straddlers.len()
    }
}

/// Validates `bids` in submission order and routes each to its shard.
///
/// Validation mirrors the engine's ingest checks exactly (cost, PoS
/// range, empty/duplicate task sets, unknown tasks) with user dedup
/// lifted to cluster scope, so no routed bid can be rejected downstream
/// — a property the mirror oracle relies on.
pub fn route_bids(topology: &Topology, bids: &[Bid]) -> RoutedRound {
    let mut routed = RoutedRound::default();
    let mut seen = BTreeSet::new();
    for (index, bid) in bids.iter().enumerate() {
        match route_one(topology, bid, &mut seen) {
            Ok(Some(region)) => routed.regional.entry(region).or_default().push(bid.clone()),
            Ok(None) => routed.straddlers.push(bid.clone()),
            Err(error) => routed.rejected.push((index, error)),
        }
    }
    routed
}

/// Routes one bid: `Ok(Some(region))` for a single-region bid,
/// `Ok(None)` for a straddler.
fn route_one(
    topology: &Topology,
    bid: &Bid,
    seen: &mut BTreeSet<u32>,
) -> Result<Option<u32>, IngestError> {
    if seen.contains(&bid.user) {
        return Err(IngestError::DuplicateUser { user: bid.user });
    }
    if bid.tasks.is_empty() {
        return Err(IngestError::EmptyTaskSet);
    }
    if !(bid.cost.is_finite() && bid.cost >= 0.0) {
        return Err(IngestError::InvalidCost { value: bid.cost });
    }
    let mut declared = BTreeSet::new();
    let mut regions = BTreeSet::new();
    for &(task, pos) in &bid.tasks {
        let Some(region) = topology.region_of_task(task) else {
            return Err(IngestError::UnknownTask { task });
        };
        if !declared.insert(task) {
            return Err(IngestError::DuplicateTask { task });
        }
        if !(pos.is_finite() && (0.0..1.0).contains(&pos)) {
            return Err(IngestError::InvalidPos { task, value: pos });
        }
        regions.insert(region);
    }
    seen.insert(bid.user);
    if regions.len() == 1 {
        Ok(Some(regions.into_iter().next().expect("one region")))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TaskSite;
    use mcs_core::types::{Task, TaskId};
    use mcs_mobility::grid::{Cell, CityGrid};

    fn topology() -> Topology {
        let grid = CityGrid::new(4, 2, 1.0);
        let sites = vec![
            TaskSite {
                task: Task::with_requirement(TaskId::new(0), 0.8).unwrap(),
                cell: Cell { x: 0, y: 0 },
            },
            TaskSite {
                task: Task::with_requirement(TaskId::new(1), 0.7).unwrap(),
                cell: Cell { x: 1, y: 1 },
            },
            TaskSite {
                task: Task::with_requirement(TaskId::new(2), 0.6).unwrap(),
                cell: Cell { x: 3, y: 0 },
            },
        ];
        Topology::bands(grid, 2, sites).unwrap()
    }

    fn bid(user: u32, tasks: &[(u32, f64)]) -> Bid {
        Bid {
            user,
            cost: 1.0,
            tasks: tasks.to_vec(),
        }
    }

    #[test]
    fn bids_route_by_task_region() {
        let topology = topology();
        let bids = vec![
            bid(0, &[(0, 0.5), (1, 0.5)]), // both tasks in region 0
            bid(1, &[(2, 0.5)]),           // region 1
            bid(2, &[(0, 0.5), (2, 0.5)]), // straddler
        ];
        let routed = route_bids(&topology, &bids);
        assert_eq!(routed.regional[&0].len(), 1);
        assert_eq!(routed.regional[&1].len(), 1);
        assert_eq!(routed.straddlers.len(), 1);
        assert_eq!(routed.straddlers[0].user, 2);
        assert!(routed.rejected.is_empty());
        assert_eq!(routed.accepted(), 3);
    }

    #[test]
    fn malformed_bids_are_rejected_with_ingest_errors() {
        let topology = topology();
        let bids = vec![
            bid(0, &[(0, 0.5)]),
            bid(0, &[(1, 0.5)]), // duplicate user, different region
            bid(1, &[]),
            Bid {
                user: 2,
                cost: -1.0,
                tasks: vec![(0, 0.5)],
            },
            bid(3, &[(9, 0.5)]),
            bid(4, &[(0, 0.5), (0, 0.6)]),
            bid(5, &[(0, 1.5)]),
        ];
        let routed = route_bids(&topology, &bids);
        assert_eq!(routed.accepted(), 1);
        let reasons: Vec<(usize, IngestError)> = routed.rejected;
        assert_eq!(
            reasons,
            vec![
                (1, IngestError::DuplicateUser { user: 0 }),
                (2, IngestError::EmptyTaskSet),
                (3, IngestError::InvalidCost { value: -1.0 }),
                (4, IngestError::UnknownTask { task: 9 }),
                (5, IngestError::DuplicateTask { task: 0 }),
                (
                    6,
                    IngestError::InvalidPos {
                        task: 0,
                        value: 1.5
                    }
                ),
            ]
        );
    }
}
