//! The cluster wire protocol: a hand-rolled, length-prefixed binary
//! codec for coordinator ↔ node traffic.
//!
//! ## Frame layout
//!
//! ```text
//! [ magic "MCSCLST1" | payload len u32 LE | payload | FNV-1a(payload) u64 LE ]
//! ```
//!
//! Every float crosses the wire as its raw `u64` bit pattern
//! (`f64::to_bits`), never as decimal text — the cluster's headline
//! guarantee is *bitwise* outcome equality, and a codec that formats
//! floats would forfeit it before a single bid clears. Integers are
//! little-endian; vectors are `u32` length-prefixed; the trailing
//! checksum makes every single-byte corruption a typed decode error
//! instead of a garbage outcome (property-tested below).

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

use mcs_core::mechanism::Allocation;
use mcs_core::types::UserId;
use mcs_obs::TraceEvent;
use mcs_platform::batch::RoundId;
use mcs_platform::degrade::RoundError;
use mcs_platform::engine::CheckpointDelta;
use mcs_platform::ingest::Bid;
use mcs_platform::settle::{RewardQuote, RoundSettlement};
use mcs_platform::shard::ClearedRound;

/// Frame magic: protocol name + version.
pub const MAGIC: [u8; 8] = *b"MCSCLST1";

/// Hard cap on payload size (64 MiB): a corrupted length prefix must
/// not become an absurd allocation.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// FNV-1a over a byte slice — the same digest family the scenario
/// corpus pins fingerprints with, reused here as the frame checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ends before the structure it promises.
    Truncated,
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The advertised payload length.
        len: u64,
    },
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// Bytes remain after the last field of the payload.
    TrailingBytes,
    /// An unknown message or variant tag.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// A length-prefixed string is not valid UTF-8.
    BadString,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { len } => write!(f, "payload length {len} exceeds cap"),
            WireError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload"),
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Primitive cursor
// ---------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.at + n > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A vector length, sanity-capped so a corrupted count cannot ask
    /// for more elements than the remaining bytes could possibly hold.
    fn len(&mut self, min_element: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_element.max(1)) > self.bytes.len() - self.at {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.at != self.bytes.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, len: usize) {
    put_u32(out, u32::try_from(len).expect("vector fits a u32 length"));
}

fn put_string(out: &mut Vec<u8>, value: &str) {
    put_len(out, value.len());
    out.extend_from_slice(value.as_bytes());
}

// ---------------------------------------------------------------------
// Wire value types
// ---------------------------------------------------------------------

/// A cleared sub-round in wire form: the outcome fields settlement
/// needs, floats as raw bits. Economics are *not* shipped — the
/// coordinator normalizes every outcome to default economics, so both
/// sides of the equivalence proof compare the same shape.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutcome {
    /// The region shard that cleared.
    pub region: u32,
    /// The cluster round id.
    pub round: u64,
    /// Winning user ids, ascending.
    pub winners: Vec<u32>,
    /// Per winner `(user, success bits, failure bits)`, ascending user.
    pub quotes: Vec<(u32, u64, u64)>,
    /// Per winner `(user, completed)`, ascending user.
    pub reports: Vec<(u32, u8)>,
    /// `social_cost.to_bits()`.
    pub social_cost_bits: u64,
}

impl WireOutcome {
    /// Captures a [`ClearedRound`] for the wire.
    pub fn from_cleared(region: u32, cleared: &ClearedRound) -> Self {
        WireOutcome {
            region,
            round: cleared.id.0,
            winners: cleared
                .allocation
                .winners()
                .map(|w| w.index() as u32)
                .collect(),
            quotes: cleared
                .quotes
                .iter()
                .map(|(user, quote)| {
                    (
                        user.index() as u32,
                        quote.success.to_bits(),
                        quote.failure.to_bits(),
                    )
                })
                .collect(),
            reports: cleared
                .reports
                .iter()
                .map(|(user, &completed)| (user.index() as u32, completed as u8))
                .collect(),
            social_cost_bits: cleared.social_cost.to_bits(),
        }
    }

    /// Reconstructs the [`ClearedRound`] (default economics).
    pub fn to_cleared(&self) -> ClearedRound {
        ClearedRound {
            id: RoundId(self.round),
            allocation: Allocation::from_winners(self.winners.iter().map(|&w| UserId::new(w))),
            quotes: self
                .quotes
                .iter()
                .map(|&(user, success, failure)| {
                    (
                        UserId::new(user),
                        RewardQuote {
                            success: f64::from_bits(success),
                            failure: f64::from_bits(failure),
                        },
                    )
                })
                .collect(),
            reports: self
                .reports
                .iter()
                .map(|&(user, completed)| (UserId::new(user), completed != 0))
                .collect(),
            social_cost: f64::from_bits(self.social_cost_bits),
            economics: Default::default(),
        }
    }
}

/// A typed clearing failure in wire form, mirroring
/// [`RoundError`](mcs_platform::RoundError) variant by variant.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRoundError {
    /// No bidder set can cover this task's requirement.
    Infeasible {
        /// The uncoverable task.
        task: u32,
    },
    /// The mechanism itself rejected the round.
    Mechanism {
        /// The mechanism's message.
        message: String,
    },
    /// Clearing panicked.
    Panicked {
        /// The recovered panic message.
        message: String,
    },
    /// The round exceeded its clearing budget.
    DeadlineExceeded {
        /// Per-round budget in bids.
        budget: u64,
        /// Bidders cleared before the cut.
        cleared: u64,
        /// Bidders deferred past it.
        deferred: u64,
    },
}

impl WireRoundError {
    /// Captures a [`RoundError`] for the wire.
    pub fn from_error(error: &RoundError) -> Self {
        match error {
            RoundError::Infeasible { task } => WireRoundError::Infeasible {
                task: task.index() as u32,
            },
            RoundError::Mechanism { message } => WireRoundError::Mechanism {
                message: message.clone(),
            },
            RoundError::Panicked { message } => WireRoundError::Panicked {
                message: message.clone(),
            },
            RoundError::DeadlineExceeded {
                budget,
                cleared,
                deferred,
            } => WireRoundError::DeadlineExceeded {
                budget: *budget as u64,
                cleared: *cleared as u64,
                deferred: *deferred as u64,
            },
        }
    }

    /// Reconstructs the [`RoundError`].
    pub fn to_error(&self) -> RoundError {
        match self {
            WireRoundError::Infeasible { task } => RoundError::Infeasible {
                task: mcs_core::types::TaskId::new(*task),
            },
            WireRoundError::Mechanism { message } => RoundError::Mechanism {
                message: message.clone(),
            },
            WireRoundError::Panicked { message } => RoundError::Panicked {
                message: message.clone(),
            },
            WireRoundError::DeadlineExceeded {
                budget,
                cleared,
                deferred,
            } => RoundError::DeadlineExceeded {
                budget: *budget as usize,
                cleared: *cleared as usize,
                deferred: *deferred as usize,
            },
        }
    }
}

/// One settled round in wire form (floats as bits).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSettlement {
    /// The settled round id.
    pub round: u64,
    /// `(user, payout bits)`, ascending user.
    pub payouts: Vec<(u32, u64)>,
    /// `total.to_bits()`.
    pub total_bits: u64,
    /// `(user, completed)`, ascending user.
    pub outcomes: Vec<(u32, u8)>,
}

impl WireSettlement {
    /// Captures a [`RoundSettlement`] for the wire.
    pub fn from_settlement(settlement: &RoundSettlement) -> Self {
        WireSettlement {
            round: settlement.round.0,
            payouts: settlement
                .payouts
                .iter()
                .map(|(user, payout)| (user.index() as u32, payout.to_bits()))
                .collect(),
            total_bits: settlement.total.to_bits(),
            outcomes: settlement
                .outcomes
                .iter()
                .map(|(user, &completed)| (user.index() as u32, completed as u8))
                .collect(),
        }
    }

    /// Reconstructs the [`RoundSettlement`].
    pub fn to_settlement(&self) -> RoundSettlement {
        RoundSettlement {
            round: RoundId(self.round),
            payouts: self
                .payouts
                .iter()
                .map(|&(user, bits)| (UserId::new(user), f64::from_bits(bits)))
                .collect::<BTreeMap<_, _>>(),
            total: f64::from_bits(self.total_bits),
            outcomes: self
                .outcomes
                .iter()
                .map(|&(user, completed)| (UserId::new(user), completed != 0))
                .collect(),
        }
    }
}

/// A checkpoint delta in wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDelta {
    /// Settlements newer than the requested watermark, ascending round.
    pub settlements: Vec<WireSettlement>,
    /// The primary's round-id high-water mark.
    pub next_round_id: u64,
}

impl WireDelta {
    /// Captures a [`CheckpointDelta`] for the wire.
    pub fn from_delta(delta: &CheckpointDelta) -> Self {
        WireDelta {
            settlements: delta
                .settlements
                .iter()
                .map(WireSettlement::from_settlement)
                .collect(),
            next_round_id: delta.next_round_id,
        }
    }

    /// Reconstructs the [`CheckpointDelta`].
    pub fn to_delta(&self) -> CheckpointDelta {
        CheckpointDelta {
            settlements: self
                .settlements
                .iter()
                .map(WireSettlement::to_settlement)
                .collect(),
            next_round_id: self.next_round_id,
        }
    }
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// A coordinator → node request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Clear one region sub-round. Idempotent per `(region, round)`:
    /// a duplicate delivery returns the cached response.
    Clear {
        /// Target region shard.
        region: u32,
        /// Cluster round id (the engine is pinned to it).
        round: u64,
        /// The routed bids, coordinator submission order.
        bids: Vec<Bid>,
    },
    /// Pull the settlement delta newer than `since` for one region.
    PullDelta {
        /// Target region shard.
        region: u32,
        /// Replication watermark: highest round already replicated
        /// (`u64::MAX` encodes "nothing yet").
        since: Option<u64>,
    },
    /// Fold a delta into a follower's standby checkpoint.
    ApplyDelta {
        /// Target region shard.
        region: u32,
        /// The delta pulled from the primary.
        delta: WireDelta,
    },
    /// Promote a follower to primary (idempotent).
    Promote,
    /// Snapshot one region engine's flight-recorder trace.
    TraceSnapshot {
        /// Target region shard.
        region: u32,
    },
}

/// A node → coordinator response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong {
        /// Responding node id.
        node: u32,
        /// Whether the node currently serves as primary.
        primary: bool,
    },
    /// The sub-round cleared.
    Cleared(WireOutcome),
    /// The sub-round had no bids; nothing cleared, nothing consumed.
    ClearedEmpty {
        /// The region shard.
        region: u32,
        /// The cluster round id.
        round: u64,
    },
    /// The sub-round was quarantined with a typed error.
    Quarantined {
        /// The region shard.
        region: u32,
        /// The cluster round id.
        round: u64,
        /// Bidders in the quarantined round.
        bidders: u64,
        /// Why clearing failed.
        error: WireRoundError,
    },
    /// The requested delta.
    Delta(WireDelta),
    /// The delta was folded into the standby checkpoint.
    Applied,
    /// The node now serves as primary.
    Promoted,
    /// The region engine's trace events.
    Trace(Vec<TraceEvent>),
    /// The node rejected the request.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Payload encode/decode
// ---------------------------------------------------------------------

fn put_bid(out: &mut Vec<u8>, bid: &Bid) {
    put_u32(out, bid.user);
    put_u64(out, bid.cost.to_bits());
    put_len(out, bid.tasks.len());
    for &(task, pos) in &bid.tasks {
        put_u32(out, task);
        put_u64(out, pos.to_bits());
    }
}

fn get_bid(cursor: &mut Cursor<'_>) -> Result<Bid, WireError> {
    let user = cursor.u32()?;
    let cost = f64::from_bits(cursor.u64()?);
    let len = cursor.len(12)?;
    let mut tasks = Vec::with_capacity(len);
    for _ in 0..len {
        let task = cursor.u32()?;
        let pos = f64::from_bits(cursor.u64()?);
        tasks.push((task, pos));
    }
    Ok(Bid { user, cost, tasks })
}

fn put_outcome(out: &mut Vec<u8>, outcome: &WireOutcome) {
    put_u32(out, outcome.region);
    put_u64(out, outcome.round);
    put_len(out, outcome.winners.len());
    for &winner in &outcome.winners {
        put_u32(out, winner);
    }
    put_len(out, outcome.quotes.len());
    for &(user, success, failure) in &outcome.quotes {
        put_u32(out, user);
        put_u64(out, success);
        put_u64(out, failure);
    }
    put_len(out, outcome.reports.len());
    for &(user, completed) in &outcome.reports {
        put_u32(out, user);
        out.push(completed);
    }
    put_u64(out, outcome.social_cost_bits);
}

fn get_outcome(cursor: &mut Cursor<'_>) -> Result<WireOutcome, WireError> {
    let region = cursor.u32()?;
    let round = cursor.u64()?;
    let len = cursor.len(4)?;
    let mut winners = Vec::with_capacity(len);
    for _ in 0..len {
        winners.push(cursor.u32()?);
    }
    let len = cursor.len(20)?;
    let mut quotes = Vec::with_capacity(len);
    for _ in 0..len {
        quotes.push((cursor.u32()?, cursor.u64()?, cursor.u64()?));
    }
    let len = cursor.len(5)?;
    let mut reports = Vec::with_capacity(len);
    for _ in 0..len {
        reports.push((cursor.u32()?, cursor.u8()?));
    }
    let social_cost_bits = cursor.u64()?;
    Ok(WireOutcome {
        region,
        round,
        winners,
        quotes,
        reports,
        social_cost_bits,
    })
}

fn put_round_error(out: &mut Vec<u8>, error: &WireRoundError) {
    match error {
        WireRoundError::Infeasible { task } => {
            out.push(0);
            put_u32(out, *task);
        }
        WireRoundError::Mechanism { message } => {
            out.push(1);
            put_string(out, message);
        }
        WireRoundError::Panicked { message } => {
            out.push(2);
            put_string(out, message);
        }
        WireRoundError::DeadlineExceeded {
            budget,
            cleared,
            deferred,
        } => {
            out.push(3);
            put_u64(out, *budget);
            put_u64(out, *cleared);
            put_u64(out, *deferred);
        }
    }
}

fn get_round_error(cursor: &mut Cursor<'_>) -> Result<WireRoundError, WireError> {
    match cursor.u8()? {
        0 => Ok(WireRoundError::Infeasible {
            task: cursor.u32()?,
        }),
        1 => Ok(WireRoundError::Mechanism {
            message: cursor.string()?,
        }),
        2 => Ok(WireRoundError::Panicked {
            message: cursor.string()?,
        }),
        3 => Ok(WireRoundError::DeadlineExceeded {
            budget: cursor.u64()?,
            cleared: cursor.u64()?,
            deferred: cursor.u64()?,
        }),
        tag => Err(WireError::UnknownTag { tag }),
    }
}

fn put_settlement(out: &mut Vec<u8>, settlement: &WireSettlement) {
    put_u64(out, settlement.round);
    put_len(out, settlement.payouts.len());
    for &(user, bits) in &settlement.payouts {
        put_u32(out, user);
        put_u64(out, bits);
    }
    put_u64(out, settlement.total_bits);
    put_len(out, settlement.outcomes.len());
    for &(user, completed) in &settlement.outcomes {
        put_u32(out, user);
        out.push(completed);
    }
}

fn get_settlement(cursor: &mut Cursor<'_>) -> Result<WireSettlement, WireError> {
    let round = cursor.u64()?;
    let len = cursor.len(12)?;
    let mut payouts = Vec::with_capacity(len);
    for _ in 0..len {
        payouts.push((cursor.u32()?, cursor.u64()?));
    }
    let total_bits = cursor.u64()?;
    let len = cursor.len(5)?;
    let mut outcomes = Vec::with_capacity(len);
    for _ in 0..len {
        outcomes.push((cursor.u32()?, cursor.u8()?));
    }
    Ok(WireSettlement {
        round,
        payouts,
        total_bits,
        outcomes,
    })
}

fn put_delta(out: &mut Vec<u8>, delta: &WireDelta) {
    put_len(out, delta.settlements.len());
    for settlement in &delta.settlements {
        put_settlement(out, settlement);
    }
    put_u64(out, delta.next_round_id);
}

fn get_delta(cursor: &mut Cursor<'_>) -> Result<WireDelta, WireError> {
    let len = cursor.len(16)?;
    let mut settlements = Vec::with_capacity(len);
    for _ in 0..len {
        settlements.push(get_settlement(cursor)?);
    }
    let next_round_id = cursor.u64()?;
    Ok(WireDelta {
        settlements,
        next_round_id,
    })
}

/// Sentinel for "no stage" in the wire stage byte (mirrors the
/// recorder's own packing).
const NO_STAGE: u8 = 0xFF;

fn put_trace_event(out: &mut Vec<u8>, event: &TraceEvent) {
    put_u64(out, event.seq);
    put_u64(out, event.at);
    out.push(event.kind.code() as u8);
    out.push(event.stage.map_or(NO_STAGE, |s| s.index() as u8));
    put_u64(out, event.round);
    put_u64(out, event.a);
    put_u64(out, event.b);
    put_u64(out, event.c);
}

fn get_trace_event(cursor: &mut Cursor<'_>) -> Result<TraceEvent, WireError> {
    let seq = cursor.u64()?;
    let at = cursor.u64()?;
    let kind_code = cursor.u8()?;
    let kind = mcs_obs::EventKind::from_code(kind_code as u64)
        .ok_or(WireError::UnknownTag { tag: kind_code })?;
    let stage_byte = cursor.u8()?;
    let stage = if stage_byte == NO_STAGE {
        None
    } else {
        Some(
            mcs_obs::Stage::from_index(stage_byte as usize)
                .ok_or(WireError::UnknownTag { tag: stage_byte })?,
        )
    };
    Ok(TraceEvent {
        seq,
        at,
        kind,
        stage,
        round: cursor.u64()?,
        a: cursor.u64()?,
        b: cursor.u64()?,
        c: cursor.u64()?,
    })
}

/// Encodes a request payload (no frame).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match request {
        Request::Ping => out.push(0),
        Request::Clear {
            region,
            round,
            bids,
        } => {
            out.push(1);
            put_u32(&mut out, *region);
            put_u64(&mut out, *round);
            put_len(&mut out, bids.len());
            for bid in bids {
                put_bid(&mut out, bid);
            }
        }
        Request::PullDelta { region, since } => {
            out.push(2);
            put_u32(&mut out, *region);
            put_u64(&mut out, since.map_or(u64::MAX, |s| s));
        }
        Request::ApplyDelta { region, delta } => {
            out.push(3);
            put_u32(&mut out, *region);
            put_delta(&mut out, delta);
        }
        Request::Promote => out.push(4),
        Request::TraceSnapshot { region } => {
            out.push(5);
            put_u32(&mut out, *region);
        }
    }
    out
}

/// Decodes a request payload.
///
/// # Errors
///
/// A typed [`WireError`] on any malformed byte.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut cursor = Cursor::new(payload);
    let request = match cursor.u8()? {
        0 => Request::Ping,
        1 => {
            let region = cursor.u32()?;
            let round = cursor.u64()?;
            let len = cursor.len(16)?;
            let mut bids = Vec::with_capacity(len);
            for _ in 0..len {
                bids.push(get_bid(&mut cursor)?);
            }
            Request::Clear {
                region,
                round,
                bids,
            }
        }
        2 => {
            let region = cursor.u32()?;
            let since = match cursor.u64()? {
                u64::MAX => None,
                s => Some(s),
            };
            Request::PullDelta { region, since }
        }
        3 => Request::ApplyDelta {
            region: cursor.u32()?,
            delta: get_delta(&mut cursor)?,
        },
        4 => Request::Promote,
        5 => Request::TraceSnapshot {
            region: cursor.u32()?,
        },
        tag => return Err(WireError::UnknownTag { tag }),
    };
    cursor.finish()?;
    Ok(request)
}

/// Encodes a response payload (no frame).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match response {
        Response::Pong { node, primary } => {
            out.push(0);
            put_u32(&mut out, *node);
            out.push(*primary as u8);
        }
        Response::Cleared(outcome) => {
            out.push(1);
            put_outcome(&mut out, outcome);
        }
        Response::ClearedEmpty { region, round } => {
            out.push(2);
            put_u32(&mut out, *region);
            put_u64(&mut out, *round);
        }
        Response::Quarantined {
            region,
            round,
            bidders,
            error,
        } => {
            out.push(3);
            put_u32(&mut out, *region);
            put_u64(&mut out, *round);
            put_u64(&mut out, *bidders);
            put_round_error(&mut out, error);
        }
        Response::Delta(delta) => {
            out.push(4);
            put_delta(&mut out, delta);
        }
        Response::Applied => out.push(5),
        Response::Promoted => out.push(6),
        Response::Trace(events) => {
            out.push(7);
            put_len(&mut out, events.len());
            for event in events {
                put_trace_event(&mut out, event);
            }
        }
        Response::Error { message } => {
            out.push(8);
            put_string(&mut out, message);
        }
    }
    out
}

/// Decodes a response payload.
///
/// # Errors
///
/// A typed [`WireError`] on any malformed byte.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut cursor = Cursor::new(payload);
    let response = match cursor.u8()? {
        0 => Response::Pong {
            node: cursor.u32()?,
            primary: cursor.u8()? != 0,
        },
        1 => Response::Cleared(get_outcome(&mut cursor)?),
        2 => Response::ClearedEmpty {
            region: cursor.u32()?,
            round: cursor.u64()?,
        },
        3 => Response::Quarantined {
            region: cursor.u32()?,
            round: cursor.u64()?,
            bidders: cursor.u64()?,
            error: get_round_error(&mut cursor)?,
        },
        4 => Response::Delta(get_delta(&mut cursor)?),
        5 => Response::Applied,
        6 => Response::Promoted,
        7 => {
            let len = cursor.len(42)?;
            let mut events = Vec::with_capacity(len);
            for _ in 0..len {
                events.push(get_trace_event(&mut cursor)?);
            }
            Response::Trace(events)
        }
        8 => Response::Error {
            message: cursor.string()?,
        },
        tag => return Err(WireError::UnknownTag { tag }),
    };
    cursor.finish()?;
    Ok(response)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Wraps a payload in a checksummed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds frame cap");
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u64(&mut out, fnv1a64(payload));
    out
}

/// Unwraps a complete frame back into its payload.
///
/// # Errors
///
/// A typed [`WireError`] when the magic, length, checksum, or size do
/// not hold.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], WireError> {
    if bytes.len() < 12 {
        return Err(WireError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len: len as u64 });
    }
    if bytes.len() != 12 + len + 8 {
        return Err(WireError::Truncated);
    }
    let payload = &bytes[12..12 + len];
    let checksum = u64::from_le_bytes(bytes[12 + len..].try_into().unwrap());
    if checksum != fnv1a64(payload) {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Writes one framed payload to a stream.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> std::io::Result<()> {
    writer.write_all(&frame(payload))?;
    writer.flush()
}

/// Reads one framed payload from a stream.
///
/// # Errors
///
/// `Ok(Err(_))` for protocol violations (bad magic / checksum /
/// oversize), `Err(_)` for transport-level I/O failures.
pub fn read_frame<R: Read>(reader: &mut R) -> std::io::Result<Result<Vec<u8>, WireError>> {
    let mut header = [0u8; 12];
    reader.read_exact(&mut header)?;
    if header[..8] != MAGIC {
        return Ok(Err(WireError::BadMagic));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Ok(Err(WireError::Oversized { len: len as u64 }));
    }
    let mut rest = vec![0u8; len + 8];
    reader.read_exact(&mut rest)?;
    let checksum = u64::from_le_bytes(rest[len..].try_into().unwrap());
    rest.truncate(len);
    if checksum != fnv1a64(&rest) {
        return Ok(Err(WireError::ChecksumMismatch));
    }
    Ok(Ok(rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Clear {
                region: 3,
                round: 17,
                bids: vec![
                    Bid {
                        user: 1,
                        cost: 2.5,
                        tasks: vec![(0, 0.5), (1, 0.25)],
                    },
                    Bid {
                        user: 2,
                        cost: 0.125,
                        tasks: vec![(1, 0.75)],
                    },
                ],
            },
            Request::PullDelta {
                region: 0,
                since: None,
            },
            Request::PullDelta {
                region: 9,
                since: Some(41),
            },
            Request::ApplyDelta {
                region: 2,
                delta: WireDelta {
                    settlements: vec![WireSettlement {
                        round: 5,
                        payouts: vec![(1, 4614256656552045848), (7, 13830554455654793216)],
                        total_bits: 42,
                        outcomes: vec![(1, 1), (7, 0)],
                    }],
                    next_round_id: 6,
                },
            },
            Request::Promote,
            Request::TraceSnapshot { region: 4 },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong {
                node: 2,
                primary: true,
            },
            Response::Cleared(WireOutcome {
                region: 1,
                round: 9,
                winners: vec![1, 4],
                quotes: vec![(1, 10, 20), (4, 30, 40)],
                reports: vec![(1, 1), (4, 0)],
                social_cost_bits: 0x4008_0000_0000_0000,
            }),
            Response::ClearedEmpty {
                region: 6,
                round: 2,
            },
            Response::Quarantined {
                region: 0,
                round: 3,
                bidders: 12,
                error: WireRoundError::Infeasible { task: 7 },
            },
            Response::Quarantined {
                region: 0,
                round: 3,
                bidders: 2,
                error: WireRoundError::Mechanism {
                    message: "α out of range".into(),
                },
            },
            Response::Quarantined {
                region: 0,
                round: 3,
                bidders: 2,
                error: WireRoundError::DeadlineExceeded {
                    budget: 10,
                    cleared: 10,
                    deferred: 5,
                },
            },
            Response::Delta(WireDelta {
                settlements: vec![],
                next_round_id: 0,
            }),
            Response::Applied,
            Response::Promoted,
            Response::Trace(vec![TraceEvent {
                seq: 1,
                at: 1,
                kind: mcs_obs::EventKind::RoundClosed,
                stage: Some(mcs_obs::Stage::Batch),
                round: 4,
                a: 1,
                b: 2,
                c: 3,
            }]),
            Response::Error {
                message: "unknown region".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for request in sample_requests() {
            let payload = encode_request(&request);
            assert_eq!(decode_request(&payload).unwrap(), request);
            let framed = frame(&payload);
            assert_eq!(unframe(&framed).unwrap(), &payload[..]);
        }
    }

    #[test]
    fn responses_round_trip() {
        for response in sample_responses() {
            let payload = encode_response(&response);
            assert_eq!(decode_response(&payload).unwrap(), response);
        }
    }

    #[test]
    fn every_single_byte_corruption_is_a_typed_error() {
        // Flip every byte of every framed sample message: each flip must
        // produce a typed decode error, never a silently different value
        // and never a panic. The checksum covers the payload; the header
        // fields are structurally validated.
        for request in sample_requests() {
            let framed = frame(&encode_request(&request));
            for i in 0..framed.len() {
                let mut corrupt = framed.clone();
                corrupt[i] ^= 0x40;
                let outcome = unframe(&corrupt).and_then(decode_request);
                assert!(
                    outcome.is_err(),
                    "byte {i} flip of {request:?} decoded as {outcome:?}"
                );
            }
        }
        for response in sample_responses() {
            let framed = frame(&encode_response(&response));
            for i in 0..framed.len() {
                let mut corrupt = framed.clone();
                corrupt[i] ^= 0x40;
                let outcome = unframe(&corrupt).and_then(decode_response);
                assert!(outcome.is_err(), "byte {i} flip decoded as {outcome:?}");
            }
        }
    }

    #[test]
    fn truncation_and_extension_are_typed_errors() {
        let framed = frame(&encode_request(&Request::Ping));
        for cut in 0..framed.len() {
            assert!(unframe(&framed[..cut]).is_err());
        }
        let mut extended = framed.clone();
        extended.push(0);
        assert!(unframe(&extended).is_err());
    }

    #[test]
    fn frames_round_trip_over_streams() {
        let payload = encode_request(&Request::TraceSnapshot { region: 1 });
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &payload).unwrap();
        let mut reader = &buffer[..];
        let back = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn outcome_and_settlement_conversions_are_bit_exact() {
        use mcs_core::types::UserId;
        let cleared = ClearedRound {
            id: RoundId(11),
            allocation: Allocation::from_winners([UserId::new(3), UserId::new(8)]),
            quotes: [
                (
                    UserId::new(3),
                    RewardQuote {
                        success: 1.0 / 3.0,
                        failure: -0.7,
                    },
                ),
                (
                    UserId::new(8),
                    RewardQuote {
                        success: 2.5,
                        failure: f64::MIN_POSITIVE,
                    },
                ),
            ]
            .into_iter()
            .collect(),
            reports: [(UserId::new(3), true), (UserId::new(8), false)]
                .into_iter()
                .collect(),
            social_cost: 0.1 + 0.2, // deliberately inexact decimal
            economics: Default::default(),
        };
        let wire = WireOutcome::from_cleared(5, &cleared);
        let back = wire.to_cleared();
        assert_eq!(back, cleared);
        assert_eq!(back.social_cost.to_bits(), cleared.social_cost.to_bits());

        let settlement = RoundSettlement {
            round: RoundId(11),
            payouts: [(UserId::new(3), 1.0 / 3.0), (UserId::new(8), -0.7)]
                .into_iter()
                .collect(),
            total: 1.0 / 3.0 - 0.7,
            outcomes: [(UserId::new(3), true), (UserId::new(8), false)]
                .into_iter()
                .collect(),
        };
        let wire = WireSettlement::from_settlement(&settlement);
        assert_eq!(wire.to_settlement(), settlement);
    }
}
