//! Cluster topology: how the city grid, the published tasks, and the
//! node count determine which shard clears which bid.
//!
//! ## The unit of clearing is the *region shard*, not the node
//!
//! A topology partitions the [`CityGrid`] into regions and pins every
//! task to the region containing its cell. Each region is an independent
//! clearing shard with its own engine seed derived from
//! [`shard_seed`]; one extra virtual shard (index `regions.len()`)
//! clears cross-region straddlers in phase 2. Nodes are pure
//! *placement*: [`Topology::node_of_region`] maps region shards onto `N`
//! nodes in contiguous slices, and nothing downstream of placement can
//! observe it — which is exactly why a 1-node and an N-node deployment
//! of the same topology produce bitwise-identical outcomes (proven by
//! `tests/cluster_equivalence.rs`).

use std::collections::BTreeMap;
use std::fmt;

use mcs_core::types::Task;
use mcs_mobility::grid::{Cell, CityGrid, Region};

/// A published task pinned to the grid cell where it must be sensed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSite {
    /// The task (id + coverage requirement).
    pub task: Task,
    /// The grid cell the task is bound to.
    pub cell: Cell,
}

/// Why a topology could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// No regions were supplied.
    NoRegions,
    /// The regions do not tile the grid exactly (gap or overlap).
    NotAPartition,
    /// No task sites were supplied.
    NoTasks,
    /// A task's cell lies outside the grid.
    OffGrid {
        /// The offending task id.
        task: u32,
    },
    /// The same task id appears at two sites.
    DuplicateTask {
        /// The repeated task id.
        task: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoRegions => write!(f, "topology has no regions"),
            TopologyError::NotAPartition => {
                write!(f, "regions do not tile the grid exactly")
            }
            TopologyError::NoTasks => write!(f, "topology publishes no tasks"),
            TopologyError::OffGrid { task } => {
                write!(f, "task t{task} sits on a cell outside the grid")
            }
            TopologyError::DuplicateTask { task } => {
                write!(f, "task t{task} is published at two sites")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The cluster's sharding key: grid regions, task placement, and the
/// region → node map.
#[derive(Debug, Clone)]
pub struct Topology {
    grid: CityGrid,
    regions: Vec<Region>,
    sites: Vec<TaskSite>,
    /// Per region, the tasks it publishes, ascending task id.
    region_tasks: Vec<Vec<Task>>,
    /// Task id → owning region index.
    task_region: BTreeMap<u32, u32>,
}

impl Topology {
    /// Builds a topology from an explicit region partition and task
    /// sites.
    ///
    /// # Errors
    ///
    /// A [`TopologyError`] when the regions do not tile the grid, a task
    /// is off-grid or duplicated, or either side is empty.
    pub fn new(
        grid: CityGrid,
        regions: Vec<Region>,
        sites: Vec<TaskSite>,
    ) -> Result<Self, TopologyError> {
        if regions.is_empty() {
            return Err(TopologyError::NoRegions);
        }
        if sites.is_empty() {
            return Err(TopologyError::NoTasks);
        }
        if !grid.is_partition(&regions) {
            return Err(TopologyError::NotAPartition);
        }
        let mut task_region = BTreeMap::new();
        let mut by_region: Vec<BTreeMap<u32, Task>> = vec![BTreeMap::new(); regions.len()];
        for site in &sites {
            let id = site.task.id().index() as u32;
            let Some(region) = grid.region_of_cell(&regions, site.cell) else {
                return Err(TopologyError::OffGrid { task: id });
            };
            if task_region.insert(id, region as u32).is_some() {
                return Err(TopologyError::DuplicateTask { task: id });
            }
            by_region[region].insert(id, site.task);
        }
        let region_tasks = by_region
            .into_iter()
            .map(|tasks| tasks.into_values().collect())
            .collect();
        Ok(Topology {
            grid,
            regions,
            sites,
            region_tasks,
            task_region,
        })
    }

    /// Builds a topology over `bands` vertical grid bands (see
    /// [`CityGrid::partition_bands`]) — the stock partition shape used
    /// by `platformd --nodes` and the CI cluster tier.
    ///
    /// # Errors
    ///
    /// Same as [`Topology::new`].
    pub fn bands(
        grid: CityGrid,
        bands: usize,
        sites: Vec<TaskSite>,
    ) -> Result<Self, TopologyError> {
        let regions = grid.partition_bands(bands);
        Topology::new(grid, regions, sites)
    }

    /// The grid the topology partitions.
    pub fn grid(&self) -> &CityGrid {
        &self.grid
    }

    /// The region partition.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Every published task site.
    pub fn sites(&self) -> &[TaskSite] {
        &self.sites
    }

    /// The tasks published by region `region`, ascending task id. Empty
    /// when no task lands in the region (such regions never host a
    /// clearing shard).
    pub fn region_tasks(&self, region: u32) -> &[Task] {
        &self.region_tasks[region as usize]
    }

    /// The region owning task `task`, if it is published at all.
    pub fn region_of_task(&self, task: u32) -> Option<u32> {
        self.task_region.get(&task).copied()
    }

    /// Every published task, ascending task id, with its residual-round
    /// coverage requirement.
    pub fn tasks(&self) -> impl Iterator<Item = Task> + '_ {
        self.task_region.iter().map(move |(&id, &region)| {
            self.region_tasks[region as usize]
                .iter()
                .find(|task| task.id().index() as u32 == id)
                .copied()
                .expect("task_region and region_tasks stay in sync")
        })
    }

    /// Region shards that actually publish tasks, ascending. Only these
    /// get engines; the rest of the partition is quiet territory.
    pub fn active_regions(&self) -> impl Iterator<Item = u32> + '_ {
        self.region_tasks
            .iter()
            .enumerate()
            .filter(|(_, tasks)| !tasks.is_empty())
            .map(|(region, _)| region as u32)
    }

    /// The virtual shard index of the straddler (phase-2) clear:
    /// one past the last region.
    pub fn straddler_shard(&self) -> u32 {
        self.regions.len() as u32
    }

    /// Which of `nodes` nodes hosts region `region`: contiguous region
    /// slices, so node `k` serves regions `[k·R/N, (k+1)·R/N)`. Pure
    /// placement — never feeds into clearing.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `region` is out of range.
    pub fn node_of_region(&self, region: u32, nodes: u32) -> u32 {
        assert!(nodes > 0, "a cluster needs at least one node");
        let count = self.regions.len() as u64;
        assert!((region as u64) < count, "region {region} out of range");
        ((region as u64 * nodes as u64) / count) as u32
    }
}

/// Per-shard engine seed: a SplitMix64-style mix of the cluster seed and
/// the shard index, so every region shard (and the straddler shard)
/// draws from an independent, reproducible stream that does not depend
/// on which node hosts it.
pub fn shard_seed(cluster_seed: u64, shard: u32) -> u64 {
    let mut z = cluster_seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::types::TaskId;

    fn site(task: u32, requirement: f64, x: u32, y: u32) -> TaskSite {
        TaskSite {
            task: Task::with_requirement(TaskId::new(task), requirement).unwrap(),
            cell: Cell { x, y },
        }
    }

    fn four_band_topology() -> Topology {
        let grid = CityGrid::new(8, 4, 1.0);
        let sites = vec![
            site(0, 0.8, 0, 0),
            site(1, 0.7, 2, 3),
            site(2, 0.6, 5, 1),
            site(3, 0.9, 7, 3),
        ];
        Topology::bands(grid, 4, sites).unwrap()
    }

    #[test]
    fn tasks_route_to_their_band() {
        let topology = four_band_topology();
        assert_eq!(topology.region_of_task(0), Some(0));
        assert_eq!(topology.region_of_task(1), Some(1));
        assert_eq!(topology.region_of_task(2), Some(2));
        assert_eq!(topology.region_of_task(3), Some(3));
        assert_eq!(topology.region_of_task(42), None);
        assert_eq!(topology.straddler_shard(), 4);
        assert_eq!(topology.region_tasks(2).len(), 1);
        assert_eq!(topology.active_regions().collect::<Vec<_>>(), [0, 1, 2, 3]);
    }

    #[test]
    fn node_placement_is_contiguous_and_total() {
        let topology = four_band_topology();
        for nodes in 1..=8u32 {
            let mut last = 0;
            for region in 0..4 {
                let node = topology.node_of_region(region, nodes);
                assert!(node < nodes);
                assert!(node >= last, "placement must be monotone");
                last = node;
            }
        }
        assert_eq!(topology.node_of_region(0, 1), 0);
        assert_eq!(topology.node_of_region(3, 1), 0);
        assert_eq!(topology.node_of_region(0, 2), 0);
        assert_eq!(topology.node_of_region(3, 2), 1);
    }

    #[test]
    fn bad_topologies_are_rejected() {
        let grid = CityGrid::new(8, 4, 1.0);
        let sites = vec![site(0, 0.8, 0, 0)];
        assert_eq!(
            Topology::new(grid, vec![], sites.clone()).unwrap_err(),
            TopologyError::NoRegions
        );
        let regions = grid.partition_bands(2);
        assert_eq!(
            Topology::new(grid, regions.clone(), vec![]).unwrap_err(),
            TopologyError::NoTasks
        );
        assert_eq!(
            Topology::new(grid, regions.clone(), vec![site(0, 0.8, 99, 0)]).unwrap_err(),
            TopologyError::OffGrid { task: 0 }
        );
        assert_eq!(
            Topology::new(
                grid,
                regions.clone(),
                vec![site(0, 0.8, 0, 0), site(0, 0.7, 5, 0)]
            )
            .unwrap_err(),
            TopologyError::DuplicateTask { task: 0 }
        );
        // A gappy "partition" (just the first band) is rejected.
        assert_eq!(
            Topology::new(grid, regions[..1].to_vec(), sites).unwrap_err(),
            TopologyError::NotAPartition
        );
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|shard| shard_seed(7, shard)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(shard_seed(7, 3), shard_seed(7, 3));
        assert_ne!(shard_seed(7, 3), shard_seed(8, 3));
    }
}
