#!/usr/bin/env bash
# Profiles the payment_scaling hot loop under `perf`, so PRs can cite
# flamegraph-driven deltas instead of guessing at hotspots.
#
# The bench's `--profile [n]` mode pins one synthetic instance and clears
# it on a persistent arena in a tight loop for ~60 s — a stable target to
# hang a sampler on. With `perf` installed this records and reports; with
# FLAMEGRAPH_DIR pointing at Brendan Gregg's FlameGraph scripts it also
# renders an SVG. Without `perf` it still runs the loop and prints
# wall-clock throughput, so the script degrades gracefully in containers
# without perf_event access.
#
# Usage:
#   scripts/profile.sh [n]        # profile warm clears at n users (default 10k)
#   PERF_OUT=perf.data scripts/profile.sh 100000
#
# For stage-level flames of a *recorded run* (no perf needed), feed a
# flight-recorder event snapshot through the trace CLI instead:
#   mcs-obs report events.json --flame | "${FLAMEGRAPH_DIR}/flamegraph.pl"
# — same collapsed-stack format this script pipes perf output into.
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-10000}"
PERF_OUT="${PERF_OUT:-target/payment_scaling-perf.data}"

echo "==> building the bench target (release)"
cargo bench -p mcs-bench --bench payment_scaling --no-run
BIN="$(ls -t target/release/deps/payment_scaling-* 2>/dev/null \
  | grep -v '\.d$' | head -1)"
if [[ -z "${BIN}" ]]; then
  echo "profile: bench binary not found under target/release/deps" >&2
  exit 1
fi

if ! command -v perf >/dev/null 2>&1; then
  echo "==> perf not available; running the pinned loop unprofiled"
  "${BIN}" --profile "${N}"
  echo "profile: install perf (linux-tools) to record a flamegraph"
  exit 0
fi

echo "==> perf record: ${BIN} --profile ${N}"
if ! perf record -F 197 -g -o "${PERF_OUT}" -- "${BIN}" --profile "${N}"; then
  echo "==> perf record failed (perf_event may be restricted here);"
  echo "    falling back to the unprofiled loop"
  "${BIN}" --profile "${N}"
  exit 0
fi

echo "==> hottest symbols"
perf report -i "${PERF_OUT}" --stdio --percent-limit 1 | head -40

if [[ -n "${FLAMEGRAPH_DIR:-}" ]] \
  && [[ -x "${FLAMEGRAPH_DIR}/stackcollapse-perf.pl" ]] \
  && [[ -x "${FLAMEGRAPH_DIR}/flamegraph.pl" ]]; then
  SVG="target/payment_scaling-flame.svg"
  perf script -i "${PERF_OUT}" \
    | "${FLAMEGRAPH_DIR}/stackcollapse-perf.pl" \
    | "${FLAMEGRAPH_DIR}/flamegraph.pl" > "${SVG}"
  echo "==> flamegraph: ${SVG}"
else
  echo "==> set FLAMEGRAPH_DIR to render an SVG (perf data kept at ${PERF_OUT})"
fi
