#!/usr/bin/env bash
# Long-form chaos campaigns: more seeds, more rounds, higher fault
# intensity than the CI smoke, each verified clean and bitwise
# deterministic across worker/payment-thread counts.
#
#   scripts/fuzz.sh              # default sweep (~a few minutes)
#   SEEDS="1 2 3" ROUNDS=500 scripts/fuzz.sh
#
# A failing campaign prints its seed and fingerprint; replay it with
#   cargo run --release -p mcs-harness --bin mcs-fuzz -- \
#     --seed S --rounds $ROUNDS --faults $FAULTS --tasks T
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-1 2 3 5 8 13 21 34}"
ROUNDS="${ROUNDS:-200}"
FAULTS="${FAULTS:-0.5}"

cargo build --release -p mcs-harness

status=0
for seed in $SEEDS; do
  for tasks in 1 3; do
    if ! target/release/mcs-fuzz \
        --seed "$seed" --rounds "$ROUNDS" --faults "$FAULTS" \
        --tasks "$tasks" --verify-determinism; then
      status=1
    fi
  done
done

if [ "$status" -ne 0 ]; then
  echo "fuzz: FAILED (see violations above)"
  exit "$status"
fi
echo "fuzz: all campaigns clean and deterministic."
