#!/usr/bin/env bash
# Long-form chaos campaigns: more seeds, more rounds, higher fault
# intensity than the CI smoke, each verified clean and bitwise
# deterministic across worker/payment-thread counts.
#
#   scripts/fuzz.sh              # default sweep (~a few minutes)
#   scripts/fuzz.sh --scenarios  # scenario-corpus sweep instead
#   scripts/fuzz.sh --cluster    # geo-sharded deployment sweep
#   SEEDS="1 2 3" ROUNDS=500 scripts/fuzz.sh
#
# A failing campaign prints its seed and fingerprint; replay it with
#   cargo run --release -p mcs-harness --bin mcs-fuzz -- \
#     --seed S --rounds $ROUNDS --faults $FAULTS --tasks T
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-1 2 3 5 8 13 21 34}"
ROUNDS="${ROUNDS:-200}"
FAULTS="${FAULTS:-0.5}"

cargo build --release -p mcs-harness

if [ "${1:-}" = "--scenarios" ]; then
  # Sweep the shipped scenario corpus: every scenario must run clean,
  # hold its pinned baseline bitwise across the worker matrix, and
  # pass the online SP sweep where it declares a [strategy] section.
  status=0
  for toml in scenarios/*.toml; do
    name="$(basename "$toml" .toml)"
    if ! target/release/mcs-fuzz --scenario "$name" --verify-determinism; then
      status=1
    fi
  done
  if [ "$status" -ne 0 ]; then
    echo "fuzz: scenario sweep FAILED (see violations above)"
    exit "$status"
  fi
  echo "fuzz: scenario corpus clean and deterministic."
  exit 0
fi

if [ "${1:-}" = "--cluster" ]; then
  # Deployment sweep: the whole corpus through the cluster battery at
  # several node counts and band partitions. Every cell must be bitwise
  # the 1-node run, survive the three chaos faults, and (once per
  # configuration) match a real-socket TCP deployment.
  status=0
  for nodes in 2 3 5 8; do
    for bands in 4 6 8; do
      if ! target/release/mcs-fuzz \
          --cluster --nodes "$nodes" --bands "$bands" --verify-determinism; then
        status=1
      fi
    done
  done
  if [ "$status" -ne 0 ]; then
    echo "fuzz: cluster sweep FAILED (see violations above)"
    exit "$status"
  fi
  echo "fuzz: cluster deployments equivalent, chaos survived."
  exit 0
fi

status=0
for seed in $SEEDS; do
  for tasks in 1 3; do
    if ! target/release/mcs-fuzz \
        --seed "$seed" --rounds "$ROUNDS" --faults "$FAULTS" \
        --tasks "$tasks" --verify-determinism; then
      status=1
    fi
  done
done

if [ "$status" -ne 0 ]; then
  echo "fuzz: FAILED (see violations above)"
  exit "$status"
fi
echo "fuzz: all campaigns clean and deterministic."
