#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
# Not --all: that would also format the vendored stand-in crates in
# vendor/, which are path dependencies rather than workspace members.
cargo fmt -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> payment_scaling bench smoke (--test)"
cargo bench -p mcs-bench --bench payment_scaling -- --test

echo "==> chaos smoke (mcs-fuzz --ci-smoke)"
cargo run --release -p mcs-harness --bin mcs-fuzz -- --ci-smoke

echo "CI green."
