#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
# Not --all: that would also format the vendored stand-in crates in
# vendor/, which are path dependencies rather than workspace members.
cargo fmt -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> payment_scaling bench smoke (scripts/bench.sh --smoke)"
# Bitwise fast/reference/warm-arena equivalence plus a timed n=10k
# end-to-end clear on the arena path.
bash scripts/bench.sh --smoke

echo "==> chaos smoke (mcs-fuzz --ci-smoke)"
cargo run --release -p mcs-harness --bin mcs-fuzz -- --ci-smoke

echo "==> overload soak smoke (mcs-fuzz --soak --ci-smoke)"
# Every round oversubscribed 10x: the backlog must stay bounded by the
# watermark, every shed bid must be accounted, partial clears must
# quarantine their deferred tail, and the fingerprint must stay
# deterministic across worker counts.
cargo run --release -p mcs-harness --bin mcs-fuzz -- --soak --ci-smoke

echo "==> closed-loop campaign smoke (mcs-fuzz --campaign --ci-smoke)"
# Seeded auction campaigns across failure rates, with and without chaos
# faults layered on: residual monotonicity, termination, calibration
# sanity, payout conservation, and fingerprint determinism must all hold.
cargo run --release -p mcs-harness --bin mcs-fuzz -- --campaign --ci-smoke

echo "==> scenario corpus smoke (mcs-fuzz --scenario all)"
# Every shipped scenario in scenarios/ must load, run clean at several
# worker × payment-thread combinations, match its pinned [baseline]
# bitwise, and (where a [strategy] section is present) survive the
# online strategy-proofness sweep. A scenario without a committed
# baseline fails this tier.
cargo run --release -p mcs-harness --bin mcs-fuzz -- \
  --scenario all --verify-determinism

echo "==> cluster equivalence smoke (mcs-fuzz --cluster --nodes 3 --verify-determinism)"
# Every pinned scenario deployed as a geo-sharded cluster: a 1-node and
# a 3-node loopback run (plus 2/4/8 under --verify-determinism) must
# produce bitwise-identical fingerprints, the in-process mirror oracle
# must agree, the three cluster chaos faults (node loss, partition,
# duplicate delivery) must fail over / quarantine / dedup without a
# silently divergent bit, and a TCP deployment over real ephemeral-port
# sockets must match loopback exactly (transport equivalence).
cargo run --release -p mcs-harness --bin mcs-fuzz -- \
  --cluster --nodes 3 --verify-determinism

echo "==> cluster e2e smoke (platformd --nodes)"
# The same seed through 1-node and 3-node platformd cluster deployments
# must print the same deployment-invariant fingerprint.
CLUSTER_DIR="$(mktemp -d)"
trap 'rm -rf "${CLUSTER_DIR}"' EXIT
cargo run --release -p mcs-campaign --bin platformd -- \
  --nodes 1 --rounds 16 --users 24 --multi 4 --seed 42 \
  | tee "${CLUSTER_DIR}/one.log" | tail -1
cargo run --release -p mcs-campaign --bin platformd -- \
  --nodes 3 --rounds 16 --users 24 --multi 4 --seed 42 \
  | tee "${CLUSTER_DIR}/three.log" | tail -1
ONE="$(grep '^cluster: fingerprint' "${CLUSTER_DIR}/one.log")"
THREE="$(grep '^cluster: fingerprint' "${CLUSTER_DIR}/three.log")"
[ -n "${ONE}" ] && [ "${ONE}" = "${THREE}" ] || {
  echo "cluster smoke: 1-node (${ONE}) != 3-node (${THREE})"; exit 1; }
rm -rf "${CLUSTER_DIR}"
trap - EXIT
echo "cluster smoke: 1-node and 3-node deployments agree bitwise"

echo "==> campaign_convergence bench smoke (--test)"
cargo bench -p mcs-bench --bench campaign_convergence -- --test

echo "==> campaign e2e smoke (platformd --campaign)"
# A 30%-failure campaign must reach full coverage through residual
# re-auctions; exit status asserts coverage.
cargo run --release -p mcs-campaign --bin platformd -- \
  --campaign --campaign-rounds 16 --failure-rate 0.3 --seed 42

echo "==> metrics endpoint smoke (platformd --metrics-addr --profile --slo-budget)"
# Serve a short run on a fixed port, scrape every endpoint, and check the
# Prometheus payload is well-formed. Scraping uses bash's /dev/tcp so the
# gate has no dependency on curl. Admission control is engaged with a
# watermark below the synthesized backlog so the shed counters are
# exercised live; the rounds are multi-task (--multi) because only the
# greedy multi-task path runs on the arena-backed clearing kernel whose
# profiling counters --profile drains into the mcs_kernel_* families; a
# deliberately generous SLO budget rides along and must report zero
# breaches — this run is calm by that budget's definition.
METRICS_PORT=19464
SMOKE_DIR="$(mktemp -d)"
cat > "${SMOKE_DIR}/slo-budget.json" <<'SLO'
{
  "max_ns_per_bid": 1e12,
  "stage_p99": [{"stage": "shard", "max_p99_ns": 1000000000000}]
}
SLO
cargo run --release -p mcs-campaign --bin platformd -- \
  --rounds 12 --users 10 --snapshot-every 6 --multi 3 \
  --admission-high 25 --admission-low 10 --clear-budget 8 \
  --profile --slo-budget "${SMOKE_DIR}/slo-budget.json" \
  --metrics-addr "127.0.0.1:${METRICS_PORT}" --hold-ms 4000 \
  > "${SMOKE_DIR}/platformd.log" &
PLATFORMD_PID=$!
trap 'kill "${PLATFORMD_PID}" 2>/dev/null || true; rm -rf "${SMOKE_DIR}"' EXIT
sleep 1
scrape() {
  exec 3<>"/dev/tcp/127.0.0.1/${METRICS_PORT}" || return 1
  printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}
for attempt in 1 2 3 4 5; do
  if PROM="$(scrape /metrics 2>/dev/null)" && [ -n "${PROM}" ]; then break; fi
  sleep 1
done
JSON="$(scrape /metrics.json)"
HEALTH="$(scrape /healthz)"
SLO_REPORT="$(scrape /slo)"
wait "${PLATFORMD_PID}"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
echo "${PROM}" | grep -q '^mcs_bids_received_total ' || {
  echo "metrics smoke: mcs_bids_received_total missing"; exit 1; }
echo "${PROM}" | grep -q '^mcs_rounds_cleared_total ' || {
  echo "metrics smoke: mcs_rounds_cleared_total missing"; exit 1; }
echo "${PROM}" | grep -q '^mcs_stage_p99_ns{stage="allocate"}' || {
  echo "metrics smoke: labelled stage gauges missing"; exit 1; }
echo "${PROM}" | grep -q '^mcs_overpayment_ratio ' || {
  echo "metrics smoke: economics gauges missing"; exit 1; }
echo "${PROM}" | grep -Eq '^mcs_bids_shed_total [1-9]' || {
  echo "metrics smoke: mcs_bids_shed_total missing or zero under overload"; exit 1; }
echo "${PROM}" | grep -Eq '^mcs_rounds_partial_total [1-9]' || {
  echo "metrics smoke: mcs_rounds_partial_total missing or zero under overload"; exit 1; }
if echo "${PROM}" | grep -Eqi ' [+-]?(nan|inf)$'; then
  echo "metrics smoke: non-finite sample in Prometheus payload"; exit 1
fi
echo "${JSON}" | grep -q '"economics"' || {
  echo "metrics smoke: JSON snapshot missing economics"; exit 1; }
echo "${PROM}" | grep -q '^mcs_kernel_prepares_total ' || {
  echo "metrics smoke: kernel profiler families missing under --profile"; exit 1; }
echo "${PROM}" | grep -Eq '^mcs_kernel_heap_pops_total [1-9]' || {
  echo "metrics smoke: mcs_kernel_heap_pops_total missing or zero"; exit 1; }
echo "${HEALTH}" | grep -q '"status":"ok"' || {
  echo "metrics smoke: /healthz not ok: ${HEALTH}"; exit 1; }
echo "${HEALTH}" | grep -q '"rounds_cleared"' || {
  echo "metrics smoke: /healthz missing rounds_cleared"; exit 1; }
echo "${SLO_REPORT}" | grep -q '"breaches":\[\]' || {
  echo "metrics smoke: SLO breaches under a generous budget: ${SLO_REPORT}"; exit 1; }
grep -q 'slo: .* breached' "${SMOKE_DIR}/platformd.log" || {
  echo "metrics smoke: platformd printed no SLO verdict"; exit 1; }
if grep -q 'SLO BREACH' "${SMOKE_DIR}/platformd.log"; then
  echo "metrics smoke: platformd reported a breach in a calm run"; exit 1
fi
rm -rf "${SMOKE_DIR}"
trap - EXIT
echo "metrics smoke: all four endpoints healthy, SLO verdict clean"

echo "==> trace analysis smoke (mcs-fuzz --record-trace + mcs-obs)"
# Record the calm-baseline scenario's checksummed drive log, render it
# with mcs-obs, and require the trace to diff clean against itself —
# exit 0 from `diff` is the determinism contract CI leans on.
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "${OBS_DIR}"' EXIT
cargo run --release -p mcs-harness --bin mcs-fuzz -- \
  --scenario calm-baseline --record-trace "${OBS_DIR}/calm.trace"
REPORT="$(cargo run --release -p mcs-obs --bin mcs-obs -- report "${OBS_DIR}/calm.trace")"
echo "${REPORT}" | grep -q 'MCSTRACE drive log' || {
  echo "trace smoke: mcs-obs report did not recognise the drive log"; exit 1; }
cargo run --release -p mcs-obs --bin mcs-obs -- \
  diff "${OBS_DIR}/calm.trace" "${OBS_DIR}/calm.trace" || {
  echo "trace smoke: a trace must diff clean against itself"; exit 1; }
rm -rf "${OBS_DIR}"
trap - EXIT
echo "trace smoke: report rendered, self-diff identical"

echo "CI green."
