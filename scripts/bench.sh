#!/usr/bin/env bash
# Runs the allocation + payment scaling bench and refreshes the
# machine-readable perf record BENCH_payment_scaling.json at the repo
# root, so the perf trajectory is tracked across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench payment_scaling (writes BENCH_payment_scaling.json)"
cargo bench -p mcs-bench --bench payment_scaling

echo "==> BENCH_payment_scaling.json"
cat BENCH_payment_scaling.json
