#!/usr/bin/env bash
# Runs the allocation + payment scaling bench and refreshes the
# machine-readable perf record BENCH_payment_scaling.json at the repo
# root, so the perf trajectory is tracked across PRs.
#
# The full grid is: reference + fast at n ∈ {100, 500, 1000}, fast
# (cold and warm-arena) at n ∈ {10k, 100k}, and a 1M-user
# allocation-only smoke — all at 50 tasks, with ns/bid derived per row.
# Arena-path rows carry a nested "kernel" object (prepares, reuse hits,
# heap pops, probes requested/run/saved, resident bytes) drained from the
# clearing kernel's profiling counters, and a fast_warm_profiled row
# records the measured profiling overhead at n=10k — asserted ≤ 5% in
# both the full run and the --smoke tier.
#
# Usage:
#   scripts/bench.sh            # full grid (minutes; refreshes the JSON)
#   scripts/bench.sh --smoke    # CI tier: bitwise equivalence + a timed
#                               # n=10k end-to-end clear; writes nothing
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
  echo "==> payment_scaling --smoke (equivalence + n=10k end-to-end)"
  cargo bench -p mcs-bench --bench payment_scaling -- --smoke
  exit 0
fi

echo "==> cargo bench payment_scaling (writes BENCH_payment_scaling.json)"
cargo bench -p mcs-bench --bench payment_scaling

echo "==> BENCH_payment_scaling.json"
cat BENCH_payment_scaling.json
