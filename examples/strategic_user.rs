//! Why naive VCG breaks — and why the execution-contingent mechanism does
//! not. Reproduces the paper's Section III-A counterexample numerically.
//!
//! Setup (the paper's example, with user 2's cost nudged off a knife-edge
//! tie): four users bid (cost, PoS) = (3, 0.7), (2, 0.7), (1.5, 0.5),
//! (4, 0.8) on a task requiring PoS ≥ 0.9. Under a VCG-style mechanism the
//! payment ignores declared PoS, so user 2 (cheap, true PoS 0.5) profits
//! by declaring PoS 0.9 and squeezing into the solution. Under the
//! execution-contingent scheme, the same lie strictly backfires.
//!
//! ```text
//! cargo run --example strategic_user
//! ```

use mcs_core::analysis::expected_utility;
use mcs_core::baselines::StVcg;
use mcs_core::mechanism::WinnerDetermination;
use mcs_core::prelude::*;

fn main() -> Result<()> {
    let truth = TypeProfile::single_task(
        Pos::new(0.9)?,
        vec![
            UserType::single(UserId::new(0), 3.0, 0.7)?,
            UserType::single(UserId::new(1), 2.0, 0.7)?,
            UserType::single(UserId::new(2), 1.5, 0.5)?,
            UserType::single(UserId::new(3), 4.0, 0.8)?,
        ],
    )?;
    let liar = UserId::new(2);
    let lie = Pos::new(0.9)?;

    println!("=== The VCG-style failure ===");
    // Under VCG-like selection everyone inflates PoS; the platform picks
    // by cost alone, so the cheap unreliable user always wins.
    let vcg = StVcg::new();
    let vcg_allocation = vcg.select_winners(&truth)?;
    println!("ST-VCG selects {} (the cheapest declarer)", vcg_allocation);
    let achieved = truth
        .user(liar)?
        .pos_for(TaskId::new(0))
        .expect("task in set")
        .value();
    println!("achieved PoS: {achieved:.2} — the 0.9 requirement is missed\n");

    println!("=== The execution-contingent mechanism ===");
    let mechanism = SingleTaskMechanism::new(0.1, 10.0)?;

    let honest_allocation = mechanism.select_winners(&truth)?;
    println!("truthful bids  -> winners {honest_allocation}");
    let honest_utility = expected_utility(&mechanism, &truth, &truth, liar)?;
    println!("user {liar}'s truthful expected utility: {honest_utility:+.4}");

    let declared = truth.with_user_type(truth.user(liar)?.with_pos(TaskId::new(0), lie)?)?;
    let lying_allocation = mechanism.select_winners(&declared)?;
    println!("\nuser {liar} declares PoS 0.9 -> winners {lying_allocation}");
    let lying_utility = expected_utility(&mechanism, &declared, &truth, liar)?;
    println!("user {liar}'s expected utility under the lie: {lying_utility:+.4}");

    if lying_allocation.contains(liar) {
        let success = mechanism.reward(&declared, &lying_allocation, liar, true)?;
        let failure = mechanism.reward(&declared, &lying_allocation, liar, false)?;
        println!(
            "  (she wins, but rewards are contingent: {success:+.3} on success, \
             {failure:+.3} on failure — and she only succeeds half the time)"
        );
    }

    assert!(
        lying_utility < honest_utility + 1e-9,
        "the mechanism failed to neutralize the manipulation!"
    );
    println!("\nThe lie does not pay: {lying_utility:+.4} ≤ {honest_utility:+.4}.");
    Ok(())
}
