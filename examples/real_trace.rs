//! Pointing the pipeline at an *external* trace file.
//!
//! Everything else in this repository runs on the built-in synthetic city,
//! but the library is designed to consume a real data set: discretize your
//! GPS records into `(taxi, slot, location)` rows, write them as CSV, and
//! the learning / prediction / auction layers take it from there.
//!
//! This example manufactures such a file (so it runs self-contained),
//! then treats it exactly as foreign data:
//!
//! 1. parse the CSV with `trace_io::read_csv`,
//! 2. split train/test, learn per-taxi models, report held-out quality,
//! 3. build users from the learned visit profiles and run an auction.
//!
//! ```text
//! cargo run --release --example real_trace
//! ```

use mcs_core::prelude::*;
use mcs_mobility::learn::{learn_all, Smoothing};
use mcs_mobility::predict::{top_k_accuracy, visit_profile};
use mcs_mobility::synth::{CityConfig, SyntheticCity};
use mcs_mobility::trace_io::{read_csv, write_csv};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // --- Stand-in for "your GPS export": write a CSV to a temp file. ---
    let path = std::env::temp_dir().join("mcs_example_trace.csv");
    {
        let mut rng = StdRng::seed_from_u64(11);
        let city = SyntheticCity::generate(CityConfig::default(), &mut rng);
        let traces = city.simulate(200, 360, &mut rng);
        let file = std::fs::File::create(&path)?;
        write_csv(&traces, std::io::BufWriter::new(file))?;
    }
    println!(
        "trace file: {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // --- From here on, the file is all we know. ---
    let traces = read_csv(std::fs::File::open(&path)?)?;
    println!(
        "parsed {} events from {} taxis",
        traces.event_count(),
        traces.taxi_count()
    );

    let (train, test) = traces.split_at_slot(330);
    let models = learn_all(&train, Smoothing::Paper);
    let accuracy = top_k_accuracy(&models, &test, 9).unwrap_or(0.0);
    println!("held-out top-9 prediction accuracy: {accuracy:.3}");

    // Users for one task: taxis whose 12-slot visit profile covers the
    // busiest cell of the data set.
    let sensing_models = learn_all(&train, Smoothing::AddLambda(0.25));
    let mut visits = std::collections::BTreeMap::new();
    for taxi in train.taxis() {
        for event in train.trace(taxi) {
            *visits.entry(event.location).or_insert(0u64) += 1;
        }
    }
    let (&task_cell, _) = visits
        .iter()
        .max_by_key(|&(_, &count)| count)
        .expect("events exist");
    println!("task location: the busiest cell, {task_cell}");

    let mut users = Vec::new();
    let mut rng = StdRng::seed_from_u64(12);
    for (idx, taxi) in train.taxis().enumerate() {
        let model = &sensing_models[&taxi];
        let Some(&origin) = model.visited().first() else {
            continue;
        };
        let profile = visit_profile(model, origin, 12);
        let Some(&(_, pos)) = profile.iter().find(|&&(cell, _)| cell == task_cell) else {
            continue;
        };
        use rand::Rng;
        let cost = rng.gen_range(8.0..22.0);
        users.push(
            UserType::builder(UserId::new(idx as u32))
                .cost(Cost::new(cost)?)
                .task(TaskId::new(0), Pos::saturating(pos))
                .build()?,
        );
    }
    println!("{} taxis can serve the task", users.len());

    let profile = TypeProfile::single_task(Pos::new(0.8)?, users)?;
    let auction = ReverseAuction::new(SingleTaskMechanism::new(0.5, 10.0)?);
    let outcome = auction.run(&profile, &mut rng)?;
    println!(
        "auction: {} winners, social cost {:.1}, achieved PoS {:.3}",
        outcome.allocation.winner_count(),
        outcome.social_cost.value(),
        outcome
            .achieved_pos(&profile, TaskId::new(0))
            .expect("winners cover the task"),
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
