//! Platform-side tuning: how the reward scaling factor `α` and the FPTAS
//! accuracy `ε` trade off payout, user utility, and computation.
//!
//! * `α` scales the execution-contingent reward spread: a larger `α` pays
//!   winners more in expectation (utility `(p − p̄)·α`) and costs the
//!   platform more, without changing *who* wins.
//! * `ε` trades allocation quality for winner-determination time: the
//!   selected set costs at most `(1+ε)` times the optimum.
//!
//! ```text
//! cargo run --release --example budget_tuning
//! ```

use mcs_core::baselines::OptimalSingleTask;
use mcs_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() -> Result<()> {
    // A 60-user market with dispersed reliability and costs.
    let mut rng = StdRng::seed_from_u64(99);
    let users: Vec<UserType> = (0..60)
        .map(|i| {
            UserType::single(
                UserId::new(i),
                rng.gen_range(5.0..25.0),
                rng.gen_range(0.05..0.45),
            )
        })
        .collect::<Result<_>>()?;
    let profile = TypeProfile::single_task(Pos::new(0.8)?, users)?;

    println!("=== α: reward budget vs. user utility (ε = 0.5) ===");
    println!(
        "{:>6}  {:>14}  {:>16}",
        "alpha", "total payout*", "mean winner util"
    );
    for alpha in [1.0, 5.0, 10.0, 25.0] {
        let mechanism = SingleTaskMechanism::new(0.5, alpha)?;
        let auction = ReverseAuction::new(mechanism);
        let outcome = auction.run(&profile, &mut StdRng::seed_from_u64(1))?;
        let mean_utility: f64 = outcome.expected_utilities.values().sum::<f64>()
            / outcome.expected_utilities.len().max(1) as f64;
        // Expected payout: cost reimbursement + α-scaled incentive spread.
        let expected_payout: f64 = outcome
            .allocation
            .winners()
            .map(|w| {
                let success = auction
                    .mechanism()
                    .reward(&profile, &outcome.allocation, w, true)
                    .expect("winner");
                let failure = auction
                    .mechanism()
                    .reward(&profile, &outcome.allocation, w, false)
                    .expect("winner");
                let p = profile
                    .user(w)
                    .expect("winner exists")
                    .pos_for(TaskId::new(0))
                    .expect("task in set")
                    .value();
                p * success + (1.0 - p) * failure
            })
            .sum();
        println!("{alpha:>6}  {expected_payout:>14.2}  {mean_utility:>16.3}");
    }
    println!("(*expected, under truthful types)");

    println!("\n=== ε: allocation quality vs. winner-determination time ===");
    let optimal_cost = OptimalSingleTask::new()
        .select_winners(&profile)?
        .social_cost(&profile)?
        .value();
    println!("optimal social cost: {optimal_cost:.2}");
    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}",
        "eps", "social cost", "ratio", "time"
    );
    for epsilon in [2.0, 1.0, 0.5, 0.2, 0.05] {
        let mechanism = SingleTaskMechanism::new(epsilon, 10.0)?;
        let start = Instant::now();
        let allocation = mechanism.select_winners(&profile)?;
        let elapsed = start.elapsed();
        let cost = allocation.social_cost(&profile)?.value();
        println!(
            "{epsilon:>6}  {cost:>12.2}  {:>10.4}  {:>10.1?}",
            cost / optimal_cost,
            elapsed,
        );
    }
    println!("\nEvery ratio stays below 1+ε — usually far below.");
    Ok(())
}
