//! City-scale sensing campaign: the full pipeline from synthetic taxi
//! traces to a settled multi-task auction.
//!
//! 1. Generate a synthetic city and simulate a taxi fleet.
//! 2. Learn per-taxi Markov mobility models (Laplace-smoothed MLE).
//! 3. Publish a campaign of tasks around the busiest district; recruit
//!    taxis whose predicted movements cover them.
//! 4. Run the multi-task, single-minded mechanism and report coverage.
//!
//! ```text
//! cargo run --release --example city_sensing
//! ```

use mcs_core::analysis::achieved_pos_all;
use mcs_core::auction::ReverseAuction;
use mcs_core::multi_task::MultiTaskMechanism;
use mcs_sim::config::{DatasetParams, SimParams};
use mcs_sim::population::{Dataset, PopulationBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the synthetic city and learning mobility models…");
    let dataset = Dataset::build(DatasetParams::small());
    println!(
        "  {} taxis, {} training events, {} learned models",
        dataset.params().taxi_count,
        dataset.train().event_count(),
        dataset.models().len(),
    );

    let params = SimParams::default();
    let builder = PopulationBuilder::new(&dataset, params);
    let mut rng = StdRng::seed_from_u64(7);

    // A campaign of 15 tasks around the busiest district, 60 recruits.
    let population = builder.multi_task(15, 60, &mut rng)?;
    println!(
        "campaign: {} tasks, {} candidate users (avg task set {:.1})",
        population.profile.task_count(),
        population.profile.user_count(),
        population
            .profile
            .users()
            .iter()
            .map(|u| u.task_count() as f64)
            .sum::<f64>()
            / population.profile.user_count() as f64,
    );

    let mechanism = MultiTaskMechanism::new(params.alpha)?;
    let auction = ReverseAuction::new(mechanism);
    let outcome = auction.run(&population.profile, &mut rng)?;

    println!(
        "selected {} users at social cost {:.1}",
        outcome.allocation.winner_count(),
        outcome.social_cost.value(),
    );
    println!(
        "\nper-task coverage (required {:.2}):",
        params.pos_requirement
    );
    for (task, achieved) in achieved_pos_all(&population.profile, &outcome.allocation) {
        let done = outcome.task_completed(task);
        println!(
            "  {task}: expected PoS {:.3}  completed this round: {}",
            achieved.value(),
            if done { "yes" } else { "no" },
        );
    }

    let completed = population
        .profile
        .task_ids()
        .filter(|&t| outcome.task_completed(t))
        .count();
    println!(
        "\nthis round completed {completed}/{} tasks; total payout {:.1}",
        population.profile.task_count(),
        outcome.total_rewards(),
    );
    println!(
        "every winner's expected utility ≥ 0: {}",
        outcome.expected_utilities.values().all(|&u| u >= -1e-9),
    );
    Ok(())
}
