//! Redundancy versus retries: why the paper's fault-tolerant recruitment
//! beats running cheap auctions over and over.
//!
//! Two platform policies chase the same goal — get one task completed:
//!
//! * **Fault-tolerant (the paper)**: recruit a redundant set so a single
//!   round completes the task with probability ≥ T = 0.8.
//! * **Retry-cheapest**: each round recruit only the single most
//!   cost-efficient user (an ST-VCG-like choice) and retry on failure up
//!   to a deadline of R rounds.
//!
//! Retrying looks cheaper per round but pays repeatedly, misses the
//! deadline with noticeable probability, and delivers data late. The
//! simulation quantifies all three effects.
//!
//! ```text
//! cargo run --release --example repeated_rounds
//! ```

use mcs_core::analysis::payment_report;
use mcs_core::baselines::StVcg;
use mcs_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROUNDS_DEADLINE: u32 = 3;
const TRIALS: usize = 3000;

fn main() -> Result<()> {
    // A market of 40 users with modest reliability.
    let mut rng = StdRng::seed_from_u64(2024);
    let users: Vec<UserType> = (0..40)
        .map(|i| {
            UserType::single(
                UserId::new(i),
                rng.gen_range(5.0..25.0),
                rng.gen_range(0.10..0.40),
            )
        })
        .collect::<Result<_>>()?;
    let profile = TypeProfile::single_task(Pos::new(0.8)?, users)?;
    let task = TaskId::new(0);

    // --- Policy A: one fault-tolerant round. ---
    let mechanism = SingleTaskMechanism::new(0.5, 10.0)?;
    let auction = ReverseAuction::new(mechanism);
    let allocation = auction.mechanism().select_winners(&profile)?;
    let payment = payment_report(auction.mechanism(), &profile, &allocation)?;

    let mut ft_completions = 0usize;
    let mut ft_payout = 0.0;
    for _ in 0..TRIALS {
        let outcome = auction.run(&profile, &mut rng)?;
        if outcome.task_completed(task) {
            ft_completions += 1;
        }
        ft_payout += outcome.total_rewards();
    }

    println!("=== Policy A: fault-tolerant single round (T = 0.8) ===");
    println!("winners per round:        {}", allocation.winner_count());
    println!("social cost per round:    {:.1}", payment.social_cost);
    println!("expected payout per round:{:.1}", payment.expected_total());
    println!(
        "completion rate:          {:.3} (target ≥ 0.8)",
        ft_completions as f64 / TRIALS as f64
    );
    println!("mean payout (simulated):  {:.1}", ft_payout / TRIALS as f64);

    // --- Policy B: retry the cheapest user each round. ---
    let st_vcg = StVcg::new();
    let cheapest = st_vcg.select_winners(&profile)?;
    let cheapest_user = cheapest.winners().next().expect("nonempty market");
    let user = profile.user(cheapest_user)?;
    let pos = user.pos_for(task).expect("covers the task").value();
    // A realistic retry policy still has to pay the worker her cost plus a
    // margin; pay cost + 10% per attempt.
    let per_round_payment = user.cost().value() * 1.1;

    let mut retry_completions = 0usize;
    let mut retry_payout = 0.0;
    let mut rounds_used_total = 0u64;
    for _ in 0..TRIALS {
        let mut rounds_used = ROUNDS_DEADLINE;
        let mut done = false;
        for round in 1..=ROUNDS_DEADLINE {
            retry_payout += per_round_payment;
            if rng.gen_bool(pos) {
                done = true;
                rounds_used = round;
                break;
            }
        }
        rounds_used_total += u64::from(rounds_used);
        if done {
            retry_completions += 1;
        }
    }

    println!("\n=== Policy B: retry cheapest user (deadline {ROUNDS_DEADLINE} rounds) ===");
    println!(
        "chosen user:              {cheapest_user} (cost {:.1}, PoS {pos:.2})",
        user.cost().value()
    );
    println!(
        "completion by deadline:   {:.3}",
        retry_completions as f64 / TRIALS as f64
    );
    println!(
        "mean payout:              {:.1}",
        retry_payout / TRIALS as f64
    );
    println!(
        "mean rounds used:         {:.2}",
        rounds_used_total as f64 / TRIALS as f64
    );

    let ft_rate = ft_completions as f64 / TRIALS as f64;
    let retry_rate = retry_completions as f64 / TRIALS as f64;
    println!("\nRedundancy completes in ONE round at {ft_rate:.3}, the retry policy");
    println!(
        "reaches only {retry_rate:.3} after {ROUNDS_DEADLINE} rounds of latency — the gap is \
         exactly what the PoS requirement buys."
    );
    assert!(ft_rate >= 0.8 - 0.03, "fault tolerance under-delivered");
    Ok(())
}
