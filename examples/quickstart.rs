//! Quickstart: one sealed-bid reverse auction with execution uncertainty.
//!
//! Four mobile users bid on a single sensing task that the platform wants
//! completed with probability at least 0.9. We run the strategy-proof
//! single-task mechanism (FPTAS winner determination + execution-contingent
//! rewards), simulate the uncertain execution, and settle payments.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mcs_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // The paper's running example: users bid (cost, probability of
    // success). User 2 is cheap but unreliable; user 3 reliable but pricey.
    let users = vec![
        UserType::single(UserId::new(0), 3.0, 0.7)?,
        UserType::single(UserId::new(1), 2.0, 0.7)?,
        UserType::single(UserId::new(2), 1.0, 0.5)?,
        UserType::single(UserId::new(3), 4.0, 0.8)?,
    ];
    let profile = TypeProfile::single_task(Pos::new(0.9)?, users)?;

    // ε = 0.1 → winner set within 10% of the cheapest possible;
    // α = 10 → reward spread between success and failure.
    let mechanism = SingleTaskMechanism::new(0.1, 10.0)?;
    let auction = ReverseAuction::new(mechanism);

    let mut rng = StdRng::seed_from_u64(42);
    let outcome = auction.run(&profile, &mut rng)?;

    println!("winners:      {}", outcome.allocation);
    println!(
        "social cost:  {:.2}",
        outcome.allocation.social_cost(&profile)?.value()
    );
    println!(
        "achieved PoS: {:.4}  (required 0.9)",
        outcome
            .achieved_pos(&profile, TaskId::new(0))
            .expect("some winner covers the task")
    );
    println!();
    for winner in outcome.allocation.winners() {
        let completed = outcome.executions[&winner].completed(TaskId::new(0));
        println!(
            "{winner}: completed={completed:<5}  reward={:+.3}  realized utility={:+.3}  \
             expected utility={:+.3}",
            outcome.rewards[&winner],
            outcome.utilities[&winner],
            outcome.expected_utilities[&winner],
        );
    }
    println!();
    println!("Every truthful winner has non-negative *expected* utility —");
    println!("a single unlucky run can pay less, but misreporting PoS never helps.");
    Ok(())
}
