//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Emits impls of the vendored `serde`'s [`Value`]-based `Serialize` /
//! `Deserialize` traits (overriding the hidden `__to_value` /
//! `__from_value` methods). Because this environment cannot reach
//! crates.io, the macro is written against `proc_macro` alone — no `syn`,
//! no `quote`: the item is parsed with a small hand-rolled token walker and
//! the impl is emitted as a string that is parsed back into a
//! `TokenStream`.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * structs with named fields;
//! * tuple structs (arity 1 serializes transparently, like upstream
//!   newtypes; arity ≥ 2 as an array);
//! * enums with unit and single-field (newtype) variants, externally
//!   tagged like upstream: `"Variant"` or `{"Variant": payload}`;
//! * container attributes `#[serde(try_from = "T")]` and
//!   `#[serde(into = "T")]`;
//! * field attributes `#[serde(default)]` and `#[serde(default = "path")]`
//!   on named-struct fields: a missing JSON entry falls back to
//!   `Default::default()` / `path()` instead of erroring, like upstream.
//!
//! Generics, struct variants, and other field-level attributes are not
//! needed by the workspace and are rejected with a compile-time panic
//! naming the unsupported construct.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_deserialize(&item).parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    /// `#[serde(try_from = "T")]`: deserialize via `T` then `TryFrom`.
    try_from: Option<String>,
    /// `#[serde(into = "T")]`: serialize by `Clone` + `Into` into `T`.
    into: Option<String>,
}

/// How a missing named-struct field deserializes.
enum FieldDefault {
    /// No `#[serde(default)]`: a missing entry is an error.
    Required,
    /// `#[serde(default)]`: fall back to `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: fall back to calling `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Shape {
    NamedStruct { fields: Vec<Field> },
    TupleStruct { arity: usize },
    /// Variants as (name, payload arity): 0 = unit, 1 = newtype.
    Enum { variants: Vec<(String, usize)> },
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();

    // Leading attributes (incl. doc comments) and visibility.
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(group)) = tokens.get(i + 1) {
                    collect_serde_attr(group, &mut attrs);
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(group)) = tokens.get(i) {
                    if group.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    i += 1;
                    break kw;
                }
                panic!("serde derive: unexpected `{kw}` before struct/enum keyword");
            }
            other => panic!("serde derive: unexpected input near {other:?}"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic type `{name}` is not supported by the vendored derive");
        }
    }

    let shape = if keyword == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(body, &name),
            },
            other => panic!("serde derive: expected enum body for `{name}`, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct {
                    fields: parse_named_fields(body, &name),
                }
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    arity: count_top_level_fields(body),
                }
            }
            _ => panic!("serde derive: unit struct `{name}` is not supported"),
        }
    };

    Item { name, attrs, shape }
}

/// Records `try_from` / `into` from a `#[serde(...)]` attribute group; all
/// other attributes (docs, derives, `#[default]`) are ignored.
fn collect_serde_attr(group: &Group, attrs: &mut ContainerAttrs) {
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(list)) = inner.next() else {
        return;
    };
    let tokens: Vec<TokenTree> = list.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        let value = match (tokens.get(i + 1), tokens.get(i + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                i += 3;
                Some(lit.to_string().trim_matches('"').to_string())
            }
            _ => {
                i += 1;
                None
            }
        };
        match (key.as_str(), value) {
            ("try_from", Some(ty)) => attrs.try_from = Some(ty),
            ("into", Some(ty)) => attrs.into = Some(ty),
            (other, _) => panic!(
                "serde derive: container attribute `{other}` is not supported by the vendored derive"
            ),
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

fn parse_named_fields(body: &Group, container: &str) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        // Attributes (incl. doc comments); `#[serde(...)]` ones carry the
        // field's missing-entry behavior.
        let mut default = FieldDefault::Required;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(group)) = tokens.get(i + 1) {
                collect_field_attr(group, container, &mut default);
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(group)) = tokens.get(i) {
                if group.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(token) = tokens.get(i) else { break };
        let name = match token {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name in `{container}`, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde derive: expected `:` after field `{name}` in `{container}`, found {other:?}"
            ),
        }
        // Skip the type up to the next top-level comma. `<`/`>` nesting is
        // tracked; parens/brackets arrive as single groups.
        let mut depth = 0i64;
        while let Some(token) = tokens.get(i) {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Records `default` from a field's `#[serde(...)]` attribute group; doc
/// comments and non-serde attributes pass through untouched, and any
/// other serde field key panics rather than being silently dropped.
fn collect_field_attr(group: &Group, container: &str, default: &mut FieldDefault) {
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(list)) = inner.next() else {
        return;
    };
    let tokens: Vec<TokenTree> = list.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        let value = match (tokens.get(i + 1), tokens.get(i + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                i += 3;
                Some(lit.to_string().trim_matches('"').to_string())
            }
            _ => {
                i += 1;
                None
            }
        };
        match (key.as_str(), value) {
            ("default", Some(path)) => *default = FieldDefault::Path(path),
            ("default", None) => *default = FieldDefault::Trait,
            (other, _) => panic!(
                "serde derive: field attribute `{other}` in `{container}` is not supported by the vendored derive"
            ),
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

/// Counts comma-separated fields at the top level of a parenthesised group.
fn count_top_level_fields(body: &Group) -> usize {
    let mut depth = 0i64;
    let mut arity = 0;
    let mut pending = false;
    for token in body.stream() {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(body: &Group, container: &str) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(token) = tokens.get(i) else { break };
        let name = match token {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant in `{container}`, found {other:?}"),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(payload)) = tokens.get(i) {
            match payload.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_top_level_fields(payload);
                    i += 1;
                }
                Delimiter::Brace => panic!(
                    "serde derive: struct variant `{container}::{name}` is not supported by the vendored derive"
                ),
                _ => {}
            }
        }
        if arity > 1 {
            panic!(
                "serde derive: variant `{container}::{name}` has {arity} fields; only unit and newtype variants are supported"
            );
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, arity));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn expand_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();

    if let Some(ty) = &item.attrs.into {
        let _ = write!(
            body,
            "let __repr: {ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::__to_value(&__repr)"
        );
    } else {
        match &item.shape {
            Shape::NamedStruct { fields } => {
                body.push_str("::serde::Value::Map(::std::vec![\n");
                for field in fields {
                    let field = &field.name;
                    let _ = writeln!(
                        body,
                        "(::std::string::String::from(\"{field}\"), \
                         ::serde::Serialize::__to_value(&self.{field})),"
                    );
                }
                body.push_str("])");
            }
            Shape::TupleStruct { arity: 1 } => {
                body.push_str("::serde::Serialize::__to_value(&self.0)");
            }
            Shape::TupleStruct { arity } => {
                body.push_str("::serde::Value::Seq(::std::vec![\n");
                for index in 0..*arity {
                    let _ = writeln!(body, "::serde::Serialize::__to_value(&self.{index}),");
                }
                body.push_str("])");
            }
            Shape::Enum { variants } => {
                body.push_str("match self {\n");
                for (variant, arity) in variants {
                    if *arity == 0 {
                        let _ = writeln!(
                            body,
                            "{name}::{variant} => \
                             ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                        );
                    } else {
                        let _ = writeln!(
                            body,
                            "{name}::{variant}(__payload) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{variant}\"), \
                             ::serde::Serialize::__to_value(__payload))]),"
                        );
                    }
                }
                body.push_str("}");
            }
        }
    }

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn __to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn expand_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();

    if let Some(ty) = &item.attrs.try_from {
        let _ = write!(
            body,
            "let __raw: {ty} = ::serde::__from_value_infer(__value)?;\n\
             <Self as ::std::convert::TryFrom<{ty}>>::try_from(__raw)\
                 .map_err(::serde::DeError::custom)"
        );
    } else {
        match &item.shape {
            Shape::NamedStruct { fields } => {
                let _ = write!(
                    body,
                    "let __entries = match __value {{\n\
                         ::serde::Value::Map(__entries) => __entries,\n\
                         __other => return ::std::result::Result::Err(::serde::DeError::custom(\n\
                             ::std::format!(\"expected an object for `{name}`, found {{}}\", __other.kind()))),\n\
                     }};\n\
                     ::std::result::Result::Ok({name} {{\n"
                );
                for field in fields {
                    let fallback = match &field.default {
                        FieldDefault::Required => None,
                        FieldDefault::Trait => {
                            Some("::std::default::Default::default".to_string())
                        }
                        FieldDefault::Path(path) => Some(path.clone()),
                    };
                    let field = &field.name;
                    let _ = match fallback {
                        None => writeln!(
                            body,
                            "{field}: ::serde::__field(__entries, \"{field}\", \"{name}\")?,"
                        ),
                        Some(fallback) => writeln!(
                            body,
                            "{field}: ::serde::__field_or(__entries, \"{field}\", \"{name}\", {fallback})?,"
                        ),
                    };
                }
                body.push_str("})");
            }
            Shape::TupleStruct { arity: 1 } => {
                let _ = write!(
                    body,
                    "::std::result::Result::Ok({name}(::serde::__from_value_infer(__value)?))"
                );
            }
            Shape::TupleStruct { arity } => {
                let _ = write!(
                    body,
                    "let __items = match __value {{\n\
                         ::serde::Value::Seq(__items) if __items.len() == {arity} => __items,\n\
                         __other => return ::std::result::Result::Err(::serde::DeError::custom(\n\
                             ::std::format!(\"expected a {arity}-element array for `{name}`, found {{}}\", __other.kind()))),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}(\n"
                );
                for index in 0..*arity {
                    let _ = writeln!(body, "::serde::__from_value_infer(&__items[{index}])?,");
                }
                body.push_str("))");
            }
            Shape::Enum { variants } => {
                let has_payload = variants.iter().any(|(_, arity)| *arity > 0);
                body.push_str("match __value {\n::serde::Value::Str(__variant) => match __variant.as_str() {\n");
                for (variant, arity) in variants {
                    if *arity == 0 {
                        let _ = writeln!(
                            body,
                            "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),"
                        );
                    }
                }
                let _ = write!(
                    body,
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\n\
                         ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }},\n"
                );
                if has_payload {
                    body.push_str(
                        "::serde::Value::Map(__entries) if __entries.len() == 1 => {\n\
                             let (__variant, __payload) = &__entries[0];\n\
                             match __variant.as_str() {\n",
                    );
                    for (variant, arity) in variants {
                        if *arity > 0 {
                            let _ = writeln!(
                                body,
                                "\"{variant}\" => ::std::result::Result::Ok(\
                                 {name}::{variant}(::serde::__from_value_infer(__payload)?)),"
                            );
                        }
                    }
                    let _ = write!(
                        body,
                        "__other => ::std::result::Result::Err(::serde::DeError::custom(\n\
                             ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                         }},\n"
                    );
                }
                let _ = write!(
                    body,
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\n\
                         ::std::format!(\"expected a variant of `{name}`, found {{}}\", __other.kind()))),\n\
                     }}"
                );
            }
        }
    }

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn __from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
