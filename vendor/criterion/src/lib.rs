//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! This workspace is built in environments without access to crates.io;
//! external dependencies are replaced by minimal, std-only vendored
//! implementations via `[patch.crates-io]`. This stand-in keeps
//! criterion's API shape — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`] — but measures plainly: a short warm-up, then
//! `sample_size` timed samples of an adaptively-chosen iteration count,
//! reporting min/mean/max wall-clock per iteration to stdout. There are
//! no statistics, baselines, or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported for benches that use `criterion::black_box`; prefer
/// `std::hint::black_box` (which this is).
pub use std::hint::black_box;

/// The top-level harness handle passed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies CLI configuration. This stand-in only recognises (and
    /// otherwise ignores) the flags cargo passes through, notably
    /// `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }
}

/// A set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |bencher| f(bencher, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Things accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// Converts into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up: one iteration, also used to pick an iteration count that
    // keeps each sample around a few milliseconds.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let iterations = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let mut per_iteration: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iteration.push(bencher.elapsed.as_secs_f64() / iterations as f64);
    }
    let min = per_iteration.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iteration.iter().copied().fold(0.0, f64::max);
    let mean = per_iteration.iter().sum::<f64>() / per_iteration.len() as f64;
    println!(
        "bench: {label:<50} [{} {} {}] ({} iters x {} samples)",
        format_seconds(min),
        format_seconds(mean),
        format_seconds(max),
        iterations,
        samples
    );
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a bench group: a function invoking each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
