//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! This workspace is built in environments without access to crates.io;
//! external dependencies are replaced by minimal, std-only vendored
//! implementations via `[patch.crates-io]`. This stand-in keeps proptest's
//! *shape* — the [`proptest!`] macro, [`Strategy`] combinators,
//! `prop_assert*!`, [`ProptestConfig`] — but simplifies the machinery:
//!
//! * inputs are generated from a deterministic per-test RNG (seeded from
//!   the test name), so failures reproduce across runs;
//! * there is **no shrinking** — a failing case reports the case number
//!   and the assertion message only;
//! * only the strategies this workspace uses exist: numeric ranges,
//!   tuples, `collection::vec`, `any::<T>()`, `prop_map`,
//!   `prop_flat_map`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of a type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, map }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.map)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                lo: range.start,
                hi: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                lo: *range.start(),
                hi: *range.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy over `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }
}

/// Test execution: config, RNG, and the error type assertions produce.
pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; this stand-in trades a little
            // coverage for wall-clock across the workspace's heavy suites.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property (produced by `prop_assert*!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The deterministic generator behind every strategy: xoshiro256**
    /// seeded from the test name, so each test draws a reproducible but
    /// distinct stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, expanded with SplitMix64.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut state = [0u64; 4];
            for word in &mut state {
                hash = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = hash;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if state == [0; 4] {
                state[0] = 1;
            }
            TestRng { state }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.state[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }

        /// A uniform double in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(::std::stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(error) = outcome {
                    ::std::panic!(
                        "proptest `{}` failed on case {}/{}: {}",
                        ::std::stringify!($name),
                        case + 1,
                        config.cases,
                        error
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}
