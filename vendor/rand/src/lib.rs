//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace is built in environments without access to crates.io, so
//! the external dependencies are replaced by minimal, std-only vendored
//! implementations via `[patch.crates-io]` (see `vendor/` in the repository
//! root). This crate reproduces exactly the `rand 0.8` API subset the
//! workspace uses:
//!
//! * [`RngCore`], [`Rng`] (`gen`, `gen_bool`, `gen_range`, `sample`),
//! * [`SeedableRng`] (`from_seed`, `seed_from_u64`),
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator.
//!
//! The generator is **not** the upstream ChaCha12 `StdRng`; only statistical
//! quality and seed-determinism are preserved, not the exact streams. All
//! tests in this workspace assert distributional properties or
//! same-seed reproducibility, never upstream byte-for-byte streams.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from `distribution`.
    fn sample<T, D: Distribution<T>>(&mut self, distribution: D) -> T {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(hi >= lo, "cannot sample from empty range");
                let unit = unit_f64(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 exactly
    /// like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut state);
            chunk.copy_from_slice(&value.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_are_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(8);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
