//! The distribution trait and the [`Standard`] distribution.

use crate::{unit_f64, Rng};

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform bits for integers,
/// uniform `[0, 1)` for floats, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64
);
