//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The standard deterministic generator: xoshiro256\*\*.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; this stand-in only promises the
/// same *interface* and seed-determinism, not the same streams (see the
/// crate docs). xoshiro256\*\* passes BigCrush and is more than adequate
/// for the simulations in this workspace.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.state[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u64; 4];
        for (word, chunk) in state.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if state == [0; 4] {
            // xoshiro cannot leave the all-zero state; re-derive one.
            let mut s = 0xDEAD_BEEF_CAFE_F00Du64;
            for word in &mut state {
                *word = splitmix64(&mut s);
            }
        }
        Self { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
