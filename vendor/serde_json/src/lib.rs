//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json) crate.
//!
//! Converts JSON text to and from the vendored `serde`'s [`Value`] data
//! model (see `vendor/serde`). Covers the API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`to_vec_pretty`],
//! [`from_str`], [`from_slice`], and an [`Error`] that converts into
//! `std::io::Error` (so `?` works in functions returning `io::Result`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display, Write as _};

use serde::{de, Deserialize, Serialize, Value, ValueDeserializer};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: Display>(message: T) -> Self {
        Error::new(message.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(error: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, error.message)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.__to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.__to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(input: &'de str) -> Result<T, Error> {
    let value = parse(input)?;
    T::deserialize(ValueDeserializer::new(value)).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<'de, T: Deserialize<'de>>(input: &'de [u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(e.to_string()))?;
    let value = parse(text)?;
    T::deserialize(ValueDeserializer::new(value)).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (index, (key, item)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, value: f64) {
    if !value.is_finite() {
        out.push_str("null");
    } else if value == value.trunc() && value.abs() < 1e15 {
        // Keep integral floats recognisably floats, like upstream ("1.0").
        let _ = write!(out, "{value:.1}");
    } else {
        // Rust's shortest round-trip formatting.
        let _ = write!(out, "{value}");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("JSON nesting too deep"));
        }
        let value = match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        };
        self.depth -= 1;
        value
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a \"b\"\n").unwrap(), "\"a \\\"b\\\"\\n\"");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a \\\"b\\\"\\n\"").unwrap(), "a \"b\"\n");
    }

    #[test]
    fn collections_round_trip() {
        let points = vec![(1.0f64, 2.5f64), (3.0, -0.125)];
        let json = to_string(&points).unwrap();
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, points);

        let map: std::collections::BTreeMap<u32, Vec<u64>> =
            [(1, vec![2, 3]), (9, vec![])].into_iter().collect();
        let json = to_string(&map).unwrap();
        assert_eq!(json, "{\"1\":[2,3],\"9\":[]}");
        let back: std::collections::BTreeMap<u32, Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn pretty_printer_indents() {
        let map: std::collections::BTreeMap<u32, Vec<u64>> = [(1, vec![2])].into_iter().collect();
        let pretty = to_string_pretty(&map).unwrap();
        assert_eq!(pretty, "{\n  \"1\": [\n    2\n  ]\n}");
        let back: std::collections::BTreeMap<u32, Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\uD83D\\uDE00\"").unwrap(), "😀");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(from_str::<u32>("true").is_err());
        assert!(from_str::<u32>("3 4").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
