//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! This workspace is built in environments without access to crates.io, so
//! external dependencies are replaced by minimal, std-only vendored
//! implementations via `[patch.crates-io]` (see `vendor/` in the repository
//! root). Instead of upstream serde's visitor-based, zero-copy data model,
//! this stand-in routes every (de)serialization through one owned
//! [`Value`] tree — the JSON data model. That is dramatically simpler and
//! fully sufficient for this workspace, whose only format is JSON
//! (`serde_json`) and whose types are owned (no borrowed `&'de str`
//! fields).
//!
//! The public surface mirrors upstream where the workspace touches it:
//!
//! * [`Serialize`] / [`Deserialize`] traits, derivable via
//!   `#[derive(Serialize, Deserialize)]` (feature `derive`), including the
//!   container attributes `#[serde(try_from = "T", into = "T")]`;
//! * [`Serializer`] / [`Deserializer`] traits (used as bounds by manual
//!   impls) and [`de::Error::custom`] / [`ser::Error::custom`];
//! * impls for the primitives, `String`, tuples, `Vec`, `Option`,
//!   `BTreeMap` / `BTreeSet` (maps serialize with stringified keys, like
//!   upstream's JSON behaviour).
//!
//! Both traits have *two* methods with mutually-recursive defaults:
//! `serialize` ⇄ `__to_value` and `deserialize` ⇄ `__from_value`. Every
//! impl overrides at least one of the pair (derived impls override the
//! `__*_value` side; hand-written impls in the workspace override the
//! upstream-shaped side), so the defaults never actually recurse.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::{self, Display};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The single data model everything routes through: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also stands in for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A finite floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short human-readable name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::I64(_) | Value::U64(_) => "an integer",
            Value::F64(_) => "a number",
            Value::Str(_) => "a string",
            Value::Seq(_) => "an array",
            Value::Map(_) => "an object",
        }
    }
}

/// The error produced when mapping a [`Value`] into a Rust type.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom<T: Display>(message: T) -> Self {
        DeError(message.to_string())
    }
}

impl Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Deserialization support: error plumbing.
pub mod de {
    use std::fmt::Display;

    /// The trait bound `serde::de::Error::custom` calls go through.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(message: T) -> Self;
    }

    impl Error for super::DeError {
        fn custom<T: Display>(message: T) -> Self {
            super::DeError::custom(message)
        }
    }
}

/// Serialization support: error plumbing.
pub mod ser {
    use std::fmt::Display;

    /// The trait bound `serde::ser::Error::custom` calls go through.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(message: T) -> Self;
    }
}

/// A format that consumes [`Value`]s.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: ser::Error;

    #[doc(hidden)]
    fn __serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A format that produces [`Value`]s.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: de::Error;

    #[doc(hidden)]
    fn __into_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be serialized.
///
/// Implementors must override [`Serialize::__to_value`] (the default pair
/// is mutually recursive; derived impls always override it).
pub trait Serialize {
    #[doc(hidden)]
    fn __to_value(&self) -> Value;

    /// Serializes `self` into the given format.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.__serialize_value(self.__to_value())
    }
}

/// A type that can be deserialized.
///
/// Implementors must override at least one of [`Deserialize::deserialize`]
/// and [`Deserialize::__from_value`]: the defaults route into each other
/// (derived impls override `__from_value`; the workspace's hand-written
/// impls override `deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given format.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.__into_value()?;
        Self::__from_value(&value).map_err(de::Error::custom)
    }

    #[doc(hidden)]
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        Self::deserialize(ValueDeserializer::new(value.clone()))
    }
}

/// A [`Deserializer`] over an in-memory [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn __into_value(self) -> Result<Value, Self::Error> {
        Ok(self.value)
    }
}

// ---------------------------------------------------------------------------
// Support helpers used by derived code (doc(hidden), semver-exempt).
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn __from_value_infer<'de, T: Deserialize<'de>>(value: &Value) -> Result<T, DeError> {
    T::__from_value(value)
}

#[doc(hidden)]
pub fn __field<'de, T: Deserialize<'de>>(
    entries: &[(String, Value)],
    field: &'static str,
    container: &'static str,
) -> Result<T, DeError> {
    let value = entries
        .iter()
        .find(|(key, _)| key == field)
        .map(|(_, value)| value)
        .ok_or_else(|| DeError::custom(format!("missing field `{field}` in `{container}`")))?;
    T::__from_value(value)
        .map_err(|e| DeError::custom(format!("invalid field `{field}` in `{container}`: {e}")))
}

/// Like [`__field`], but a missing entry falls back to `default` instead
/// of erroring — the backing of `#[serde(default)]` /
/// `#[serde(default = "path")]` on struct fields. A *present* entry of
/// the wrong shape still errors: defaults paper over absence, not
/// corruption.
#[doc(hidden)]
pub fn __field_or<'de, T: Deserialize<'de>>(
    entries: &[(String, Value)],
    field: &'static str,
    container: &'static str,
    default: fn() -> T,
) -> Result<T, DeError> {
    let Some(value) = entries
        .iter()
        .find(|(key, _)| key == field)
        .map(|(_, value)| value)
    else {
        return Ok(default());
    };
    T::__from_value(value)
        .map_err(|e| DeError::custom(format!("invalid field `{field}` in `{container}`: {e}")))
}

/// Stringifies a map key the way JSON object keys require.
#[doc(hidden)]
pub fn __map_key(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(n) => n.to_string(),
        Value::Null => "null".to_string(),
        // Upstream errors on composite keys; this workspace never uses them.
        Value::Seq(_) | Value::Map(_) => "<composite key>".to_string(),
    }
}

/// Rebuilds a map key from its stringified form: tries the string itself
/// first, then re-interprets it as a number (how integer-keyed maps round
/// trip through JSON).
#[doc(hidden)]
pub fn __key_from_str<'de, K: Deserialize<'de>>(key: &str) -> Result<K, DeError> {
    let as_string = K::__from_value(&Value::Str(key.to_string()));
    if as_string.is_ok() {
        return as_string;
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::__from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::__from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<f64>() {
        if let Ok(k) = K::__from_value(&Value::F64(n)) {
            return Ok(k);
        }
    }
    as_string
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn __to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn __from_value(value: &Value) -> Result<Self, DeError> {
                let raw: u64 = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n).map_err(DeError::custom)?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected an unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(DeError::custom)
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn __from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(DeError::custom)?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected an integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(DeError::custom)
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn __to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // JSON has no NaN/Infinity; upstream serde_json emits null.
            Value::Null
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn __to_value(&self) -> Value {
        f64::from(*self).__to_value()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        f64::__from_value(value).map(|n| n as f32)
    }
}

impl Serialize for String {
    fn __to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn __to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn __to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::__from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn __to_value(&self) -> Value {
        match self {
            Some(inner) => inner.__to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::__from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequences, tuples, maps, sets.
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn __to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn __to_value(&self) -> Value {
        self.as_slice().__to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected an array, found {}", value.kind())))?;
        items.iter().map(T::__from_value).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn __to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected an array, found {}", value.kind())))?;
        items.iter().map(T::__from_value).collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn __to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(key, value)| (__map_key(&key.__to_value()), value.__to_value()))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected an object, found {}", value.kind())))?;
        entries
            .iter()
            .map(|(key, value)| Ok((__key_from_str(key)?, V::__from_value(value)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn __to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.__to_value()),+])
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn __from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($i),+].len();
                let items = value.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected an array, found {}", value.kind()))
                })?;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected a {LEN}-element array, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::__from_value(&items[$i])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for () {
    fn __to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn __from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::__from_value(&42u32.__to_value()).unwrap(), 42);
        assert_eq!(i64::__from_value(&(-7i64).__to_value()).unwrap(), -7);
        assert_eq!(f64::__from_value(&1.5f64.__to_value()).unwrap(), 1.5);
        assert_eq!(bool::__from_value(&true.__to_value()).unwrap(), true);
        let s = String::from("hi");
        assert_eq!(String::__from_value(&s.__to_value()).unwrap(), "hi");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.__to_value(), Value::Null);
        assert_eq!(f64::INFINITY.__to_value(), Value::Null);
    }

    #[test]
    fn int_keyed_map_round_trips_through_string_keys() {
        let map: BTreeMap<u32, String> = [(3, "three".to_string()), (7, "seven".to_string())]
            .into_iter()
            .collect();
        let value = map.__to_value();
        match &value {
            Value::Map(entries) => assert_eq!(entries[0].0, "3"),
            other => panic!("expected map, got {other:?}"),
        }
        let back: BTreeMap<u32, String> = BTreeMap::__from_value(&value).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let points = vec![(1.0f64, 2.0f64), (3.5, -4.5)];
        let back: Vec<(f64, f64)> = Vec::__from_value(&points.__to_value()).unwrap();
        assert_eq!(back, points);
    }

    #[test]
    fn wrong_shape_is_a_typed_error() {
        let err = u32::__from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected an unsigned integer"));
    }
}
